# Legacy-install shim: this environment has no network access and no
# `wheel` package, so the PEP 517 editable path cannot build; `python
# setup.py develop` (or pip with --no-build-isolation on newer stacks)
# installs from pyproject metadata via setuptools directly.
from setuptools import setup

setup()
