"""Wireless-network substrate: topology, channel model, OFDMA, SINR.

This subpackage implements the physical-layer evaluation substrate of the
paper (Sec. III-A-2 and the simulation setup of Sec. V): a hexagonal
multi-cell layout, the distance-based path-loss model with log-normal
shadowing, OFDMA sub-band bookkeeping, and the SINR / achievable-rate
computation with inter-cell interference.
"""

from repro.net.channel import ChannelModel, received_power
from repro.net.fading import RayleighFading, RicianFading, faded_scenario
from repro.net.ofdma import OfdmaGrid
from repro.net.pathloss import LogNormalShadowing, UrbanMacroPathLoss
from repro.net.sinr import (
    LinkStats,
    compute_link_stats,
    compute_rates,
    compute_sinr_batch,
    total_received_power,
)
from repro.net.topology import HexCell, Topology, hex_grid_positions

__all__ = [
    "ChannelModel",
    "HexCell",
    "LinkStats",
    "LogNormalShadowing",
    "RayleighFading",
    "RicianFading",
    "OfdmaGrid",
    "Topology",
    "UrbanMacroPathLoss",
    "compute_link_stats",
    "compute_rates",
    "compute_sinr_batch",
    "faded_scenario",
    "hex_grid_positions",
    "received_power",
    "total_received_power",
]
