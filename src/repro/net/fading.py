"""Small-scale (fast) fading models for robustness studies.

The paper assumes "the impact of fast fading can be averaged out" over
the long association timescale (Sec. III-A-2), so scheduling decisions
are made on mean channel gains.  These models generate the *realised*
per-link fading a decision would actually experience, letting the
robustness of that assumption be quantified (see
``repro.experiments.ext_fading``).

* :class:`RayleighFading` — no line of sight: the power gain factor is
  exponentially distributed with unit mean.
* :class:`RicianFading` — a dominant path of relative power ``K``:
  ``|h|^2`` with ``h ~ CN(sqrt(K/(K+1)), 1/(K+1))``, unit mean.  As
  ``K -> inf`` the channel hardens toward the mean; ``K = 0`` reduces to
  Rayleigh.

Both draw multiplicative unit-mean factors applied to a scenario's gain
tensor, so the *average* channel matches what the scheduler saw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Tuple

import numpy as np

from repro.errors import ConfigurationError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


class FadingModel(Protocol):
    """Anything that can draw unit-mean multiplicative power factors."""

    def sample_factors(
        self, shape: Tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Multiplicative power-gain factors of the requested shape."""
        ...


@dataclass(frozen=True)
class RayleighFading:
    """Unit-mean exponential power fading (no line of sight)."""

    def sample_factors(
        self, shape: Tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Multiplicative power-gain factors, i.i.d. Exp(1)."""
        return rng.exponential(scale=1.0, size=shape)


@dataclass(frozen=True)
class RicianFading:
    """Unit-mean Rician power fading with K-factor ``k_factor``.

    ``k_factor`` is the linear ratio of line-of-sight to scattered
    power; typical urban-micro values are 3-10 (5-10 dB).
    """

    k_factor: float = 5.0

    def __post_init__(self) -> None:
        if self.k_factor < 0:
            raise ConfigurationError(
                f"K-factor must be non-negative, got {self.k_factor}"
            )

    def sample_factors(
        self, shape: Tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Multiplicative power-gain factors with unit mean."""
        k = self.k_factor
        los = np.sqrt(k / (k + 1.0))
        sigma = np.sqrt(1.0 / (2.0 * (k + 1.0)))
        real = rng.normal(los, sigma, size=shape)
        imag = rng.normal(0.0, sigma, size=shape)
        return real**2 + imag**2


def faded_scenario(
    scenario: "Scenario",
    fading: FadingModel,
    rng: np.random.Generator,
    per_subband: bool = True,
) -> "Scenario":
    """A copy of ``scenario`` with one realised fading draw applied.

    Parameters
    ----------
    fading:
        A model exposing ``sample_factors(shape, rng)``.
    per_subband:
        Draw independent factors per sub-band (frequency-selective,
        default) or one factor per link applied to all sub-bands.
    """
    from repro.sim.scenario import Scenario

    if per_subband:
        factors = fading.sample_factors(scenario.gains.shape, rng)
    else:
        link = fading.sample_factors(scenario.gains.shape[:2], rng)
        factors = np.repeat(link[:, :, None], scenario.n_subbands, axis=2)
    return Scenario(
        users=scenario.users,
        servers=scenario.servers,
        gains=scenario.gains * factors,
        ofdma=scenario.ofdma,
        noise_watts=scenario.noise_watts,
        topology=scenario.topology,
        user_positions=scenario.user_positions,
    )
