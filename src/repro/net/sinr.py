"""SINR and achievable-rate computation with inter-cell interference.

Implements Eq. (3)-(4) of the paper: each offloading user transmits on one
sub-band of one base station; intra-cell transmissions are orthogonal
(one user per (station, sub-band) slot, constraint 12d) while co-channel
users attached to *other* stations interfere.

The assignment is given in compact form as two integer vectors —
``server_of_user`` and ``channel_of_user`` — where ``-1`` marks a user that
executes locally.  This representation is what all schedulers in the
library operate on; it makes the hot inner loop of the annealer a pair of
O(U·S) numpy reductions instead of a dense (U, S, N) tensor walk.

For a *feasible* assignment (at most one user per (station, sub-band)
slot) the computation matches Eq. (3) exactly.  If an infeasible
assignment with slot collisions is evaluated, colliding same-cell users
are counted as interferers — a graceful degradation the schedulers never
exercise, since they maintain feasibility by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Marker used in assignment vectors for "execute locally".
LOCAL = -1


@dataclass(frozen=True)
class LinkStats:
    """Per-user uplink statistics for a given offloading assignment.

    All arrays have length ``U``.  Entries for local (non-offloading)
    users are zero.

    Attributes
    ----------
    sinr:
        Linear SINR ``gamma_u`` of Eq. (3) at the serving station.
    spectral_efficiency:
        ``log2(1 + gamma_u)`` in bits/s/Hz.
    rate_bps:
        Achievable uplink rate ``R_u = W log2(1 + gamma_u)`` of Eq. (4).
    """

    sinr: np.ndarray
    spectral_efficiency: np.ndarray
    rate_bps: np.ndarray


def _validate_inputs(
    gains: np.ndarray,
    tx_power_watts: np.ndarray,
    server_of_user: np.ndarray,
    channel_of_user: np.ndarray,
) -> None:
    if gains.ndim != 3:
        raise ConfigurationError(f"gains must have shape (U, S, N), got {gains.shape}")
    n_users, n_servers, n_channels = gains.shape
    if tx_power_watts.shape != (n_users,):
        raise ConfigurationError(
            f"tx_power_watts must have shape ({n_users},), got {tx_power_watts.shape}"
        )
    if server_of_user.shape != (n_users,) or channel_of_user.shape != (n_users,):
        raise ConfigurationError(
            "assignment vectors must have shape "
            f"({n_users},), got {server_of_user.shape} / {channel_of_user.shape}"
        )
    offloaded = server_of_user >= 0
    if np.any(server_of_user[offloaded] >= n_servers):
        raise ConfigurationError("server index out of range")
    if np.any((channel_of_user[offloaded] < 0) | (channel_of_user[offloaded] >= n_channels)):
        raise ConfigurationError("channel index out of range for an offloaded user")
    if np.any((server_of_user == LOCAL) != (channel_of_user == LOCAL)):
        raise ConfigurationError(
            "server and channel assignments must both be LOCAL or both be set"
        )


def total_received_power(
    gains: np.ndarray,
    tx_power_watts: np.ndarray,
    server_of_user: np.ndarray,
    channel_of_user: np.ndarray,
) -> np.ndarray:
    """Per-(sub-band, station) total received power, shape ``(N, S)``.

    ``out[j, s]`` is the power station ``s`` receives on sub-band ``j``
    from *every* user transmitting on ``j`` — the bucket matrix Eq. (3)'s
    interference sum is carved out of (a user's interference at its
    serving slot is its bucket minus its own signal).  The accumulation
    is the sequential ascending-user-order sum documented in
    :func:`compute_link_stats`; the incremental caches of
    ``repro.core.delta`` / ``repro.core.batch`` must reproduce these
    exact bits after any rebuild, which is what the interference-cache
    property tests pin.
    """
    gains = np.asarray(gains, dtype=float)
    n_users, n_servers, n_channels = gains.shape
    total_rx = np.zeros((n_channels, n_servers))
    offloaded = np.flatnonzero(np.asarray(server_of_user) >= 0)
    if offloaded.size:
        chan = np.asarray(channel_of_user)[offloaded]
        rx = gains[offloaded, :, chan] * np.asarray(tx_power_watts, dtype=float)[
            offloaded, None
        ]
        np.add.at(total_rx, chan, rx)
    return total_rx


def compute_sinr_batch(
    gains: np.ndarray,
    tx_power_watts: np.ndarray,
    noise_watts: float,
    server_of_user: np.ndarray,
    channel_of_user: np.ndarray,
) -> np.ndarray:
    """Eq. (3) for a whole batch of assignments in one NumPy shot.

    ``server_of_user`` / ``channel_of_user`` have shape ``(B, U)`` —
    ``B`` complete assignments over the same ``(U, S, N)`` gain tensor —
    and the result is the ``(B, U)`` linear SINR matrix (zero for local
    users).  The per-assignment bits match :func:`compute_link_stats`
    exactly: the scatter walks ``(batch, user)`` pairs in row-major
    order, so each assignment's buckets accumulate in the same ascending
    user order as the scalar path.
    """
    gains = np.asarray(gains, dtype=float)
    tx_power_watts = np.asarray(tx_power_watts, dtype=float)
    server_of_user = np.atleast_2d(np.asarray(server_of_user))
    channel_of_user = np.atleast_2d(np.asarray(channel_of_user))
    n_users, n_servers, n_channels = gains.shape
    n_batch = server_of_user.shape[0]
    if server_of_user.shape != (n_batch, n_users) or channel_of_user.shape != (
        n_batch,
        n_users,
    ):
        raise ConfigurationError(
            "batch assignment vectors must have shape "
            f"({n_batch}, {n_users}), got {server_of_user.shape} / "
            f"{channel_of_user.shape}"
        )

    sinr = np.zeros((n_batch, n_users))
    rows, users = np.nonzero(server_of_user >= 0)
    if rows.size:
        srv = server_of_user[rows, users]
        chan = channel_of_user[rows, users]
        rx = gains[users, :, chan] * tx_power_watts[users, None]
        total_rx = np.zeros((n_batch, n_channels, n_servers))
        np.add.at(total_rx, (rows, chan), rx)
        signal = tx_power_watts[users] * gains[users, srv, chan]
        interference = total_rx[rows, chan, srv] - signal
        interference = np.maximum(interference, 0.0)
        sinr[rows, users] = signal / (interference + noise_watts)
    return sinr


def compute_link_stats(
    gains: np.ndarray,
    tx_power_watts: np.ndarray,
    noise_watts: float,
    subband_width_hz: float,
    server_of_user: np.ndarray,
    channel_of_user: np.ndarray,
    validate: bool = True,
    external_rx: np.ndarray | None = None,
) -> LinkStats:
    """Evaluate Eq. (3)-(4) for every user under a given assignment.

    Parameters
    ----------
    gains:
        Channel gain tensor ``h[u, s, j]`` with shape ``(U, S, N)``.
    tx_power_watts:
        Constant uplink transmit power per user, shape ``(U,)``.
    noise_watts:
        Background noise variance ``sigma^2`` in watts.
    subband_width_hz:
        Sub-band width ``W = B / N``.
    server_of_user, channel_of_user:
        Compact assignment vectors (``LOCAL`` = execute locally).
    validate:
        Skip input validation when the caller guarantees shapes (hot path).
    external_rx:
        Optional ``(N, S)`` frozen received power from transmitters
        *outside* this instance (the sharded scheduler's boundary
        coupling), added elementwise to the interference buckets.  With
        ``None`` the computation is untouched — the default path stays
        bitwise identical to the pre-sharding implementation.
    """
    gains = np.asarray(gains, dtype=float)
    tx_power_watts = np.asarray(tx_power_watts, dtype=float)
    server_of_user = np.asarray(server_of_user)
    channel_of_user = np.asarray(channel_of_user)
    if validate:
        _validate_inputs(gains, tx_power_watts, server_of_user, channel_of_user)
        if noise_watts <= 0:
            raise ConfigurationError(f"noise power must be positive, got {noise_watts}")
        if subband_width_hz <= 0:
            raise ConfigurationError(
                f"sub-band width must be positive, got {subband_width_hz}"
            )
        if external_rx is not None:
            expected = (gains.shape[2], gains.shape[1])
            if np.asarray(external_rx).shape != expected:
                raise ConfigurationError(
                    f"external_rx must have shape {expected}, got "
                    f"{np.asarray(external_rx).shape}"
                )

    n_users, n_servers, n_channels = gains.shape
    sinr = np.zeros(n_users)
    offloaded = np.flatnonzero(server_of_user >= 0)
    if offloaded.size:
        srv = server_of_user[offloaded]
        chan = channel_of_user[offloaded]
        # rx[k, s]: power user k's transmission deposits at station s on
        # its own sub-band.  Accumulating rows into per-(band, station)
        # buckets gives the total received power; subtracting the user's
        # own signal at its serving station leaves exactly Eq. (3)'s
        # interference sum (intra-cell transmissions are orthogonal under
        # constraint 12d, so every other co-channel user belongs to a
        # different cell).
        # Accumulation-order contract: np.add.at walks the rows in
        # ascending user order, so each (band, station) bucket is the
        # sequential sum of its members' rx rows by user index.  The
        # delta evaluator (repro.core.delta) rebuilds touched buckets in
        # that same order to stay bitwise equal to this path — do not
        # change the accumulation scheme without updating it.
        total_rx = total_received_power(
            gains, tx_power_watts, server_of_user, channel_of_user
        )
        if external_rx is not None:
            total_rx = total_rx + np.asarray(external_rx, dtype=float)

        signal = tx_power_watts[offloaded] * gains[offloaded, srv, chan]
        interference = total_rx[chan, srv] - signal
        # Guard tiny negative values from floating-point cancellation.
        interference = np.maximum(interference, 0.0)
        sinr[offloaded] = signal / (interference + noise_watts)

    spectral_efficiency = np.log2(1.0 + sinr)
    rate_bps = subband_width_hz * spectral_efficiency
    return LinkStats(
        sinr=sinr, spectral_efficiency=spectral_efficiency, rate_bps=rate_bps
    )


def compute_rates(
    gains: np.ndarray,
    tx_power_watts: np.ndarray,
    noise_watts: float,
    subband_width_hz: float,
    server_of_user: np.ndarray,
    channel_of_user: np.ndarray,
) -> np.ndarray:
    """Achievable uplink rates ``R_u`` (Eq. 4); zero for local users."""
    stats = compute_link_stats(
        gains,
        tx_power_watts,
        noise_watts,
        subband_width_hz,
        server_of_user,
        channel_of_user,
    )
    return stats.rate_bps
