"""Hexagonal multi-cell network topology and user placement.

The paper evaluates TSAJS on "a multi-cellular network comprising several
hexagonal cells, each centered around a base station", with an inter-BS
distance of 1 km and users "randomly and uniformly distributed across the
network's coverage area" (Sec. V).

Base stations sit on a triangular lattice; each covers a pointy-top hexagon
with circumradius ``inter_site_distance / sqrt(3)`` so the hexagons tile the
plane exactly.  Users are placed by picking a cell uniformly at random (all
cells have equal area) and sampling a uniform point inside its hexagon,
subject to a minimum BS distance guard (the log-distance path-loss model
diverges as d -> 0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Default minimum user-to-BS distance, in km (10 m).  Below this the
#: path-loss model is not physically meaningful.
DEFAULT_MIN_BS_DISTANCE_KM = 0.01


def _axial_to_cartesian(q: int, r: int, spacing: float) -> np.ndarray:
    """Map axial hex-lattice coordinates to Cartesian positions (km)."""
    x = spacing * (q + r / 2.0)
    y = spacing * (math.sqrt(3.0) / 2.0) * r
    return np.array([x, y], dtype=float)


def _spiral_axial_coords(count: int) -> List[Tuple[int, int]]:
    """Return ``count`` axial coordinates spiralling out from the origin.

    The spiral enumerates the center cell, then ring 1 (6 cells), ring 2
    (12 cells), and so on — the standard layout for an S-cell hexagonal
    deployment (S = 9 in the paper uses the center plus part of ring 1/2).
    """
    if count < 1:
        raise ConfigurationError(f"need at least one cell, got {count}")
    coords = [(0, 0)]
    # Axial direction vectors, in ring-walk order (Red Blob Games' standard
    # hex-ring enumeration: start at direction-4 * ring, walk each edge).
    directions = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)]
    ring = 1
    while len(coords) < count:
        q, r = -ring, ring  # direction 4 scaled by the ring index
        for dq, dr in directions:
            for _ in range(ring):
                if len(coords) == count:
                    return coords
                coords.append((q, r))
                q, r = q + dq, r + dr
        ring += 1
    return coords


def hex_grid_positions(n_cells: int, inter_site_distance_km: float) -> np.ndarray:
    """Base-station positions for an ``n_cells`` hexagonal deployment.

    Returns an ``(n_cells, 2)`` array of positions in km, spiralling out
    from the origin with the given inter-site distance.
    """
    if inter_site_distance_km <= 0:
        raise ConfigurationError(
            f"inter-site distance must be positive, got {inter_site_distance_km}"
        )
    coords = _spiral_axial_coords(n_cells)
    return np.array(
        [_axial_to_cartesian(q, r, inter_site_distance_km) for q, r in coords]
    )


@dataclass(frozen=True)
class HexCell:
    """A pointy-top hexagonal cell centred on a base station.

    ``circumradius`` is the centre-to-vertex distance; for a tiling with
    inter-site distance D it equals ``D / sqrt(3)``.
    """

    center: np.ndarray
    circumradius: float

    def __post_init__(self) -> None:
        if self.circumradius <= 0:
            raise ConfigurationError(
                f"circumradius must be positive, got {self.circumradius}"
            )

    @property
    def inradius(self) -> float:
        """Centre-to-edge distance (apothem)."""
        return self.circumradius * math.sqrt(3.0) / 2.0

    @property
    def area(self) -> float:
        """Hexagon area in km^2."""
        return 3.0 * math.sqrt(3.0) / 2.0 * self.circumradius**2

    def contains(self, point: Sequence[float]) -> bool:
        """Whether ``point`` lies inside (or on the boundary of) the cell.

        Uses the standard three-axis hexagon test for a pointy-top hexagon:
        the point is inside iff its projections onto the three edge normals
        are all within the inradius.
        """
        dx = float(point[0]) - float(self.center[0])
        dy = float(point[1]) - float(self.center[1])
        inr = self.inradius + 1e-12
        # Pointy-top hexagon edge normals are at 0, 60 and 120 degrees.
        for angle in (0.0, math.pi / 3.0, 2.0 * math.pi / 3.0):
            proj = dx * math.cos(angle) + dy * math.sin(angle)
            if abs(proj) > inr:
                return False
        return True

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform sample inside the hexagon via rejection from its bbox."""
        half_w = self.inradius
        half_h = self.circumradius
        while True:
            dx = rng.uniform(-half_w, half_w)
            dy = rng.uniform(-half_h, half_h)
            candidate = np.array(
                [self.center[0] + dx, self.center[1] + dy], dtype=float
            )
            if self.contains(candidate):
                return candidate


@dataclass(frozen=True)
class Topology:
    """A hexagonal multi-cell deployment with helper geometry.

    Parameters
    ----------
    bs_positions:
        ``(S, 2)`` base-station positions in km.
    inter_site_distance_km:
        Distance between adjacent base stations (1 km in the paper).
    """

    bs_positions: np.ndarray
    inter_site_distance_km: float
    cells: List[HexCell] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        positions = np.asarray(self.bs_positions, dtype=float)
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError(
                f"bs_positions must have shape (S, 2), got {positions.shape}"
            )
        if self.inter_site_distance_km <= 0:
            raise ConfigurationError(
                "inter-site distance must be positive, got "
                f"{self.inter_site_distance_km}"
            )
        object.__setattr__(self, "bs_positions", positions)
        circumradius = self.inter_site_distance_km / math.sqrt(3.0)
        cells = [HexCell(center=pos, circumradius=circumradius) for pos in positions]
        object.__setattr__(self, "cells", cells)

    @classmethod
    def hexagonal(
        cls, n_cells: int, inter_site_distance_km: float = 1.0
    ) -> "Topology":
        """Standard spiral hexagonal deployment (the paper's layout)."""
        return cls(
            bs_positions=hex_grid_positions(n_cells, inter_site_distance_km),
            inter_site_distance_km=inter_site_distance_km,
        )

    @property
    def n_cells(self) -> int:
        return int(self.bs_positions.shape[0])

    def place_users(
        self,
        n_users: int,
        rng: np.random.Generator,
        min_bs_distance_km: float = DEFAULT_MIN_BS_DISTANCE_KM,
    ) -> np.ndarray:
        """Place ``n_users`` uniformly over the union of the cells.

        Each user is assigned to a uniformly-chosen cell and placed
        uniformly inside its hexagon, re-sampled until it is at least
        ``min_bs_distance_km`` from every base station.
        """
        if n_users < 0:
            raise ConfigurationError(f"n_users must be non-negative, got {n_users}")
        if min_bs_distance_km < 0:
            raise ConfigurationError(
                f"min_bs_distance_km must be non-negative, got {min_bs_distance_km}"
            )
        positions = np.empty((n_users, 2), dtype=float)
        for i in range(n_users):
            cell = self.cells[int(rng.integers(self.n_cells))]
            while True:
                candidate = cell.sample(rng)
                dists = np.linalg.norm(self.bs_positions - candidate, axis=1)
                if dists.min() >= min_bs_distance_km:
                    positions[i] = candidate
                    break
        return positions

    def place_users_in_cells(
        self,
        cell_of_user: Sequence[int],
        rng: np.random.Generator,
        min_bs_distance_km: float = DEFAULT_MIN_BS_DISTANCE_KM,
    ) -> np.ndarray:
        """Place users in prescribed cells (cluster-aware generation).

        ``cell_of_user[i]`` names the cell user ``i`` is dropped into;
        each user is sampled uniformly inside that cell's hexagon with
        the same per-user rejection loop as :meth:`place_users`.  This
        is the metro-scale entry point: a caller building a sharded
        scenario can lay out users cluster by cluster (e.g. a fixed
        per-cell density at 10^3-10^5 users) with one deterministic
        sequential draw stream, instead of relying on uniform global
        placement.
        """
        cells = np.asarray(cell_of_user, dtype=np.int64)
        if cells.ndim != 1:
            raise ConfigurationError(
                f"cell_of_user must be one-dimensional, got shape {cells.shape}"
            )
        if cells.size and (cells.min() < 0 or cells.max() >= self.n_cells):
            raise ConfigurationError(
                f"cell indices must lie in [0, {self.n_cells}), got "
                f"[{cells.min()}, {cells.max()}]"
            )
        if min_bs_distance_km < 0:
            raise ConfigurationError(
                f"min_bs_distance_km must be non-negative, got {min_bs_distance_km}"
            )
        positions = np.empty((cells.size, 2), dtype=float)
        for i, cell_index in enumerate(cells):
            cell = self.cells[int(cell_index)]
            while True:
                candidate = cell.sample(rng)
                dists = np.linalg.norm(self.bs_positions - candidate, axis=1)
                if dists.min() >= min_bs_distance_km:
                    positions[i] = candidate
                    break
        return positions

    def distances_km(self, user_positions: np.ndarray) -> np.ndarray:
        """Pairwise user-to-BS distances, shape ``(U, S)``, in km."""
        users = np.asarray(user_positions, dtype=float)
        if users.ndim != 2 or users.shape[1] != 2:
            raise ConfigurationError(
                f"user_positions must have shape (U, 2), got {users.shape}"
            )
        deltas = users[:, None, :] - self.bs_positions[None, :, :]
        return np.linalg.norm(deltas, axis=2)

    def nearest_station(
        self, user_positions: np.ndarray, chunk_size: int = 4096
    ) -> np.ndarray:
        """Index of each user's nearest base station, shape ``(U,)``.

        Ties break toward the lowest station index (``np.argmin``).
        Computed in user chunks so peak memory is ``O(chunk * S)``
        rather than ``O(U * S)`` — usable on metro-scale topologies.
        """
        users = np.asarray(user_positions, dtype=float)
        if users.ndim != 2 or users.shape[1] != 2:
            raise ConfigurationError(
                f"user_positions must have shape (U, 2), got {users.shape}"
            )
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        nearest = np.zeros(users.shape[0], dtype=np.int64)
        for start in range(0, users.shape[0], chunk_size):
            stop = min(start + chunk_size, users.shape[0])
            deltas = users[start:stop, None, :] - self.bs_positions[None, :, :]
            nearest[start:stop] = np.argmin(
                np.sqrt(np.add.reduce(deltas * deltas, axis=2)), axis=1
            )
        return nearest

    def extent_km(self) -> float:
        """Diagonal of the station bounding box (deployment diameter).

        The scale :mod:`repro.sim.validation` compares against the
        far-field interference cutoff: once the deployment is much
        larger than the cutoff radius, spatial sharding can split it
        into near-independent clusters.
        """
        spans = self.bs_positions.max(axis=0) - self.bs_positions.min(axis=0)
        return float(np.sqrt(np.add.reduce(spans * spans)))
