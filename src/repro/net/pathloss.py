"""Path-loss and shadowing models for the uplink channel.

The paper derives the uplink channel gain "from a path loss model that is
contingent upon the distance, specifically L[dB] = 140.7 + 36.7 log10 d[km],
with the lognormal shadowing standard deviation fixed at 8 dB" (Sec. V).
This is the 3GPP urban-macro NLOS model also used by the reference system
hJTORA (Tran & Pompili, ref. [37]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import db_to_linear


@dataclass(frozen=True)
class UrbanMacroPathLoss:
    """Log-distance path loss ``L[dB] = intercept + slope * log10(d_km)``.

    Defaults reproduce the paper's model (140.7 + 36.7 log10 d).
    """

    intercept_db: float = 140.7
    slope_db: float = 36.7

    def loss_db(self, distance_km: np.ndarray) -> np.ndarray:
        """Path loss in dB for distances in km (element-wise)."""
        distances = np.asarray(distance_km, dtype=float)
        if np.any(distances <= 0.0):
            raise ConfigurationError(
                "path loss is undefined for non-positive distances"
            )
        return self.intercept_db + self.slope_db * np.log10(distances)

    def gain_linear(self, distance_km: np.ndarray) -> np.ndarray:
        """Linear channel power gain (``10^(-L/10)``) for distances in km."""
        return db_to_linear(-self.loss_db(distance_km))


@dataclass(frozen=True)
class LogNormalShadowing:
    """Zero-mean log-normal shadowing with standard deviation in dB.

    The paper fixes ``sigma_db = 8``.  Samples are i.i.d. per link — the
    user-BS association happens on a long-term scale so fast fading is
    averaged out (Sec. III-A-2) and only the slow shadowing term remains.
    """

    sigma_db: float = 8.0

    def __post_init__(self) -> None:
        if self.sigma_db < 0:
            raise ConfigurationError(
                f"shadowing sigma must be non-negative, got {self.sigma_db}"
            )

    def sample_db(
        self, shape: Tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Draw shadowing values in dB of the requested shape."""
        if self.sigma_db == 0.0:
            return np.zeros(shape)
        return rng.normal(loc=0.0, scale=self.sigma_db, size=shape)

    def sample_linear(
        self, shape: Tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Draw multiplicative (linear) shadowing factors."""
        return db_to_linear(self.sample_db(shape, rng))
