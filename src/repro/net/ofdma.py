"""OFDMA sub-band bookkeeping.

The uplink divides the total band ``B`` into ``N`` equal sub-bands of width
``W = B / N`` (Sec. III-A-2).  Each base station can serve at most one user
per sub-band — constraint (12d) — so a station can theoretically serve N
users concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OfdmaGrid:
    """The uplink OFDMA configuration: total bandwidth and sub-band count."""

    total_bandwidth_hz: float
    n_subbands: int

    def __post_init__(self) -> None:
        if self.total_bandwidth_hz <= 0:
            raise ConfigurationError(
                f"total bandwidth must be positive, got {self.total_bandwidth_hz}"
            )
        if self.n_subbands < 1:
            raise ConfigurationError(
                f"need at least one sub-band, got {self.n_subbands}"
            )

    @property
    def subband_width_hz(self) -> float:
        """Width ``W = B / N`` of each orthogonal sub-band."""
        return self.total_bandwidth_hz / self.n_subbands

    def capacity_per_station(self) -> int:
        """Maximum concurrent offloaders a single station can serve."""
        return self.n_subbands

    def total_capacity(self, n_stations: int) -> int:
        """Maximum concurrent offloaders across ``n_stations`` stations."""
        if n_stations < 0:
            raise ConfigurationError(
                f"n_stations must be non-negative, got {n_stations}"
            )
        return self.n_subbands * n_stations
