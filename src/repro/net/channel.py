"""Channel-gain generation: path loss x shadowing over a topology.

Produces the gain tensor ``h[u, s, j]`` of Eq. (3): the channel power gain
between user ``u`` and base station ``s`` on sub-band ``j``.  Because the
association timescale averages out fast fading (Sec. III-A-2), the gain is
frequency-flat by default — identical across sub-bands — but a per-band
log-normal jitter can be enabled to model residual frequency selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.net.pathloss import LogNormalShadowing, UrbanMacroPathLoss
from repro.net.topology import Topology
from repro.units import db_to_linear


@dataclass(frozen=True)
class ChannelModel:
    """Generates uplink channel gains for a user population.

    Parameters
    ----------
    pathloss:
        Distance-based path-loss model (paper default urban-macro NLOS).
    shadowing:
        Log-normal shadowing model (paper default 8 dB).
    per_band_sigma_db:
        Optional extra per-sub-band log-normal jitter.  ``0`` (default)
        yields frequency-flat gains as in the paper.
    """

    pathloss: UrbanMacroPathLoss = field(default_factory=UrbanMacroPathLoss)
    shadowing: LogNormalShadowing = field(default_factory=LogNormalShadowing)
    per_band_sigma_db: float = 0.0

    def __post_init__(self) -> None:
        if self.per_band_sigma_db < 0:
            raise ConfigurationError(
                f"per_band_sigma_db must be non-negative, got {self.per_band_sigma_db}"
            )

    def link_gains(
        self,
        topology: Topology,
        user_positions: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-link gains ``(U, S)``: path loss plus one shadowing draw."""
        distances = topology.distances_km(user_positions)
        gains = self.pathloss.gain_linear(distances)
        gains = gains * self.shadowing.sample_linear(distances.shape, rng)
        return gains

    def gains(
        self,
        topology: Topology,
        user_positions: np.ndarray,
        n_subbands: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Gain tensor ``h[u, s, j]`` of shape ``(U, S, N)``.

        Frequency-flat unless ``per_band_sigma_db > 0``.
        """
        if n_subbands < 1:
            raise ConfigurationError(
                f"need at least one sub-band, got {n_subbands}"
            )
        link = self.link_gains(topology, user_positions, rng)
        tensor = np.repeat(link[:, :, None], n_subbands, axis=2)
        if self.per_band_sigma_db > 0.0:
            jitter_db = rng.normal(0.0, self.per_band_sigma_db, size=tensor.shape)
            tensor = tensor * db_to_linear(jitter_db)
        return tensor


def received_power(gains: np.ndarray, tx_power_watts: np.ndarray) -> np.ndarray:
    """Received-power tensor ``p_u * h[u, s, j]``, shape ``(U, S, N)``.

    The array-shaped precompute behind the batch evaluator's per-user
    power rows: slice ``[u, :, j]`` is the power user ``u`` deposits at
    every station when transmitting on sub-band ``j``.  Computed
    elementwise, so every entry carries the exact bits of the scalar
    product ``p_u * h[u, s, j]``.
    """
    gains = np.asarray(gains, dtype=float)
    tx_power_watts = np.asarray(tx_power_watts, dtype=float)
    if gains.ndim != 3:
        raise ConfigurationError(
            f"gains must have shape (U, S, N), got {gains.shape}"
        )
    if tx_power_watts.shape != (gains.shape[0],):
        raise ConfigurationError(
            f"tx_power_watts must have shape ({gains.shape[0]},), "
            f"got {tx_power_watts.shape}"
        )
    return gains * tx_power_watts[:, None, None]
