"""Seeded fault models for MEC infrastructure (servers, sub-bands, arrivals).

The paper's system model assumes every server and sub-band stays up for
the whole scheduling horizon; the multi-server JTORA literature it builds
on motivates edge offloading precisely because individual edge servers
are small, numerous, and individually unreliable.  This module adds the
missing failure dimension: deterministic, seed-derived fault draws that
can be injected into a :class:`~repro.sim.scenario.Scenario` (via
:func:`repro.faults.inject.apply_faults`) or into episodic simulations.

Three fault classes are modelled:

* **server outage** — a server fails completely for the horizon: its
  capacity collapses to :data:`OUTAGE_CAPACITY_HZ` and its links fade to
  :data:`OUTAGE_GAIN_FACTOR` of their nominal gains,
* **server degradation** — a server survives with a fraction of its
  nominal capacity (overload, thermal throttling, partial hardware loss),
* **sub-band outage** — one ``(server, band)`` slot becomes unusable
  (interference, fronthaul loss) while the server itself stays up,
* **task-arrival churn** — a user's request is withdrawn before
  scheduling completes (the user left the cell or cancelled).

All draws come from :func:`repro.sim.rng.child_rng` stream
:data:`FAULT_STREAM` of the experiment seed, so fault patterns are
reproducible and independent of the scenario draw (streams 0-1) and of
every scheduler chain (streams 100+).  A configuration whose every rate
is zero draws **nothing** from the stream and produces the empty
:class:`FaultSet`, which downstream injection maps to the *identical*
scenario object — the zero-rate path is bitwise equal to the fault-free
path by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import child_rng

#: RNG stream (of the experiment seed) reserved for fault draws.  Streams
#: 0-1 are the scenario draw, 2-3 episodic activity/mobility, 100+ the
#: scheduler chains; keeping faults on their own stream means switching
#: fault rates never perturbs any other draw.
FAULT_STREAM = 7

#: Capacity of a failed server (cycles/s).  Strictly positive so the
#: scenario stays valid, but so small that any scheduler worth its salt
#: routes around the dead machine.
OUTAGE_CAPACITY_HZ = 1.0

#: Multiplier applied to the channel gains of a failed server or sub-band.
#: Strictly positive (scenario validation requires positive gains) but
#: small enough that the spectral efficiency of the dead link rounds to
#: zero, which the objective evaluator scores as ``-inf`` — no rational
#: schedule ever keeps a user there.
OUTAGE_GAIN_FACTOR = 1e-30


@dataclass(frozen=True)
class FaultConfig:
    """Per-horizon fault rates (all probabilities in ``[0, 1]``).

    Attributes
    ----------
    server_outage_probability:
        Per-server chance of a complete failure.
    server_degradation_probability:
        Per-server chance (evaluated only for surviving servers) of
        running at ``degraded_capacity_fraction`` of nominal capacity.
    degraded_capacity_fraction:
        Surviving capacity fraction of a degraded server, in ``(0, 1]``.
    band_outage_probability:
        Per-``(server, band)`` chance (surviving servers only) that one
        slot becomes unusable.
    arrival_churn_probability:
        Per-user chance that the task request is withdrawn; churned
        users are forced to local execution (their request no longer
        competes for slots).
    """

    server_outage_probability: float = 0.0
    server_degradation_probability: float = 0.0
    degraded_capacity_fraction: float = 0.25
    band_outage_probability: float = 0.0
    arrival_churn_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "server_outage_probability",
            "server_degradation_probability",
            "band_outage_probability",
            "arrival_churn_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
        if not 0.0 < self.degraded_capacity_fraction <= 1.0:
            raise ConfigurationError(
                "degraded_capacity_fraction must lie in (0, 1], got "
                f"{self.degraded_capacity_fraction}"
            )

    @property
    def is_trivial(self) -> bool:
        """True when every fault rate is exactly zero (nothing can fail)."""
        return (
            self.server_outage_probability == 0.0
            and self.server_degradation_probability == 0.0
            and self.band_outage_probability == 0.0
            and self.arrival_churn_probability == 0.0
        )


@dataclass(frozen=True)
class FaultSet:
    """One concrete realisation of :class:`FaultConfig` for a horizon.

    Attributes
    ----------
    n_servers / n_subbands:
        Grid dimensions the fault set was drawn for (validation only).
    failed_servers:
        Servers that failed completely.
    degraded_servers:
        ``(server, capacity_fraction)`` pairs for partially-failed servers.
    failed_bands:
        ``(server, band)`` slots that are individually unusable.
    churned_users:
        Users whose task requests were withdrawn.
    """

    n_servers: int
    n_subbands: int
    failed_servers: FrozenSet[int] = field(default_factory=frozenset)
    degraded_servers: Tuple[Tuple[int, float], ...] = ()
    failed_bands: FrozenSet[Tuple[int, int]] = field(default_factory=frozenset)
    churned_users: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.n_servers < 1 or self.n_subbands < 1:
            raise ConfigurationError(
                "fault set needs n_servers >= 1 and n_subbands >= 1, got "
                f"{self.n_servers}, {self.n_subbands}"
            )
        for server in self.failed_servers:
            if not 0 <= server < self.n_servers:
                raise ConfigurationError(
                    f"failed server {server} out of range [0, {self.n_servers})"
                )
        degraded_ids = set()
        for server, fraction in self.degraded_servers:
            if not 0 <= server < self.n_servers:
                raise ConfigurationError(
                    f"degraded server {server} out of range [0, {self.n_servers})"
                )
            if server in self.failed_servers:
                raise ConfigurationError(
                    f"server {server} cannot be both failed and degraded"
                )
            if server in degraded_ids:
                raise ConfigurationError(f"server {server} degraded twice")
            degraded_ids.add(server)
            if not 0.0 < fraction <= 1.0:
                raise ConfigurationError(
                    f"degraded capacity fraction must lie in (0, 1], got {fraction}"
                )
        for server, band in self.failed_bands:
            if not 0 <= server < self.n_servers:
                raise ConfigurationError(
                    f"failed band's server {server} out of range [0, {self.n_servers})"
                )
            if not 0 <= band < self.n_subbands:
                raise ConfigurationError(
                    f"failed band {band} out of range [0, {self.n_subbands})"
                )
        for user in self.churned_users:
            if user < 0:
                raise ConfigurationError(f"churned user must be >= 0, got {user}")

    @property
    def is_empty(self) -> bool:
        """True when nothing failed, degraded, or churned."""
        return (
            not self.failed_servers
            and not self.degraded_servers
            and not self.failed_bands
            and not self.churned_users
        )

    def slot_is_dead(self, server: int, band: int) -> bool:
        """True when ``(server, band)`` cannot carry an offloaded task."""
        return server in self.failed_servers or (server, band) in self.failed_bands

    def alive_channels(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-server tuple of sub-bands still usable for offloading.

        Failed servers contribute an empty tuple; degraded servers keep
        every band (they are slow, not dead).
        """
        alive = []
        for server in range(self.n_servers):
            if server in self.failed_servers:
                alive.append(())
                continue
            alive.append(
                tuple(
                    band
                    for band in range(self.n_subbands)
                    if (server, band) not in self.failed_bands
                )
            )
        return tuple(alive)

    @classmethod
    def empty(cls, n_servers: int, n_subbands: int) -> "FaultSet":
        """The fault-free realisation (nothing failed)."""
        return cls(n_servers=n_servers, n_subbands=n_subbands)


def draw_faults(
    config: FaultConfig,
    n_users: int,
    n_servers: int,
    n_subbands: int,
    rng: np.random.Generator,
) -> FaultSet:
    """Realise one :class:`FaultSet` from per-entity Bernoulli draws.

    A trivial config (every rate zero) consumes **no** randomness and
    returns :meth:`FaultSet.empty` — the guarantee behind the zero-rate
    bitwise-identity property.  Draw order is fixed (server outages,
    then degradations, then band outages, then churn) so individual rates
    can be varied without reshuffling the draws of earlier classes.
    """
    if n_users < 0:
        raise ConfigurationError(f"n_users must be >= 0, got {n_users}")
    if config.is_trivial:
        return FaultSet.empty(n_servers, n_subbands)

    failed_servers = frozenset(
        server
        for server in range(n_servers)
        if config.server_outage_probability > 0.0
        and rng.random() < config.server_outage_probability
    )
    degraded = tuple(
        (server, config.degraded_capacity_fraction)
        for server in range(n_servers)
        if server not in failed_servers
        and config.server_degradation_probability > 0.0
        and rng.random() < config.server_degradation_probability
    )
    failed_bands = frozenset(
        (server, band)
        for server in range(n_servers)
        for band in range(n_subbands)
        if server not in failed_servers
        and config.band_outage_probability > 0.0
        and rng.random() < config.band_outage_probability
    )
    churned = frozenset(
        user
        for user in range(n_users)
        if config.arrival_churn_probability > 0.0
        and rng.random() < config.arrival_churn_probability
    )
    return FaultSet(
        n_servers=n_servers,
        n_subbands=n_subbands,
        failed_servers=failed_servers,
        degraded_servers=degraded,
        failed_bands=failed_bands,
        churned_users=churned,
    )


def draw_faults_for_seed(
    config: FaultConfig,
    n_users: int,
    n_servers: int,
    n_subbands: int,
    seed: int,
) -> FaultSet:
    """:func:`draw_faults` on stream :data:`FAULT_STREAM` of ``seed``."""
    return draw_faults(
        config,
        n_users,
        n_servers,
        n_subbands,
        child_rng(seed, FAULT_STREAM),
    )
