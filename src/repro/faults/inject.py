"""Apply a :class:`~repro.faults.models.FaultSet` to a scenario.

Injection rewrites the scenario's physical layer so the *unmodified*
schedulers and evaluators see the faults through the quantities they
already consume:

* a **failed server** keeps a strictly-positive but negligible capacity
  (:data:`~repro.faults.models.OUTAGE_CAPACITY_HZ`) and its channel
  gains are scaled by :data:`~repro.faults.models.OUTAGE_GAIN_FACTOR`,
  driving the spectral efficiency of every link to it to zero — the
  objective evaluator scores any decision using such a link as ``-inf``,
* a **degraded server** keeps its links but loses capacity,
* a **failed sub-band** has only its own gains scaled down,
* **churned users** are untouched here (the scenario still contains
  them); the degradation policy in :mod:`repro.core.degradation` forces
  them local and counts them separately.

The empty fault set returns the *same* scenario object, which is what
makes the zero-rate path bitwise identical to the fault-free path.
"""

from __future__ import annotations

import dataclasses

from repro.core.scheduler import ScheduleResult
from repro.faults.models import OUTAGE_CAPACITY_HZ, OUTAGE_GAIN_FACTOR, FaultSet
from repro.errors import ConfigurationError
from repro.obs.recorder import get_recorder
from repro.sim.metrics import SolutionMetrics, solution_metrics
from repro.sim.scenario import Scenario
from repro.tasks.server import MecServer


def apply_faults(scenario: Scenario, faults: FaultSet) -> Scenario:
    """Return ``scenario`` with ``faults`` burned into servers and gains.

    The returned scenario has the same users, OFDMA grid, and noise
    floor; only server capacities and the gain tensor change.  With an
    empty fault set the input object itself is returned (no copy), so
    identity — and therefore bitwise determinism — is preserved on the
    fault-free path.
    """
    if faults.n_servers != scenario.n_servers or faults.n_subbands != scenario.n_subbands:
        raise ConfigurationError(
            "fault set drawn for grid "
            f"({faults.n_servers}, {faults.n_subbands}) cannot apply to scenario "
            f"({scenario.n_servers}, {scenario.n_subbands})"
        )
    if faults.is_empty:
        # No event on the empty path: injection is the identity here and
        # the fault-free trace must not mention faults at all.
        return scenario

    rec = get_recorder()
    if rec.enabled:
        rec.event(
            "faults.injected",
            n_failed_servers=len(faults.failed_servers),
            n_degraded_servers=len(faults.degraded_servers),
            n_failed_bands=len(faults.failed_bands),
            n_churned_users=len(faults.churned_users),
        )
        rec.count("faults.injections")

    degraded = dict(faults.degraded_servers)
    servers = []
    for index, server in enumerate(scenario.servers):
        if index in faults.failed_servers:
            servers.append(MecServer(cpu_hz=OUTAGE_CAPACITY_HZ))
        elif index in degraded:
            servers.append(server.degraded(degraded[index]))
        else:
            servers.append(server)

    gains = scenario.gains.copy()
    for server in faults.failed_servers:
        gains[:, server, :] *= OUTAGE_GAIN_FACTOR
    for server, band in faults.failed_bands:
        gains[:, server, band] *= OUTAGE_GAIN_FACTOR

    return dataclasses.replace(scenario, servers=servers, gains=gains)


def faulted_solution_metrics(
    scenario: Scenario,
    result: ScheduleResult,
    *,
    planned_utility: float,
    n_fallback: int,
    n_churned: int,
    reschedule_wall_time_s: float,
) -> SolutionMetrics:
    """:func:`~repro.sim.metrics.solution_metrics` plus degradation fields.

    ``utility_retention`` is the achieved utility divided by the
    fault-free plan's utility; a non-positive plan (nothing worth
    offloading even before the faults) retains everything by definition.
    """
    base = solution_metrics(scenario, result)
    if planned_utility > 0.0:
        retention = base.system_utility / planned_utility
    else:
        retention = 1.0
    return dataclasses.replace(
        base,
        utility_retention=retention,
        n_fallback=n_fallback,
        n_churned=n_churned,
        reschedule_wall_time_s=reschedule_wall_time_s,
    )
