"""Fault injection for MEC scheduling experiments.

Deterministic, seed-derived fault models (server outages, capacity
degradation, sub-band outages, task-arrival churn) plus scenario
injection.  See :doc:`docs/robustness` for the full design and
:mod:`repro.core.degradation` for what schedulers do about the faults.
"""

from repro.faults.inject import apply_faults, faulted_solution_metrics
from repro.faults.models import (
    FAULT_STREAM,
    OUTAGE_CAPACITY_HZ,
    OUTAGE_GAIN_FACTOR,
    FaultConfig,
    FaultSet,
    draw_faults,
    draw_faults_for_seed,
)

__all__ = [
    "FAULT_STREAM",
    "OUTAGE_CAPACITY_HZ",
    "OUTAGE_GAIN_FACTOR",
    "FaultConfig",
    "FaultSet",
    "apply_faults",
    "draw_faults",
    "draw_faults_for_seed",
    "faulted_solution_metrics",
]
