"""Exception hierarchy for the repro library.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A scenario or algorithm was configured with invalid parameters."""


class InfeasibleDecisionError(ReproError):
    """An offloading decision violates constraints (12b)-(12d) of the paper."""


class InfeasibleAllocationError(ReproError):
    """A computing-resource allocation violates constraints (12e)-(12f)."""


class SolverError(ReproError):
    """A scheduling algorithm failed to produce a valid solution."""


class DeterminismViolation(ReproError):
    """The runtime sanitizer caught a reproducibility contract breach.

    Raised by :mod:`repro.sanitize` when per-stream draw ledgers diverge
    between replays that the contract requires to be bitwise identical
    (scalar vs delta vs batch, or a resumed run vs a fresh one).
    """
