"""Analysis utilities: convergence diagnostics and optimality gaps."""

from repro.analysis.optimality import GapReport, measure_optimality_gap
from repro.analysis.convergence import (
    ConvergenceReport,
    ascii_sparkline,
    best_traces_from_records,
    compare_convergence,
    summarize_trace,
    summarize_trace_records,
)

__all__ = [
    "ConvergenceReport",
    "GapReport",
    "measure_optimality_gap",
    "ascii_sparkline",
    "best_traces_from_records",
    "compare_convergence",
    "summarize_trace",
    "summarize_trace_records",
]
