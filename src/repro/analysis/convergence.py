"""Annealing-convergence diagnostics.

TSAJS's value proposition is converging to near-optimal utility within a
polynomial budget, and its threshold trigger exists purely to shape the
*convergence profile* (same ceiling, fewer iterations).  These helpers
quantify that profile from the per-temperature best-utility traces the
scheduler records with ``record_trace=True``:

* :func:`summarize_trace` — final value, levels to reach a fraction of the
  final value, and the normalised area under the trace (1.0 = the run
  spent its whole budget already at the final value; lower = slower
  climb).
* :func:`compare_convergence` — run several schedulers over shared seeds
  and tabulate their profiles side by side.
* :func:`best_traces_from_records` / :func:`summarize_trace_records` —
  recover the same per-temperature best-utility series from a recorded
  observability trace (``anneal.level`` events, see
  :mod:`repro.obs.trace`), so ``tsajs trace show --convergence`` can
  profile a run after the fact without re-running it.
* :func:`ascii_sparkline` — render a trace for terminal output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.scheduler import TsajsScheduler
from repro.errors import ConfigurationError
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario

#: Unicode block characters used by :func:`ascii_sparkline`.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of one best-utility trace.

    Attributes
    ----------
    final_value:
        The best utility at the end of the run.
    levels:
        Number of temperature levels recorded.
    levels_to_90 / levels_to_99:
        First level at which the trace reached 90 % / 99 % of its total
        climb from the initial value (0-indexed; equals ``levels`` if the
        threshold was never reached, which cannot happen for 90/99 < 100).
    normalized_auc:
        Mean of the trace after min-max normalisation to [0, 1]; higher
        means the run reached good solutions earlier.
    """

    final_value: float
    levels: int
    levels_to_90: int
    levels_to_99: int
    normalized_auc: float


def summarize_trace(trace: Sequence[float]) -> ConvergenceReport:
    """Build a :class:`ConvergenceReport` from a best-utility trace."""
    values = np.asarray(list(trace), dtype=float)
    if values.size == 0:
        raise ConfigurationError("cannot summarize an empty trace")
    final = float(values[-1])
    start = float(values[0])
    climb = final - start
    if climb <= 0.0:
        # Flat (or already-optimal start): converged immediately.
        return ConvergenceReport(
            final_value=final,
            levels=int(values.size),
            levels_to_90=0,
            levels_to_99=0,
            normalized_auc=1.0,
        )
    progress = (values - start) / climb
    levels_to_90 = int(np.argmax(progress >= 0.90))
    levels_to_99 = int(np.argmax(progress >= 0.99))
    return ConvergenceReport(
        final_value=final,
        levels=int(values.size),
        levels_to_90=levels_to_90,
        levels_to_99=levels_to_99,
        normalized_auc=float(progress.mean()),
    )


def best_traces_from_records(
    records: Sequence[Dict[str, object]],
) -> List[List[float]]:
    """Best-utility series per annealing run in an observability trace.

    ``records`` are decoded schema-v1 records (see
    :func:`repro.obs.trace.read_trace`).  Each annealing run emits one
    ``anneal.level`` event per temperature level whose ``best`` attr is
    the running best utility; runs are delimited by ``level`` restarting
    at 0.  A ``null`` best (a dead assignment's ``-inf``, sanitised out
    of the JSON) maps back to ``-inf``, so the recovered series equals
    the scheduler's own ``result.trace`` exactly.
    """
    traces: List[List[float]] = []
    current: Optional[List[float]] = None
    for record in records:
        if record.get("kind") != "event" or record.get("name") != "anneal.level":
            continue
        attrs = record["attrs"]
        assert isinstance(attrs, dict)
        if attrs.get("level") == 0 or current is None:
            current = []
            traces.append(current)
        best = attrs.get("best")
        current.append(float("-inf") if best is None else float(best))
    return traces


def summarize_trace_records(
    records: Sequence[Dict[str, object]], run_index: int = 0
) -> ConvergenceReport:
    """:func:`summarize_trace` applied to a recorded observability trace.

    ``run_index`` selects the annealing run when the trace contains
    several (e.g. a multi-scheme ``tsajs solve --trace``); negative
    indices count from the end as usual.
    """
    traces = best_traces_from_records(records)
    if not traces:
        raise ConfigurationError(
            "trace contains no anneal.level events; record it from an "
            "annealing scheduler (e.g. `tsajs solve --trace FILE`)"
        )
    try:
        trace = traces[run_index]
    except IndexError:
        raise ConfigurationError(
            f"run_index {run_index} out of range: trace contains "
            f"{len(traces)} annealing run(s)"
        ) from None
    return summarize_trace(trace)


def compare_convergence(
    scenario: Scenario,
    schedulers: Dict[str, TsajsScheduler],
    seeds: Sequence[int],
) -> Dict[str, List[ConvergenceReport]]:
    """Convergence profiles of several annealer variants on one scenario.

    Every scheduler must have been constructed with ``record_trace=True``
    (a :class:`ConfigurationError` is raised otherwise, since a traceless
    run cannot be profiled).  Each (scheduler, seed) pair gets its own
    derived RNG, so variants see identical chains of seeds.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    for name, scheduler in schedulers.items():
        if not getattr(scheduler, "record_trace", False):
            raise ConfigurationError(
                f"scheduler {name!r} must be built with record_trace=True"
            )
    reports: Dict[str, List[ConvergenceReport]] = {name: [] for name in schedulers}
    for seed in seeds:
        for name, scheduler in schedulers.items():
            result = scheduler.schedule(scenario, child_rng(seed, 100))
            reports[name].append(summarize_trace(result.trace))
    return reports


def ascii_sparkline(trace: Sequence[float], width: Optional[int] = None) -> str:
    """Render a trace as a unicode sparkline (e.g. ``▁▃▅▆▇█``).

    ``width`` resamples the trace to that many characters; by default one
    character per point.
    """
    values = np.asarray(list(trace), dtype=float)
    if values.size == 0:
        return ""
    if width is not None:
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width}")
        positions = np.linspace(0, values.size - 1, width)
        values = np.interp(positions, np.arange(values.size), values)
    low, high = float(values.min()), float(values.max())
    if high == low:
        return _SPARK_LEVELS[-1] * values.size
    scaled = (values - low) / (high - low)
    indices = np.minimum(
        (scaled * len(_SPARK_LEVELS)).astype(int), len(_SPARK_LEVELS) - 1
    )
    return "".join(_SPARK_LEVELS[i] for i in indices)
