"""Optimality-gap measurement against the exhaustive optimum.

Fig. 3's suboptimality analysis condensed into a reusable tool: run any
scheduler and the exhaustive solver over a set of small random instances
and report the distribution of relative gaps

    gap = (J_opt - J_scheduler) / |J_opt|       (0 = optimal)

This is the quantitative form of the paper's "TSAJS delivers
near-optimal performance" claim, applicable to any scheduler —
including user-supplied ones — as long as the instances stay within
exhaustive-search reach (roughly ``(S*N+1)^U`` under a few hundred
thousand leaves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.exhaustive import ExhaustiveScheduler
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class GapReport:
    """Distribution of relative optimality gaps over instances.

    Attributes
    ----------
    gaps:
        One relative gap per instance (0 = matched the optimum).
    mean_gap / max_gap:
        Summary statistics of ``gaps``.
    optimal_rate:
        Fraction of instances where the scheduler matched the optimum to
        within ``tolerance``.
    """

    scheduler_name: str
    gaps: List[float]
    tolerance: float

    @property
    def mean_gap(self) -> float:
        return float(np.mean(self.gaps))

    @property
    def max_gap(self) -> float:
        return float(np.max(self.gaps))

    @property
    def optimal_rate(self) -> float:
        hits = sum(1 for gap in self.gaps if gap <= self.tolerance)
        return hits / len(self.gaps)


def measure_optimality_gap(
    scheduler: Scheduler,
    config: Optional[SimulationConfig] = None,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    tolerance: float = 1e-9,
    max_leaves: int = 2_000_000,
) -> GapReport:
    """Measure ``scheduler``'s gap to the exhaustive optimum.

    Parameters
    ----------
    config:
        Instance family; defaults to the Fig. 3 small network
        (U=6, S=4, N=2).
    seeds:
        One random instance per seed.
    tolerance:
        Relative slack under which an instance counts as solved optimally.
    max_leaves:
        Safety cap forwarded to the exhaustive solver.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if config is None:
        config = SimulationConfig(n_users=6, n_servers=4, n_subbands=2)

    exhaustive = ExhaustiveScheduler(max_leaves=max_leaves)
    gaps: List[float] = []
    for seed in seeds:
        scenario = Scenario.build(config, seed=seed)
        optimum = exhaustive.schedule(scenario).utility
        achieved = scheduler.schedule(scenario, child_rng(seed, 100)).utility
        if achieved > optimum + 1e-9:
            raise ConfigurationError(
                f"scheduler {scheduler.name!r} reported utility {achieved} above "
                f"the exhaustive optimum {optimum}; objective mismatch?"
            )
        denom = abs(optimum) if optimum != 0.0 else 1.0
        gaps.append(max(0.0, (optimum - achieved) / denom))
    return GapReport(
        scheduler_name=scheduler.name, gaps=gaps, tolerance=tolerance
    )
