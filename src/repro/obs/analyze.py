"""Trace and metrics analysis behind the ``tsajs obs`` subcommands.

Consumes schema-v2 records (one file, or a telemetry directory merged by
:func:`repro.obs.dist.merge_trace_shards`) and renders:

* :func:`build_span_tree` / :func:`render_tree` — the reconstructed span
  hierarchy with per-span **total** (the span's own ``dur``) and
  **self** time (total minus the sum of direct children; clamped at 0,
  since children that ran in parallel workers can legitimately sum past
  their coordinator-side parent);
* :func:`critical_path` — the longest chain through the tree: from the
  heaviest root, repeatedly descend into the heaviest child.  On a
  sweep trace this names the seed/cluster/worker that gated wall clock;
* :func:`folded_stacks` — ``parent;child;leaf <self-µs>`` lines in the
  folded-stack format standard flamegraph tooling consumes
  (``flamegraph.pl``, speedscope, inferno);
* :func:`render_openmetrics` — an ``ExperimentResult.telemetry`` /
  ``metrics.json`` snapshot in OpenMetrics text format (counters,
  gauges, and histogram summaries) for service scraping.

Everything here is a pure function of its input records — analysis
never re-runs experiments, and deterministic inputs render to
byte-identical reports.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.units import seconds_to_micros

#: Attrs worth echoing inline in tree/path listings (identity, not bulk).
_KEY_ATTRS = ("task", "seed", "scheme", "cluster", "round")


@dataclass
class SpanNode:
    """One reconstructed span with its children and timing."""

    span_id: int
    name: str
    start_t: float
    attrs: Dict[str, Any]
    shard: Optional[str] = None
    parent_id: Optional[int] = None
    dur: Optional[float] = None
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        """The span's own duration (0 for spans missing their end)."""
        return self.dur if self.dur is not None else 0.0

    @property
    def self_s(self) -> float:
        """Duration not covered by direct children (clamped at 0)."""
        covered = sum(child.total_s for child in self.children)
        return max(0.0, self.total_s - covered)

    def label(self) -> str:
        """``name`` plus identifying attrs and shard provenance."""
        parts = [self.name]
        for key in _KEY_ATTRS:
            if key in self.attrs:
                parts.append(f"{key}={self.attrs[key]}")
        if self.shard is not None:
            parts.append(f"[shard {self.shard}]")
        return " ".join(parts)


def build_span_tree(records: List[Dict[str, Any]]) -> List[SpanNode]:
    """Reconstruct the span hierarchy from decoded trace records.

    Children are linked through the schema-v2 ``parent`` field; spans
    with no (or an unknown) parent become roots.  Record order is
    preserved among siblings, so deterministic traces yield
    deterministic trees.
    """
    nodes: Dict[int, SpanNode] = {}
    roots: List[SpanNode] = []
    for record in records:
        kind = record.get("kind")
        if kind == "span_start":
            node = SpanNode(
                span_id=int(record["id"]),
                name=str(record["name"]),
                start_t=float(record["t"]),
                attrs=dict(record.get("attrs", {})),
                shard=record.get("shard"),
                parent_id=record.get("parent"),
            )
            nodes[node.span_id] = node
        elif kind == "span_end":
            node = nodes.get(int(record["id"]))
            if node is not None:
                node.dur = float(record.get("dur", 0.0))
    for node in nodes.values():
        parent = (
            nodes.get(node.parent_id) if node.parent_id is not None else None
        )
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def render_tree(
    roots: List[SpanNode], max_depth: Optional[int] = None
) -> str:
    """Indented span hierarchy with per-span total/self time."""
    lines: List[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{node.label()}  "
            f"total={node.total_s:.6f}s self={node.self_s:.6f}s"
        )
        if max_depth is not None and depth + 1 >= max_depth:
            return
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


def critical_path(roots: List[SpanNode]) -> List[SpanNode]:
    """The heaviest root-to-leaf chain (what gated the wall clock)."""
    if not roots:
        return []
    path: List[SpanNode] = []
    node = max(roots, key=lambda n: (n.total_s, -n.start_t))
    while True:
        path.append(node)
        if not node.children:
            return path
        node = max(node.children, key=lambda n: (n.total_s, -n.start_t))


def render_critical_path(path: List[SpanNode]) -> str:
    """One line per hop: duration, share of the root, and the span label."""
    if not path:
        return "(no spans)"
    root_total = path[0].total_s
    lines = []
    for node in path:
        share = (node.total_s / root_total * 100.0) if root_total > 0 else 0.0
        lines.append(f"{node.total_s:12.6f}s {share:6.1f}%  {node.label()}")
    return "\n".join(lines)


def folded_stacks(roots: List[SpanNode]) -> List[str]:
    """Folded-stack lines (``a;b;c <self-µs>``) for flamegraph tooling.

    Self time is attributed to each stack in integer microseconds;
    stacks whose self time rounds to zero are dropped.  Lines are
    sorted, matching the conventional ``flamegraph.pl`` input shape and
    making the output deterministic.
    """
    totals: Dict[str, int] = {}

    def frame(node: SpanNode) -> str:
        # Semicolons separate stack frames in the folded format.
        return node.label().replace(";", ",")

    def visit(node: SpanNode, prefix: str) -> None:
        stack = f"{prefix};{frame(node)}" if prefix else frame(node)
        micros = int(round(seconds_to_micros(node.self_s)))
        if micros > 0:
            totals[stack] = totals.get(stack, 0) + micros
        for child in node.children:
            visit(child, stack)

    for root in roots:
        visit(root, "")
    return [f"{stack} {value}" for stack, value in sorted(totals.items())]


# --- OpenMetrics export ----------------------------------------------------

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _metric_name(name: str) -> str:
    """A series name made OpenMetrics-legal (dots and dashes to ``_``)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = f"_{cleaned}"
    return cleaned


def _split_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Parse ``name{k=v,...}`` (the :func:`repro.obs.metrics.metric_key`
    rendering) back into name + labels."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    body = rest.rstrip("}")
    labels: Dict[str, str] = {}
    for pair in body.split(","):
        label, sep, value = pair.partition("=")
        if sep:
            labels[label] = value
    return name, labels


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    escaped = ",".join(
        f'{_metric_name(key)}="' +
        value.replace("\\", "\\\\").replace('"', '\\"') +
        '"'
        for key, value in sorted(labels.items())
    )
    return "{" + escaped + "}"


def render_openmetrics(snapshot: Mapping[str, Any]) -> str:
    """A metrics snapshot in OpenMetrics text format.

    ``snapshot`` is the :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
    shape (``counters`` / ``gauges`` / ``histograms``); the same document
    lands in ``ExperimentResult.telemetry`` and ``metrics.json``.
    Counters become ``<name>_total``, gauges pass through, histogram
    summaries export ``_count`` / ``_sum`` plus ``_min`` / ``_max``
    gauges.  Output is deterministic for a deterministic snapshot.
    """
    for section in ("counters", "gauges", "histograms"):
        if section in snapshot and not isinstance(snapshot[section], Mapping):
            raise ConfigurationError(
                f"metrics snapshot section {section!r} must be an object"
            )
    lines: List[str] = []

    def families(section: str) -> Dict[str, List[Tuple[Dict[str, str], Any]]]:
        grouped: Dict[str, List[Tuple[Dict[str, str], Any]]] = {}
        for key, value in snapshot.get(section, {}).items():
            name, labels = _split_series_key(key)
            grouped.setdefault(_metric_name(name), []).append((labels, value))
        return grouped

    for name, series in sorted(families("counters").items()):
        lines.append(f"# TYPE {name} counter")
        for labels, value in series:
            lines.append(f"{name}_total{_render_labels(labels)} {value}")
    for name, series in sorted(families("gauges").items()):
        lines.append(f"# TYPE {name} gauge")
        for labels, value in series:
            lines.append(f"{name}{_render_labels(labels)} {value}")
    for name, series in sorted(families("histograms").items()):
        lines.append(f"# TYPE {name} summary")
        for labels, stats in series:
            rendered = _render_labels(labels)
            lines.append(f"{name}_count{rendered} {stats['count']}")
            lines.append(f"{name}_sum{rendered} {stats['total']}")
        lines.append(f"# TYPE {name}_min gauge")
        for labels, stats in series:
            lines.append(f"{name}_min{_render_labels(labels)} {stats['min']}")
        lines.append(f"# TYPE {name}_max gauge")
        for labels, stats in series:
            lines.append(f"{name}_max{_render_labels(labels)} {stats['max']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
