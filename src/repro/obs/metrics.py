"""Counters, gauges and histograms aggregated per labelled series.

A deliberately small metrics model (no exposition format, no time
windows): every instrument is identified by a name plus a label mapping
(``scheduler.evaluations{scheme=TSAJS,seed=3}``), values accumulate
in-process, and :meth:`MetricsRegistry.snapshot` renders everything into
one plain, JSON-ready, deterministically-ordered dict.  The experiment
runner labels its series per ``(scheme, seed)`` cell, which is exactly
the granularity the paper's figures aggregate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Union

from repro.errors import ConfigurationError

#: Values a label may carry (rendered with ``str``).
LabelValue = Union[str, int, float, bool]


def metric_key(name: str, labels: Mapping[str, LabelValue]) -> str:
    """Render ``name`` + labels into the canonical series key.

    Labels are sorted by key, so the same series always renders to the
    same string regardless of call-site keyword order.
    """
    if not name:
        raise ConfigurationError("metric name must be non-empty")
    if not labels:
        return name
    rendered = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{rendered}}}"


@dataclass
class HistogramStats:
    """Streaming summary of one histogram series (no buckets kept)."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """In-process accumulation of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, HistogramStats] = {}

    def count(
        self, name: str, value: float = 1.0, **labels: LabelValue
    ) -> None:
        """Add ``value`` (default 1) to a monotonically-growing counter."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge_set(self, name: str, value: float, **labels: LabelValue) -> None:
        """Set a gauge to its latest value (last write wins)."""
        self._gauges[metric_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: LabelValue) -> None:
        """Record one sample into a histogram series."""
        key = metric_key(name, labels)
        stats = self._histograms.get(key)
        if stats is None:
            stats = self._histograms[key] = HistogramStats()
        stats.observe(value)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self) -> Dict[str, Any]:
        """All series as one JSON-ready dict with deterministic ordering."""
        return {
            "counters": {key: self._counters[key] for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key] for key in sorted(self._gauges)},
            "histograms": {
                key: self._histograms[key].as_dict()
                for key in sorted(self._histograms)
            },
        }
