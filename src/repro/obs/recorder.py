"""Recorder interface, the no-op default, and the process-level state.

The instrumented call sites (annealer, scheduler, runner, fault paths)
talk to a :class:`Recorder`; which concrete recorder they reach is a
process-level decision:

* by default the shared :data:`NULL_RECORDER` is installed — every hook
  is an attribute check or an empty method, the hot paths guard their
  emission behind ``recorder.enabled``, and results are bitwise
  identical to an uninstrumented build (enforced by
  ``tests/test_obs_integration.py`` and ``benchmarks/bench_obs.py``);
* ``tsajs solve --trace`` / ``tsajs run --telemetry`` (or any caller via
  :func:`set_recorder` / :func:`use_recorder`) install a
  :class:`~repro.obs.trace.TraceRecorder` for the duration of the run.

Recorders are process-local on purpose: a pool worker starts with the
null recorder (and a forked recorder refuses to write from a foreign
PID), so parallel sweeps record parent-side events only — spawning one
writer per line is how interleaved trace files happen.
"""

from __future__ import annotations

from contextlib import contextmanager
from types import TracebackType
from typing import Iterator, Optional, Sequence, Type, Union

#: Values an event attribute or metric label may carry (schema v1 scalars).
Scalar = Union[str, int, float, bool, None]
AttrValue = Union[Scalar, Sequence[Scalar]]


class NullSpan:
    """The reusable no-op context manager returned by null ``span()``."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False


_NULL_SPAN = NullSpan()


class Recorder:
    """Base recorder: every hook is a no-op (this *is* the null recorder).

    Subclasses (:class:`~repro.obs.trace.TraceRecorder`) override the
    hooks; instrumented code checks :attr:`enabled` before doing any
    per-event work beyond the call itself, so the disabled path costs
    one attribute read per emission site.
    """

    #: Whether emissions reach a sink; hot loops gate work on this.
    enabled: bool = False
    #: Whether per-iteration ``anneal.step`` events are wanted (heavy).
    iteration_detail: bool = False

    def event(self, name: str, **attrs: AttrValue) -> None:
        """Emit one point event."""

    def span(self, name: str, **attrs: AttrValue) -> NullSpan:
        """Open a span; use as a context manager around the timed work."""
        return _NULL_SPAN

    def count(self, name: str, value: float = 1.0, **labels: AttrValue) -> None:
        """Add to a counter series."""

    def gauge_set(self, name: str, value: float, **labels: AttrValue) -> None:
        """Set a gauge series to its latest value."""

    def observe(self, name: str, value: float, **labels: AttrValue) -> None:
        """Record one histogram sample."""

    def snapshot(self) -> Optional[dict]:
        """JSON-ready metrics snapshot, or ``None`` for the null recorder."""
        return None

    def close(self) -> None:
        """Flush and release the sink (idempotent)."""


class NullRecorder(Recorder):
    """Explicit alias of the no-op base, for readable call sites."""


#: The shared default recorder (never closed, never replaced in place).
NULL_RECORDER = NullRecorder()

_CURRENT: Recorder = NULL_RECORDER


def get_recorder() -> Recorder:
    """The process-level recorder (the null recorder unless installed)."""
    return _CURRENT


def set_recorder(recorder: Optional[Recorder]) -> Recorder:
    """Install a process-level recorder (``None`` restores the null one).

    Returns the previously installed recorder so callers can restore it.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` for the duration of a ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
