"""Clock abstraction — the only sanctioned timing source in the library.

All timing in ``repro.core`` / ``repro.sim`` / ``repro.experiments`` goes
through this module instead of calling ``time.*`` directly (enforced by
lint rule R008).  Centralising the call sites buys three things:

* **Determinism on demand.**  Production code uses the process-wide
  :class:`MonotonicClock`; tests and trace-determinism checks inject a
  :class:`TickClock`, which advances by a fixed step per read, so two
  identical runs emit byte-identical traces.
* **R002 hygiene.**  ``time.perf_counter`` never feeds algorithm state —
  only telemetry — and funnelling every read through one seam keeps that
  auditable (a single module to review instead of scattered call sites).
* **Monotonic-delta discipline.**  Clock readings are *relative* seconds
  with no epoch semantics; nothing derived from them can leak wall-clock
  timestamps into trace payloads.

``time`` itself is imported only here and in :mod:`repro.obs` siblings;
everything else uses :class:`Stopwatch` / :func:`monotonic` / :func:`sleep`.
"""

from __future__ import annotations

import time
from typing import Optional, Protocol, runtime_checkable

from repro.errors import ConfigurationError


@runtime_checkable
class Clock(Protocol):
    """Anything with a monotonic ``now()`` in (fractional) seconds."""

    def now(self) -> float:
        """Current monotonic reading in seconds (arbitrary origin)."""
        ...  # pragma: no cover - protocol definition


class MonotonicClock:
    """The real monotonic clock (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class TickClock:
    """Deterministic clock advancing by a fixed ``step`` per read.

    Used by tests and by trace-determinism checks: with a ``TickClock``
    injected into a recorder, every ``t`` / ``dur`` field of the emitted
    trace is a pure function of the event sequence, so two identical
    runs produce byte-identical files.
    """

    def __init__(self, step: float = 1.0, start: float = 0.0) -> None:
        if step < 0:
            raise ConfigurationError(f"step must be >= 0, got {step}")
        self._next = start
        self._step = step

    def now(self) -> float:
        value = self._next
        self._next += self._step
        return value

    @property
    def step(self) -> float:
        """The fixed advance per read (propagated to worker clocks)."""
        return self._step


#: Process-wide default clock; swap with :func:`set_default_clock` in tests.
_DEFAULT_CLOCK: Clock = MonotonicClock()


def default_clock() -> Clock:
    """The process-wide clock (a :class:`MonotonicClock` unless replaced)."""
    return _DEFAULT_CLOCK


def set_default_clock(clock: Optional[Clock]) -> Clock:
    """Install a process-wide clock (``None`` restores the monotonic one).

    Returns the previously installed clock so callers can restore it.
    """
    global _DEFAULT_CLOCK
    previous = _DEFAULT_CLOCK
    _DEFAULT_CLOCK = clock if clock is not None else MonotonicClock()
    return previous


def monotonic() -> float:
    """One reading of the default clock (monotonic seconds)."""
    return _DEFAULT_CLOCK.now()


class Stopwatch:
    """Measures an elapsed monotonic interval from its construction.

    The drop-in replacement for the ``start = time.perf_counter(); ...;
    elapsed = time.perf_counter() - start`` idiom — same two clock reads,
    but through the injectable seam.
    """

    __slots__ = ("_clock", "_start")

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._clock = clock if clock is not None else _DEFAULT_CLOCK
        self._start = self._clock.now()

    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return self._clock.now() - self._start

    def restart(self) -> None:
        """Reset the origin to the current reading."""
        self._start = self._clock.now()


def sleep(seconds: float) -> None:
    """Block for ``seconds`` (the retry-backoff seam; 0 returns at once).

    Kept here so ``repro.sim`` never imports ``time`` directly — the
    backoff delay is telemetry-adjacent (it shapes wall time, never
    results), and tests monkeypatch this one name to run instantly.
    """
    if seconds > 0:
        time.sleep(seconds)
