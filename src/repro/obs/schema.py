"""Trace schema v2 — the JSONL record contract and its validator.

Every line of a trace file is one JSON object with the fields

========== ==============================================================
field      meaning
========== ==============================================================
``v``      schema version (the integer ``1`` or ``2``)
``kind``   ``"event"``, ``"span_start"`` or ``"span_end"``
``name``   dotted event name (``"anneal.level"``, ``"runner.seed"``, ...)
``t``      monotonic seconds since the recorder was created (>= 0)
``attrs``  flat JSON object of deterministic payload values
``id``     span identifier (spans only; pairs ``span_start``/``span_end``)
``dur``    span duration in seconds (``span_end`` only, >= 0)
``trace``  distributed trace id the record belongs to (v2, optional)
``parent`` span id of the enclosing span (v2, optional)
``shard``  originating worker shard label (v2, optional; stamped by
           :func:`repro.obs.dist.merge_trace_shards`)
========== ==============================================================

Schema v2 is a strict superset of v1: the three optional fields above
carry the cross-process span topology (see ``docs/observability.md``,
"Distributed tracing") and two new event names join the vocabulary —
``worker_detached`` (a parallel wave ran without trace-context
propagation, so worker-side telemetry was dropped) and
``shard_truncated`` (a worker shard was torn mid-write and quarantined
by the merge).  v1 documents remain readable: the validator accepts
both versions, but rejects the v2-only fields on a v1 record.

Two invariants keep traces reproducible and diffable:

* **Timing lives only in ``t`` / ``dur``.**  ``attrs`` values carry
  algorithm state (temperatures, utilities, counters) — never clock
  readings — so stripping ``t``/``dur`` from two runs of the same seed
  yields identical documents.
* **Attrs are flat and scalar.**  Values are strings, finite numbers,
  booleans, ``None``, or lists thereof; nesting is rejected so every
  line stays greppable and schema checks stay O(line).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator, List, Mapping, Tuple, Union

from repro.errors import ReproError

#: Current trace schema version (written by every recorder).
SCHEMA_VERSION = 2

#: Versions the validator accepts (v2 is a strict superset of v1).
SUPPORTED_VERSIONS: Tuple[int, ...] = (1, 2)

#: The record kinds the schema defines.
KINDS: Tuple[str, ...] = ("event", "span_start", "span_end")

_SCALAR_TYPES = (str, bool, int, float, type(None))


class TraceSchemaError(ReproError):
    """A trace record (or file line) violates the trace schema."""


def _fail(message: str, line: Union[int, None]) -> "TraceSchemaError":
    prefix = f"line {line}: " if line is not None else ""
    return TraceSchemaError(f"{prefix}{message}")


def _check_scalar(key: str, value: Any, line: Union[int, None]) -> None:
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return
    if isinstance(value, (int, float)):
        if value != value or value in (float("inf"), float("-inf")):
            raise _fail(f"attr {key!r} must be finite, got {value!r}", line)
        return
    raise _fail(
        f"attr {key!r} must be a scalar or list of scalars, got "
        f"{type(value).__name__}",
        line,
    )


def validate_record(record: Any, line: Union[int, None] = None) -> None:
    """Check one decoded record against the trace schema (v1 or v2).

    Raises :class:`TraceSchemaError` with the offending field (and the
    1-based ``line`` number when given); returns ``None`` on success.
    """
    if not isinstance(record, dict):
        raise _fail(f"record must be a JSON object, got {type(record).__name__}", line)
    version = record.get("v")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise _fail(f"unsupported schema version {version!r} (expected one of {supported})", line)
    kind = record.get("kind")
    if kind not in KINDS:
        raise _fail(f"unknown kind {kind!r} (expected one of {', '.join(KINDS)})", line)
    name = record.get("name")
    if not isinstance(name, str) or not name:
        raise _fail(f"name must be a non-empty string, got {name!r}", line)
    t = record.get("t")
    if isinstance(t, bool) or not isinstance(t, (int, float)) or t < 0 or t != t:
        raise _fail(f"t must be a number >= 0, got {t!r}", line)
    attrs = record.get("attrs")
    if not isinstance(attrs, dict):
        raise _fail(f"attrs must be an object, got {type(attrs).__name__}", line)
    for key, value in attrs.items():
        if isinstance(value, list):
            for item in value:
                _check_scalar(key, item, line)
        else:
            _check_scalar(key, value, line)

    allowed = {"v", "kind", "name", "t", "attrs"}
    if kind in ("span_start", "span_end"):
        span_id = record.get("id")
        if isinstance(span_id, bool) or not isinstance(span_id, int) or span_id < 0:
            raise _fail(f"span id must be an integer >= 0, got {span_id!r}", line)
        allowed.add("id")
    if kind == "span_end":
        dur = record.get("dur")
        if isinstance(dur, bool) or not isinstance(dur, (int, float)) or dur < 0:
            raise _fail(f"dur must be a number >= 0, got {dur!r}", line)
        allowed.add("dur")
    if version >= 2:
        # The v2 distributed-tracing fields are optional on every kind.
        if "trace" in record:
            trace = record["trace"]
            if not isinstance(trace, str) or not trace:
                raise _fail(f"trace must be a non-empty string, got {trace!r}", line)
            allowed.add("trace")
        if "parent" in record:
            parent = record["parent"]
            if isinstance(parent, bool) or not isinstance(parent, int) or parent < 0:
                raise _fail(f"parent must be an integer >= 0, got {parent!r}", line)
            allowed.add("parent")
        if "shard" in record:
            shard = record["shard"]
            if not isinstance(shard, str) or not shard:
                raise _fail(f"shard must be a non-empty string, got {shard!r}", line)
            allowed.add("shard")
    extra = sorted(set(record) - allowed)
    if extra:
        raise _fail(f"unexpected field(s): {', '.join(extra)}", line)


def iter_trace_lines(lines: Iterable[str]) -> Iterator[dict]:
    """Decode and validate JSONL ``lines``, yielding schema-valid records.

    Blank lines are skipped; a malformed or schema-violating line raises
    :class:`TraceSchemaError` naming its 1-based position.
    """
    for number, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise _fail(f"invalid JSON: {exc}", number) from exc
        validate_record(record, line=number)
        yield record


def validate_trace(lines: Iterable[str]) -> List[dict]:
    """Validate a whole JSONL document; returns the decoded records."""
    return list(iter_trace_lines(lines))


def span_pairs_balanced(records: Iterable[Mapping[str, Any]]) -> bool:
    """Whether every ``span_start`` has a matching later ``span_end``."""
    open_ids = set()
    for record in records:
        if record["kind"] == "span_start":
            open_ids.add(record["id"])
        elif record["kind"] == "span_end":
            if record["id"] not in open_ids:
                return False
            open_ids.discard(record["id"])
    return not open_ids
