"""``repro.obs`` — tracing, metrics and profiling for the reproduction.

The observability layer makes the paper's *dynamic* claims inspectable:
Fig. 3's near-optimality and Fig. 8's runtime advantage depend on how
TTSA converges (acceptance rate, the Algorithm-2 phase switch at
``1.75·L`` accepted-worse moves, the α₁→α₂ cooling split), and this
package records those trajectories instead of re-running them.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.clock` — the injected monotonic clock every timed
  call site uses (lint rule R008 bans direct ``time.*`` elsewhere);
* :mod:`repro.obs.recorder` / :mod:`repro.obs.trace` — the
  :class:`Recorder` interface, the zero-overhead :class:`NullRecorder`
  default, and the JSONL schema-v2 :class:`TraceRecorder`;
* :mod:`repro.obs.metrics` / :mod:`repro.obs.profile` — per-series
  counters/gauges/histograms and opt-in cProfile hotspot capture;
* :mod:`repro.obs.dist` / :mod:`repro.obs.analyze` /
  :mod:`repro.obs.sentinel` — distributed trace-context propagation and
  shard merging, span-tree / critical-path / flamegraph / OpenMetrics
  analysis, and the BENCH-baseline perf-regression sentinel (the
  ``tsajs obs`` subcommands).

The cardinal rule: **instrumentation never influences results.**  The
null path is held bitwise-identical to an uninstrumented build by test
and to <3 % overhead by ``benchmarks/bench_obs.py``; recorders never
touch any RNG stream; trace payloads carry monotonic deltas only.
"""

from repro.obs.analyze import (
    SpanNode,
    build_span_tree,
    critical_path,
    folded_stacks,
    render_critical_path,
    render_openmetrics,
    render_tree,
)
from repro.obs.clock import (
    Clock,
    MonotonicClock,
    Stopwatch,
    TickClock,
    default_clock,
    monotonic,
    set_default_clock,
    sleep,
)
from repro.obs.dist import (
    TraceContext,
    find_shards,
    merge_trace_shards,
    propagated_context,
    worker_trace,
    write_merged_trace,
)
from repro.obs.metrics import HistogramStats, MetricsRegistry, metric_key
from repro.obs.profile import (
    Hotspot,
    ProfileCapture,
    extract_hotspots,
    maybe_profile,
    profiling_enabled,
    set_profiling,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    get_recorder,
    set_recorder,
    use_recorder,
)
from repro.obs.schema import (
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    TraceSchemaError,
    iter_trace_lines,
    span_pairs_balanced,
    validate_record,
    validate_trace,
)
from repro.obs.sentinel import (
    DEFAULT_BENCH_FILES,
    SentinelReport,
    render_report,
    run_sentinel,
)
from repro.obs.trace import (
    Span,
    TraceRecorder,
    emit_worker_detached,
    events_named,
    read_trace,
)

__all__ = [
    "Clock",
    "MonotonicClock",
    "TickClock",
    "Stopwatch",
    "default_clock",
    "set_default_clock",
    "monotonic",
    "sleep",
    "MetricsRegistry",
    "HistogramStats",
    "metric_key",
    "Hotspot",
    "ProfileCapture",
    "extract_hotspots",
    "maybe_profile",
    "profiling_enabled",
    "set_profiling",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "TraceSchemaError",
    "validate_record",
    "validate_trace",
    "iter_trace_lines",
    "span_pairs_balanced",
    "TraceRecorder",
    "Span",
    "read_trace",
    "events_named",
    "emit_worker_detached",
    "TraceContext",
    "propagated_context",
    "worker_trace",
    "find_shards",
    "merge_trace_shards",
    "write_merged_trace",
    "SpanNode",
    "build_span_tree",
    "render_tree",
    "critical_path",
    "render_critical_path",
    "folded_stacks",
    "render_openmetrics",
    "SentinelReport",
    "run_sentinel",
    "render_report",
    "DEFAULT_BENCH_FILES",
]
