"""Opt-in cProfile capture with top-N hotspot extraction.

Profiling answers the question the trace cannot: *where inside* a slow
seed the time went.  It is strictly opt-in (``tsajs run --telemetry DIR
--profile`` or :func:`set_profiling`) because cProfile's per-call hook
costs far more than the <3 % budget the disabled observability path is
held to — and its timings are inherently machine-local, so hotspot
reports are written as sidecar JSON files next to the telemetry, never
into the deterministic trace stream.
"""

from __future__ import annotations

import cProfile
import json
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.atomicio import atomic_write_text
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Hotspot:
    """One profiled function's aggregate cost."""

    function: str
    file: str
    line: int
    calls: int
    #: Time inside the function itself (excluding callees), seconds.
    internal_s: float
    #: Time including callees, seconds.
    cumulative_s: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "file": self.file,
            "line": self.line,
            "calls": self.calls,
            "internal_s": round(self.internal_s, 6),
            "cumulative_s": round(self.cumulative_s, 6),
        }


def extract_hotspots(profile: cProfile.Profile, top_n: int = 20) -> List[Hotspot]:
    """The ``top_n`` functions by cumulative time, deterministically ordered."""
    if top_n < 1:
        raise ConfigurationError(f"top_n must be >= 1, got {top_n}")
    rows: List[Hotspot] = []
    for entry in profile.getstats():  # type: ignore[attr-defined]
        code = entry.code
        if isinstance(code, str):
            function, file, line = code, "~", 0
        else:
            function, file, line = code.co_name, code.co_filename, code.co_firstlineno
        rows.append(
            Hotspot(
                function=function,
                file=file,
                line=line,
                calls=int(entry.callcount),
                internal_s=float(entry.inlinetime),
                cumulative_s=float(entry.totaltime),
            )
        )
    rows.sort(key=lambda h: (-h.cumulative_s, h.file, h.line, h.function))
    return rows[:top_n]


class ProfileCapture:
    """Context manager capturing a cProfile run; hotspots appear on exit."""

    def __init__(self, top_n: int = 20) -> None:
        self.top_n = top_n
        self.hotspots: List[Hotspot] = []
        self._profile = cProfile.Profile()

    def __enter__(self) -> "ProfileCapture":
        self._profile.enable()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._profile.disable()
        self.hotspots = extract_hotspots(self._profile, self.top_n)
        return False


#: Process-level profiling destination (``None`` = profiling disabled).
_PROFILE_DIR: Optional[Path] = None
_TOP_N: int = 20


def set_profiling(
    directory: Optional[Union[str, Path]], top_n: int = 20
) -> None:
    """Enable per-seed profiling into ``directory`` (``None`` disables)."""
    global _PROFILE_DIR, _TOP_N
    if top_n < 1:
        raise ConfigurationError(f"top_n must be >= 1, got {top_n}")
    _PROFILE_DIR = Path(directory) if directory is not None else None
    _TOP_N = top_n
    if _PROFILE_DIR is not None:
        _PROFILE_DIR.mkdir(parents=True, exist_ok=True)


def profiling_enabled() -> bool:
    """Whether per-seed profile capture is switched on."""
    return _PROFILE_DIR is not None


@contextmanager
def maybe_profile(tag: str) -> Iterator[Optional[ProfileCapture]]:
    """Profile the block and write ``profile_<tag>.json`` when enabled.

    With profiling disabled this yields ``None`` at the cost of one
    module-global read — callers can wrap hot sections unconditionally.
    """
    directory = _PROFILE_DIR
    if directory is None:
        yield None
        return
    capture = ProfileCapture(top_n=_TOP_N)
    try:
        with capture:
            yield capture
    finally:
        path = directory / f"profile_{tag}.json"
        payload = {
            "tag": tag,
            "top_n": capture.top_n,
            "hotspots": [h.as_dict() for h in capture.hotspots],
        }
        atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
