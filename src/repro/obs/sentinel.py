"""Perf-regression sentinel over the checked-in BENCH_*.json baselines.

The repo pins four benchmark trajectories at its root —
``BENCH_delta.json`` (delta-evaluator speedup), ``BENCH_obs.json``
(telemetry overhead), ``BENCH_batch.json`` (batch-evaluator scaling) and
``BENCH_shard.json`` (sharded solve scaling).  Until now they were
documentation; :func:`run_sentinel` turns them into an enforced gate by
comparing freshly produced copies against the baselines with per-metric
tolerance bands and returning a machine-readable verdict (wired as
``tsajs obs sentinel`` and the ``obs-dist-smoke`` CI job).

Only **machine-independent** metrics are enforced.  Absolute timings
(``*_us_per_eval``, ``reference_ms``, ``cluster_solve_mean_s``, ...)
vary with the host and are reported informationally; the enforced bands
cover:

* ``speedup`` ratios (delta vs full, batch vs full) — relative change
  must not drop more than the ratio tolerance;
* ``*_overhead_pct`` (telemetry overhead) — must not worsen by more
  than the point tolerance (absolute percentage points);
* correctness booleans (``values_identical``, ``outcomes_identical``)
  — must match exactly.

Nested documents (the ``scales`` lists in BENCH_batch/BENCH_shard) are
flattened into dotted paths (``scales[0].speedup_vs_full``) and each
leaf classified by its terminal key name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

#: The baseline files the sentinel guards, relative to a directory.
DEFAULT_BENCH_FILES: Tuple[str, ...] = (
    "BENCH_delta.json",
    "BENCH_obs.json",
    "BENCH_batch.json",
    "BENCH_shard.json",
)

#: Default relative tolerance for ratio metrics (speedups), in percent.
#: Deliberately generous: CI runners are noisy and the bench suite pins
#: its own hard floors; the sentinel catches *drift*, not jitter.
DEFAULT_RATIO_TOLERANCE_PCT = 40.0

#: Default tolerance for ``*_pct`` metrics, in absolute percentage points.
DEFAULT_POINT_TOLERANCE = 10.0


@dataclass(frozen=True)
class Check:
    """One compared metric with its band and outcome."""

    file: str
    metric: str
    baseline: Any
    current: Any
    band: str  # "ratio" | "points" | "exact" | "info"
    tolerance: Optional[float]
    status: str  # "pass" | "fail" | "info"
    detail: str = ""

    def to_payload(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "band": self.band,
            "tolerance": self.tolerance,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass
class SentinelReport:
    """Machine-readable verdict over every compared BENCH file."""

    checks: List[Check] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def verdict(self) -> str:
        failed = any(check.status == "fail" for check in self.checks)
        return "fail" if (failed or self.errors) else "pass"

    @property
    def n_enforced(self) -> int:
        return sum(1 for check in self.checks if check.band != "info")

    def failures(self) -> List[Check]:
        return [check for check in self.checks if check.status == "fail"]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "n_checks": len(self.checks),
            "n_enforced": self.n_enforced,
            "errors": list(self.errors),
            "checks": [check.to_payload() for check in self.checks],
        }


def _flatten(payload: Any, prefix: str = "") -> Iterator[Tuple[str, Any]]:
    """Leaves of a nested JSON document as ``(dotted.path, value)``."""
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _flatten(payload[key], path)
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            yield from _flatten(item, f"{prefix}[{index}]")
    else:
        yield prefix, payload


def _leaf_key(path: str) -> str:
    """The terminal key of a dotted path (``scales[0].speedup`` → ``speedup``)."""
    tail = path.rsplit(".", 1)[-1]
    return tail.split("[", 1)[0]


def classify_metric(path: str, value: Any) -> Tuple[str, Optional[float]]:
    """The tolerance band for one leaf: ``(band, tolerance)``.

    ``ratio`` bands return the relative tolerance in percent, ``points``
    bands the absolute percentage-point budget, ``exact`` and ``info``
    return ``None``.
    """
    key = _leaf_key(path)
    if isinstance(value, bool):
        return "exact", None
    if not isinstance(value, (int, float)):
        return "info", None
    if "speedup" in key:
        return "ratio", DEFAULT_RATIO_TOLERANCE_PCT
    if key.endswith("_overhead_pct"):
        return "points", DEFAULT_POINT_TOLERANCE
    return "info", None


def compare_documents(
    file_label: str,
    baseline: Any,
    current: Any,
    ratio_tolerance_pct: float = DEFAULT_RATIO_TOLERANCE_PCT,
    point_tolerance: float = DEFAULT_POINT_TOLERANCE,
) -> List[Check]:
    """Per-metric checks for one baseline/current document pair."""
    base_leaves = dict(_flatten(baseline))
    curr_leaves = dict(_flatten(current))
    checks: List[Check] = []
    for path in sorted(base_leaves):
        base_value = base_leaves[path]
        band, _ = classify_metric(path, base_value)
        if band == "info":
            if path in curr_leaves:
                checks.append(
                    Check(
                        file=file_label,
                        metric=path,
                        baseline=base_value,
                        current=curr_leaves[path],
                        band="info",
                        tolerance=None,
                        status="info",
                    )
                )
            continue
        if path not in curr_leaves:
            checks.append(
                Check(
                    file=file_label,
                    metric=path,
                    baseline=base_value,
                    current=None,
                    band=band,
                    tolerance=None,
                    status="fail",
                    detail="metric missing from current document",
                )
            )
            continue
        curr_value = curr_leaves[path]
        if band == "exact":
            status = "pass" if curr_value == base_value else "fail"
            detail = "" if status == "pass" else (
                f"expected {base_value!r}, got {curr_value!r}"
            )
            checks.append(
                Check(
                    file=file_label,
                    metric=path,
                    baseline=base_value,
                    current=curr_value,
                    band="exact",
                    tolerance=None,
                    status=status,
                    detail=detail,
                )
            )
            continue
        if not isinstance(curr_value, (int, float)) or isinstance(curr_value, bool):
            checks.append(
                Check(
                    file=file_label,
                    metric=path,
                    baseline=base_value,
                    current=curr_value,
                    band=band,
                    tolerance=None,
                    status="fail",
                    detail=f"expected a number, got {type(curr_value).__name__}",
                )
            )
            continue
        if band == "ratio":
            floor = float(base_value) * (1.0 - ratio_tolerance_pct / 100.0)
            status = "pass" if float(curr_value) >= floor else "fail"
            detail = "" if status == "pass" else (
                f"{curr_value} fell below {floor:.4g} "
                f"(baseline {base_value} - {ratio_tolerance_pct:.0f}%)"
            )
            checks.append(
                Check(
                    file=file_label,
                    metric=path,
                    baseline=base_value,
                    current=curr_value,
                    band="ratio",
                    tolerance=ratio_tolerance_pct,
                    status=status,
                    detail=detail,
                )
            )
        else:  # points: higher overhead is worse
            ceiling = float(base_value) + point_tolerance
            status = "pass" if float(curr_value) <= ceiling else "fail"
            detail = "" if status == "pass" else (
                f"{curr_value} exceeded {ceiling:.4g} "
                f"(baseline {base_value} + {point_tolerance:.0f} points)"
            )
            checks.append(
                Check(
                    file=file_label,
                    metric=path,
                    baseline=base_value,
                    current=curr_value,
                    band="points",
                    tolerance=point_tolerance,
                    status=status,
                    detail=detail,
                )
            )
    return checks


def run_sentinel(
    current_dir: Union[str, Path],
    baseline_dir: Union[str, Path],
    files: Optional[Tuple[str, ...]] = None,
    ratio_tolerance_pct: float = DEFAULT_RATIO_TOLERANCE_PCT,
    point_tolerance: float = DEFAULT_POINT_TOLERANCE,
) -> SentinelReport:
    """Compare every BENCH file under ``current_dir`` against its baseline.

    A baseline file that exists but has no current counterpart (or
    either side failing to parse) is an error, not a silent skip — a
    sentinel that cannot see the benchmark must not report green.
    """
    current_root = Path(current_dir)
    baseline_root = Path(baseline_dir)
    report = SentinelReport()
    for name in files if files is not None else DEFAULT_BENCH_FILES:
        baseline_path = baseline_root / name
        current_path = current_root / name
        if not baseline_path.exists():
            report.errors.append(f"{name}: baseline missing ({baseline_path})")
            continue
        if not current_path.exists():
            report.errors.append(f"{name}: current file missing ({current_path})")
            continue
        try:
            baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        except ValueError as exc:
            report.errors.append(f"{name}: baseline unreadable: {exc}")
            continue
        try:
            current = json.loads(current_path.read_text(encoding="utf-8"))
        except ValueError as exc:
            report.errors.append(f"{name}: current unreadable: {exc}")
            continue
        report.checks.extend(
            compare_documents(
                name,
                baseline,
                current,
                ratio_tolerance_pct=ratio_tolerance_pct,
                point_tolerance=point_tolerance,
            )
        )
    return report


def render_report(report: SentinelReport) -> str:
    """Human-readable sentinel summary (one line per enforced metric)."""
    lines: List[str] = []
    for error in report.errors:
        lines.append(f"ERROR  {error}")
    for check in report.checks:
        if check.band == "info":
            continue
        mark = {"pass": "ok", "fail": "FAIL"}.get(check.status, check.status)
        band = (
            f"{check.band}±{check.tolerance:g}"
            if check.tolerance is not None
            else check.band
        )
        line = (
            f"{mark:5s} {check.file}:{check.metric} "
            f"baseline={check.baseline} current={check.current} [{band}]"
        )
        if check.detail:
            line += f" — {check.detail}"
        lines.append(line)
    lines.append(
        f"verdict: {report.verdict} "
        f"({report.n_enforced} enforced, "
        f"{len(report.checks) - report.n_enforced} informational, "
        f"{len(report.failures())} failed, {len(report.errors)} errors)"
    )
    return "\n".join(lines)
