"""Distributed tracing: context propagation and trace-shard merging.

Single-process runs record everything into one
:class:`~repro.obs.trace.TraceRecorder`; the pool and queue executors,
however, do most of their work in child processes whose inherited
recorder drops every record (fork safety).  This module closes that gap
with three pieces:

* :class:`TraceContext` — a small, JSON-serializable capsule (trace id,
  parent span id, shard directory, detail gates, optional deterministic
  clock step) the coordinator derives from its own recorder
  (:func:`propagated_context`) and ships inside pool task payloads and
  queue task-spec files;
* :func:`worker_trace` — opened by a worker around one task: a private
  :class:`~repro.obs.trace.TraceRecorder` whose records nest under the
  propagated parent span and land in an atomically-written JSONL shard
  ``trace-<pid>-<task>.jsonl`` (via :class:`repro.atomicio.AtomicLineWriter`,
  so a killed worker leaves *no* torn shard, only a stale temp file);
* :func:`merge_trace_shards` — stitches the coordinator trace and every
  shard into one schema-v2-valid span tree: coordinator records first
  (original order), then shards ordered by span open tick with the task
  label as the stable tiebreak, span ids renumbered into one namespace
  and each shard record stamped with its ``shard`` label.  On a
  :class:`~repro.obs.clock.TickClock` the merged document is
  byte-reproducible across runs (worker PIDs appear only in shard file
  *names*, never in record bodies).

A torn or otherwise schema-invalid shard never aborts the merge: it is
quarantined next to the telemetry directory and replaced by a
``shard_truncated`` event in the merged output, so partial telemetry
from a crashed worker degrades loudly instead of poisoning the tree.

The cardinal rule is inherited from :mod:`repro.obs`: none of this may
perturb results.  Worker recorders never touch RNG streams, shard
writes happen outside the solve path, and a worker that cannot write
its shard (unreachable directory) drops telemetry rather than failing
the task.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.atomicio import atomic_write_text
from repro.errors import ConfigurationError
from repro.obs.clock import TickClock
from repro.obs.recorder import get_recorder
from repro.obs.schema import SCHEMA_VERSION, TraceSchemaError, validate_record
from repro.obs.trace import TraceRecorder, read_trace

#: Filename prefix of worker trace shards inside the telemetry directory.
SHARD_PREFIX = "trace-"

#: Default filename of the merged trace inside the telemetry directory.
MERGED_TRACE_NAME = "trace_merged.jsonl"


@dataclass(frozen=True)
class TraceContext:
    """Serializable capsule linking worker telemetry to a parent trace.

    Attributes
    ----------
    trace_id:
        Distributed trace id every shard record is stamped with.
    parent_span_id:
        Coordinator-side span id the worker's root span nests under
        (``None`` attaches shards at the root of the tree).
    shard_dir:
        Directory (as seen by the worker) to write the shard into.
    iteration_detail:
        Forward the coordinator's per-iteration detail gate.
    tick:
        When the coordinator records on a deterministic
        :class:`~repro.obs.clock.TickClock`, its step — workers then use
        a ``TickClock`` of the same step so shard timing is a pure
        function of the event sequence (byte-reproducible merges).
        ``None`` means real monotonic worker clocks.
    """

    trace_id: str
    parent_span_id: Optional[int]
    shard_dir: str
    iteration_detail: bool = False
    tick: Optional[float] = None

    def to_payload(self) -> Dict[str, Any]:
        """JSON-compatible form carried in task payloads/spec files."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "shard_dir": self.shard_dir,
            "iteration_detail": self.iteration_detail,
            "tick": self.tick,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "TraceContext":
        """Validate and rebuild a context from :meth:`to_payload` output."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"trace context payload must be an object, "
                f"got {type(payload).__name__}"
            )
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            raise ConfigurationError(
                f"trace context trace_id must be a non-empty string, "
                f"got {trace_id!r}"
            )
        parent = payload.get("parent_span_id")
        if parent is not None and (
            isinstance(parent, bool) or not isinstance(parent, int) or parent < 0
        ):
            raise ConfigurationError(
                f"trace context parent_span_id must be an integer >= 0 "
                f"or null, got {parent!r}"
            )
        shard_dir = payload.get("shard_dir")
        if not isinstance(shard_dir, str) or not shard_dir:
            raise ConfigurationError(
                f"trace context shard_dir must be a non-empty string, "
                f"got {shard_dir!r}"
            )
        tick = payload.get("tick")
        if tick is not None and (
            isinstance(tick, bool)
            or not isinstance(tick, (int, float))
            or tick < 0
        ):
            raise ConfigurationError(
                f"trace context tick must be a number >= 0 or null, "
                f"got {tick!r}"
            )
        return cls(
            trace_id=trace_id,
            parent_span_id=parent,
            shard_dir=shard_dir,
            iteration_detail=bool(payload.get("iteration_detail", False)),
            tick=float(tick) if tick is not None else None,
        )


def propagated_context() -> Optional[TraceContext]:
    """The context the current recorder wants shipped to workers.

    ``None`` unless the installed recorder is an enabled
    :class:`~repro.obs.trace.TraceRecorder` with a ``trace_id`` *and* a
    ``shard_dir`` (the distributed opt-in — ``tsajs run --telemetry``
    sets both).  The parent span id is the recorder's innermost open
    span at call time, so executors should call this inside their wave
    span.
    """
    rec = get_recorder()
    if not isinstance(rec, TraceRecorder) or not rec.enabled:
        return None
    if rec.trace_id is None or rec.shard_dir is None:
        return None
    clock = rec.clock
    tick = clock.step if isinstance(clock, TickClock) else None
    return TraceContext(
        trace_id=rec.trace_id,
        parent_span_id=rec.current_span_id(),
        shard_dir=str(rec.shard_dir),
        iteration_detail=rec.iteration_detail,
        tick=tick,
    )


def shard_path(ctx: TraceContext, task: str) -> Path:
    """Where this process's shard for ``task`` lands."""
    return Path(ctx.shard_dir) / f"{SHARD_PREFIX}{os.getpid()}-{task}.jsonl"


@contextmanager
def worker_trace(ctx: TraceContext, task: str) -> Iterator[TraceRecorder]:
    """A worker-side recorder for one task, published as a trace shard.

    Opens a private recorder whose root span (``worker.task``) nests
    under ``ctx.parent_span_id``; install it with
    :func:`~repro.obs.recorder.use_recorder` around the task's work.
    The shard file is written atomically on exit.  Telemetry must never
    fail the task: an unreachable shard directory drops the shard
    (records are simply lost, as in the unpropagated legacy path).
    """
    clock = TickClock(step=ctx.tick) if ctx.tick is not None else None
    try:
        recorder = TraceRecorder(
            shard_path(ctx, task),
            clock=clock,
            iteration_detail=ctx.iteration_detail,
            trace_id=ctx.trace_id,
        )
    except OSError:
        recorder = TraceRecorder(
            path=None,
            clock=clock,
            iteration_detail=ctx.iteration_detail,
            trace_id=ctx.trace_id,
        )
    root = recorder._open_span(
        "worker.task", ctx.parent_span_id, {"task": task}
    )
    try:
        yield recorder
    finally:
        recorder._end_span(root)
        try:
            recorder.close()
        except OSError:
            pass


# --- Merging ---------------------------------------------------------------


def _quarantine(path: Path, quarantine_dir: Path) -> Path:
    """Move a torn shard aside (suffix-until-free; never deletes)."""
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    target = quarantine_dir / path.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = quarantine_dir / f"{path.name}.{suffix}"
    os.replace(path, target)
    return target


def _shard_task(path: Path) -> str:
    """The task label encoded in ``trace-<pid>-<task>.jsonl``."""
    stem = path.name[len(SHARD_PREFIX) : -len(".jsonl")]
    _, _, task = stem.partition("-")
    return task if task else stem


def find_shards(telemetry_dir: Union[str, Path]) -> List[Path]:
    """All worker shard files under ``telemetry_dir`` (unsorted)."""
    root = Path(telemetry_dir)
    return [
        path
        for path in root.glob(f"{SHARD_PREFIX}*.jsonl")
        if path.name != "trace.jsonl"
    ]


def merge_trace_shards(
    telemetry_dir: Union[str, Path],
    trace_path: Optional[Union[str, Path]] = None,
    quarantine_dir: Optional[Union[str, Path]] = None,
) -> List[Dict[str, Any]]:
    """Stitch the coordinator trace and its worker shards into one tree.

    Returns the merged, schema-validated records: coordinator records in
    emission order, then each shard's records in emission order, shards
    ordered by (root span open tick, task label, filename).  Span ids
    are renumbered into one namespace — coordinator ids are preserved,
    shard-local ids are offset past them — and every shard record gains
    a ``shard`` field carrying its task label.  A shard's root-span
    ``parent`` already refers to a coordinator span id and is kept
    verbatim; all other parent links are shard-local and remapped.

    A shard that fails schema validation (torn tail, truncated JSON) is
    moved to ``quarantine_dir`` (default ``<telemetry_dir>/corrupt``)
    and replaced by a ``shard_truncated`` event so the merged document
    still validates end to end.
    """
    root = Path(telemetry_dir)
    parent_trace = (
        Path(trace_path) if trace_path is not None else root / "trace.jsonl"
    )
    quarantine = (
        Path(quarantine_dir) if quarantine_dir is not None else root / "corrupt"
    )
    merged: List[Dict[str, Any]] = []
    if parent_trace.exists():
        merged.extend(read_trace(parent_trace))
    next_id = (
        max(
            (rec["id"] for rec in merged if "id" in rec),
            default=-1,
        )
        + 1
    )

    loaded: List[Tuple[float, str, str, List[Dict[str, Any]]]] = []
    torn: List[Tuple[str, str]] = []
    for path in find_shards(root):
        task = _shard_task(path)
        try:
            records = read_trace(path)
        except (TraceSchemaError, ValueError) as exc:
            _quarantine(path, quarantine)
            torn.append((task, f"{type(exc).__name__}: {exc}"))
            continue
        open_t = float(records[0]["t"]) if records else 0.0
        loaded.append((open_t, task, path.name, records))

    for open_t, task, _, records in sorted(
        loaded, key=lambda item: (item[0], item[1], item[2])
    ):
        local_ids = {rec["id"] for rec in records if "id" in rec}
        offset = next_id
        next_id += (max(local_ids) + 1) if local_ids else 0
        seen_root = False
        for rec in records:
            out = dict(rec)
            out["shard"] = task
            if "id" in out:
                out["id"] = offset + out["id"]
            if out["kind"] == "span_start" and not seen_root:
                seen_root = True
                # The shard root's parent is a coordinator span id,
                # preserved by the renumbering above — keep it.
            elif "parent" in out:
                out["parent"] = offset + out["parent"]
            merged.append(out)

    for task, error in sorted(torn):
        merged.append(
            {
                "v": SCHEMA_VERSION,
                "kind": "event",
                "name": "shard_truncated",
                "t": 0.0,
                "attrs": {"task": task, "error": error},
                "shard": task,
            }
        )

    for number, record in enumerate(merged, start=1):
        validate_record(record, line=number)
    return merged


def render_trace_lines(records: List[Dict[str, Any]]) -> str:
    """Records as a compact JSONL document (one trailing newline)."""
    return "".join(
        json.dumps(record, separators=(",", ":"), allow_nan=False) + "\n"
        for record in records
    )


def write_merged_trace(
    telemetry_dir: Union[str, Path],
    out_path: Optional[Union[str, Path]] = None,
) -> Tuple[Path, List[Dict[str, Any]]]:
    """Merge shards under ``telemetry_dir`` and atomically write the result."""
    root = Path(telemetry_dir)
    records = merge_trace_shards(root)
    target = Path(out_path) if out_path is not None else root / MERGED_TRACE_NAME
    atomic_write_text(target, render_trace_lines(records))
    return target, records
