"""Span/event trace recording to JSONL (schema v1) plus in-memory capture.

:class:`TraceRecorder` is the concrete recorder behind ``tsajs solve
--trace`` and ``tsajs run --telemetry``.  Design constraints, in order:

* **Determinism.**  Records carry monotonic deltas (``t`` relative to
  recorder creation, ``dur`` per span) from an injected
  :class:`~repro.obs.clock.Clock` — never wall-clock timestamps — and
  attrs carry only algorithm state, so a :class:`~repro.obs.clock.TickClock`
  makes the whole file a pure function of the event sequence.
* **Cheap emission.**  One dict build + ``json.dumps`` per record; no
  buffering policy beyond the file object's own (``flush()`` on close).
* **Fork safety.**  A recorder inherited by a forked pool worker would
  interleave half-written lines with its parent; emissions from any PID
  other than the creating one are dropped instead.

Metrics (:meth:`Recorder.count` & friends) accumulate in an attached
:class:`~repro.obs.metrics.MetricsRegistry` rather than the trace file:
aggregates belong in one snapshot, not smeared over thousands of lines.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from types import TracebackType
from typing import IO, Any, Dict, List, Optional, Type, Union

from repro.obs.clock import Clock, MonotonicClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import AttrValue, Recorder
from repro.obs.schema import SCHEMA_VERSION, validate_trace


def _clean_scalar(value: object) -> object:
    if isinstance(value, float) and not math.isfinite(value):
        # Schema v1 (and strict JSON) has no -inf/nan; the annealer's
        # dead-assignment utilities map to null instead.
        return None
    return value


def _clean_attrs(attrs: Dict[str, AttrValue]) -> Dict[str, Any]:
    """Replace non-finite floats with ``None`` (schema v1 forbids them)."""
    cleaned: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (list, tuple)):
            cleaned[key] = [_clean_scalar(item) for item in value]
        else:
            cleaned[key] = _clean_scalar(value)
    return cleaned


class Span:
    """An open span; closing it emits the ``span_end`` record."""

    __slots__ = ("_recorder", "name", "span_id", "_t0")

    def __init__(self, recorder: "TraceRecorder", name: str, span_id: int, t0: float) -> None:
        self._recorder = recorder
        self.name = name
        self.span_id = span_id
        self._t0 = t0

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self._recorder._end_span(self)
        return False


class TraceRecorder(Recorder):
    """Schema-v1 recorder writing JSONL to a file and/or an in-memory list.

    Parameters
    ----------
    path:
        Destination JSONL file (parent directories are created).  ``None``
        keeps records in memory only (see :attr:`records`).
    clock:
        Timing source; defaults to the real monotonic clock.  Inject a
        :class:`~repro.obs.clock.TickClock` for byte-deterministic output.
    iteration_detail:
        Ask the annealer for per-iteration ``anneal.step`` events (orders
        of magnitude more lines; off by default).
    keep_records:
        Also retain decoded records in memory when writing to a file.
    """

    enabled = True

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        clock: Optional[Clock] = None,
        iteration_detail: bool = False,
        keep_records: bool = False,
    ) -> None:
        self._clock: Clock = clock if clock is not None else MonotonicClock()
        self._epoch = self._clock.now()
        self._pid = os.getpid()
        self.iteration_detail = iteration_detail
        self.metrics = MetricsRegistry()
        self._next_span_id = 0
        self._n_records = 0
        self.path: Optional[Path] = Path(path) if path is not None else None
        self._handle: Optional[IO[str]] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
        self._records: Optional[List[Dict[str, Any]]] = (
            [] if (self.path is None or keep_records) else None
        )

    # --- Emission ----------------------------------------------------------

    @property
    def records(self) -> List[Dict[str, Any]]:
        """In-memory records (empty when writing to a file without capture)."""
        return list(self._records) if self._records is not None else []

    @property
    def n_records(self) -> int:
        return self._n_records

    def _now(self) -> float:
        return self._clock.now() - self._epoch

    def _emit(self, record: Dict[str, Any]) -> None:
        if os.getpid() != self._pid:
            # Inherited by a forked worker: writing would interleave with
            # the parent.  Drop silently; workers record nothing.
            return
        self._n_records += 1
        if self._records is not None:
            self._records.append(record)
        if self._handle is not None:
            self._handle.write(
                json.dumps(record, separators=(",", ":"), allow_nan=False) + "\n"
            )

    def event(self, name: str, **attrs: AttrValue) -> None:
        self._emit(
            {
                "v": SCHEMA_VERSION,
                "kind": "event",
                "name": name,
                "t": self._now(),
                "attrs": _clean_attrs(attrs),
            }
        )

    def span(self, name: str, **attrs: AttrValue) -> Span:
        span_id = self._next_span_id
        self._next_span_id += 1
        t0 = self._now()
        self._emit(
            {
                "v": SCHEMA_VERSION,
                "kind": "span_start",
                "name": name,
                "t": t0,
                "id": span_id,
                "attrs": _clean_attrs(attrs),
            }
        )
        return Span(self, name, span_id, t0)

    def _end_span(self, span: Span) -> None:
        t1 = self._now()
        self._emit(
            {
                "v": SCHEMA_VERSION,
                "kind": "span_end",
                "name": span.name,
                "t": t1,
                "id": span.span_id,
                "dur": t1 - span._t0,
                "attrs": {},
            }
        )

    # --- Metrics -----------------------------------------------------------

    def count(self, name: str, value: float = 1.0, **labels: AttrValue) -> None:
        self.metrics.count(name, value, **labels)  # type: ignore[arg-type]

    def gauge_set(self, name: str, value: float, **labels: AttrValue) -> None:
        self.metrics.gauge_set(name, value, **labels)  # type: ignore[arg-type]

    def observe(self, name: str, value: float, **labels: AttrValue) -> None:
        self.metrics.observe(name, value, **labels)  # type: ignore[arg-type]

    def snapshot(self) -> Dict[str, Any]:
        return self.metrics.snapshot()

    # --- Lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.close()
        return False


def read_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load and schema-validate a JSONL trace file.

    Raises :class:`~repro.obs.schema.TraceSchemaError` (naming the line)
    on the first malformed record.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return validate_trace(handle)


def events_named(
    records: List[Dict[str, Any]], name: str
) -> List[Dict[str, Any]]:
    """The subset of ``records`` with the given ``name`` (any kind)."""
    return [record for record in records if record["name"] == name]
