"""Span/event trace recording to JSONL (schema v2) plus in-memory capture.

:class:`TraceRecorder` is the concrete recorder behind ``tsajs solve
--trace`` and ``tsajs run --telemetry``.  Design constraints, in order:

* **Determinism.**  Records carry monotonic deltas (``t`` relative to
  recorder creation, ``dur`` per span) from an injected
  :class:`~repro.obs.clock.Clock` — never wall-clock timestamps — and
  attrs carry only algorithm state, so a :class:`~repro.obs.clock.TickClock`
  makes the whole file a pure function of the event sequence.
* **Cheap emission.**  One dict build + ``json.dumps`` per record; lines
  stream into an :class:`~repro.atomicio.AtomicLineWriter`, which
  publishes the complete file atomically on :meth:`TraceRecorder.close`
  (a crashed process leaves no torn trace, only a stale temp file).
* **Fork safety.**  A recorder inherited by a forked pool worker would
  interleave half-written lines with its parent; emissions from any PID
  other than the creating one are dropped.  Historically (schema v1)
  this drop was silent — distributed runs simply lost all worker-side
  telemetry.  Since schema v2 the executors detect the situation in the
  *parent* and emit a ``worker_detached`` event (see
  :func:`emit_worker_detached`); propagating a
  :class:`~repro.obs.dist.TraceContext` instead gives each worker its
  own shard recorder and loses nothing.

Each record also carries the recorder's span *topology*: ``span_start``
and ``event`` records are stamped with the ``parent`` span id of the
innermost open span, and every record with the recorder's ``trace`` id
when one was assigned — that is what lets
:func:`repro.obs.dist.merge_trace_shards` stitch per-worker shards into
one tree.

Metrics (:meth:`Recorder.count` & friends) accumulate in an attached
:class:`~repro.obs.metrics.MetricsRegistry` rather than the trace file:
aggregates belong in one snapshot, not smeared over thousands of lines.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from types import TracebackType
from typing import Any, Dict, List, Optional, Type, Union

from repro.atomicio import AtomicLineWriter
from repro.obs.clock import Clock, MonotonicClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import AttrValue, Recorder, get_recorder
from repro.obs.schema import SCHEMA_VERSION, validate_trace


def _clean_scalar(value: object) -> object:
    if isinstance(value, float) and not math.isfinite(value):
        # The schema (and strict JSON) has no -inf/nan; the annealer's
        # dead-assignment utilities map to null instead.
        return None
    return value


def _clean_attrs(attrs: Dict[str, AttrValue]) -> Dict[str, Any]:
    """Replace non-finite floats with ``None`` (the schema forbids them)."""
    cleaned: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (list, tuple)):
            cleaned[key] = [_clean_scalar(item) for item in value]
        else:
            cleaned[key] = _clean_scalar(value)
    return cleaned


class Span:
    """An open span; closing it emits the ``span_end`` record."""

    __slots__ = ("_recorder", "name", "span_id", "_t0")

    def __init__(self, recorder: "TraceRecorder", name: str, span_id: int, t0: float) -> None:
        self._recorder = recorder
        self.name = name
        self.span_id = span_id
        self._t0 = t0

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self._recorder._end_span(self)
        return False


class TraceRecorder(Recorder):
    """Schema-v2 recorder writing JSONL to a file and/or an in-memory list.

    Parameters
    ----------
    path:
        Destination JSONL file (parent directories are created; the file
        is published atomically on :meth:`close`).  ``None`` keeps
        records in memory only (see :attr:`records`).
    clock:
        Timing source; defaults to the real monotonic clock.  Inject a
        :class:`~repro.obs.clock.TickClock` for byte-deterministic output.
    iteration_detail:
        Ask the annealer for per-iteration ``anneal.step`` events (orders
        of magnitude more lines; off by default).
    keep_records:
        Also retain decoded records in memory when writing to a file.
    trace_id:
        Distributed trace id stamped on every record (``trace`` field).
        Required for cross-process propagation; ``None`` omits the field.
    shard_dir:
        Directory workers should write their trace shards into.  Setting
        it opts this recorder into distributed propagation: the executors
        build a :class:`~repro.obs.dist.TraceContext` from it (see
        :func:`repro.obs.dist.propagated_context`).
    """

    enabled = True

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        clock: Optional[Clock] = None,
        iteration_detail: bool = False,
        keep_records: bool = False,
        trace_id: Optional[str] = None,
        shard_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self._clock: Clock = clock if clock is not None else MonotonicClock()
        self._epoch = self._clock.now()
        self._pid = os.getpid()
        self.iteration_detail = iteration_detail
        self.metrics = MetricsRegistry()
        self.trace_id = trace_id
        self.shard_dir: Optional[Path] = (
            Path(shard_dir) if shard_dir is not None else None
        )
        self._next_span_id = 0
        self._n_records = 0
        self._stack: List[int] = []
        self.path: Optional[Path] = Path(path) if path is not None else None
        self._writer: Optional[AtomicLineWriter] = None
        if self.path is not None:
            self._writer = AtomicLineWriter(self.path)
        self._records: Optional[List[Dict[str, Any]]] = (
            [] if (self.path is None or keep_records) else None
        )

    # --- Emission ----------------------------------------------------------

    @property
    def records(self) -> List[Dict[str, Any]]:
        """In-memory records (empty when writing to a file without capture)."""
        return list(self._records) if self._records is not None else []

    @property
    def n_records(self) -> int:
        return self._n_records

    @property
    def clock(self) -> Clock:
        """The injected timing source (read by trace-context propagation)."""
        return self._clock

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span, or ``None`` at the root."""
        return self._stack[-1] if self._stack else None

    def _now(self) -> float:
        return self._clock.now() - self._epoch

    def _emit(self, record: Dict[str, Any]) -> None:
        if os.getpid() != self._pid:
            # Inherited by a forked worker: writing would interleave with
            # the parent, so the record is dropped here.  The executors
            # surface this in the parent as a ``worker_detached`` event
            # (schema v2); propagate a TraceContext to capture worker
            # telemetry in per-worker shards instead.
            return
        if self.trace_id is not None:
            record["trace"] = self.trace_id
        self._n_records += 1
        if self._records is not None:
            self._records.append(record)
        if self._writer is not None:
            self._writer.write_line(
                json.dumps(record, separators=(",", ":"), allow_nan=False)
            )

    def event(self, name: str, **attrs: AttrValue) -> None:
        record: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "kind": "event",
            "name": name,
            "t": self._now(),
            "attrs": _clean_attrs(attrs),
        }
        if self._stack:
            record["parent"] = self._stack[-1]
        self._emit(record)

    def span(self, name: str, **attrs: AttrValue) -> Span:
        parent = self._stack[-1] if self._stack else None
        return self._open_span(name, parent, attrs)

    def _open_span(
        self,
        name: str,
        parent: Optional[int],
        attrs: Dict[str, AttrValue],
    ) -> Span:
        """Emit a ``span_start`` with an explicit parent id and push it.

        ``span()`` derives the parent from the recorder's own open-span
        stack; :mod:`repro.obs.dist` uses this hook directly to attach a
        worker shard's root span under a *foreign* (coordinator-side)
        span id.
        """
        span_id = self._next_span_id
        self._next_span_id += 1
        t0 = self._now()
        record: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "kind": "span_start",
            "name": name,
            "t": t0,
            "id": span_id,
            "attrs": _clean_attrs(attrs),
        }
        if parent is not None:
            record["parent"] = parent
        self._emit(record)
        self._stack.append(span_id)
        return Span(self, name, span_id, t0)

    def _end_span(self, span: Span) -> None:
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        elif span.span_id in self._stack:
            self._stack.remove(span.span_id)
        t1 = self._now()
        self._emit(
            {
                "v": SCHEMA_VERSION,
                "kind": "span_end",
                "name": span.name,
                "t": t1,
                "id": span.span_id,
                "dur": t1 - span._t0,
                "attrs": {},
            }
        )

    # --- Metrics -----------------------------------------------------------

    def count(self, name: str, value: float = 1.0, **labels: AttrValue) -> None:
        self.metrics.count(name, value, **labels)  # type: ignore[arg-type]

    def gauge_set(self, name: str, value: float, **labels: AttrValue) -> None:
        self.metrics.gauge_set(name, value, **labels)  # type: ignore[arg-type]

    def observe(self, name: str, value: float, **labels: AttrValue) -> None:
        self.metrics.observe(name, value, **labels)  # type: ignore[arg-type]

    def snapshot(self) -> Dict[str, Any]:
        return self.metrics.snapshot()

    # --- Lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._writer is not None:
            if os.getpid() != self._pid:
                # A forked child closing the inherited recorder must not
                # publish (or unlink) the parent's temp file.
                self._writer = None
                return
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.close()
        return False


def emit_worker_detached(backend: str, n_cells: int) -> None:
    """Record, parent-side, that a parallel wave ran without propagation.

    Called by the pool and queue executors when telemetry is enabled but
    the installed recorder has no ``shard_dir`` to build a
    :class:`~repro.obs.dist.TraceContext` from: every worker in the wave
    inherits (or starts with) a recorder that drops its records, so the
    per-seed telemetry for these cells is lost.  The schema-v2
    ``worker_detached`` event makes that loss visible in the parent
    trace instead of silent (the schema-v1 legacy behavior).
    """
    rec = get_recorder()
    if not rec.enabled:
        return
    rec.event(
        "worker_detached",
        backend=backend,
        n_cells=n_cells,
        reason="no trace context propagated (recorder has no shard_dir)",
    )
    rec.count("obs.workers_detached", n_cells, backend=backend)


def read_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load and schema-validate a JSONL trace file.

    Raises :class:`~repro.obs.schema.TraceSchemaError` (naming the line)
    on the first malformed record.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return validate_trace(handle)


def events_named(
    records: List[Dict[str, Any]], name: str
) -> List[Dict[str, Any]]:
    """The subset of ``records`` with the given ``name`` (any kind)."""
    return [record for record in records if record["name"] == name]
