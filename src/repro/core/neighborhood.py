"""Neighborhood move generator — Algorithm 2 (GetNeighborhood).

Given the incumbent decision ``X_old``, a random target user ``u`` is
picked and one of four moves is applied, selected by a uniform draw
``rand`` exactly as in the paper's pseudocode:

* ``rand > 0.2`` and ``rand < 0.75`` — **server move**: reassign ``u`` to a
  different server, preferring one of its free sub-channels and otherwise
  taking a random (occupied) one.
* ``rand >= 0.75`` (and more than one sub-channel exists) — **channel
  move**: reassign ``u`` to a different sub-channel of its current server.
* ``0.05 < rand <= 0.2`` — **swap**: exchange the (server, sub-band)
  assignments of ``u`` and another random user.
* ``rand <= 0.05`` — **toggle**: flip ``u`` between offloaded and local.

When a random occupied sub-channel is taken, the previous occupant is
displaced to local execution so the proposal stays feasible (one user per
slot, constraint 12d).  A target user that is currently local is handled
by assigning it a slot in the move cases; the pseudocode's line 4 assumes
an offloaded target, but the initial solution may leave users local, so
this extension keeps the chain irreducible over the whole feasible set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.decision import LOCAL, OffloadingDecision
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NeighborhoodSampler:
    """Algorithm 2 with configurable branch thresholds.

    The defaults (0.05 / 0.20 / 0.75) are the paper's constants; the
    ablation experiments sweep them.
    """

    toggle_below: float = 0.05
    swap_below: float = 0.20
    server_move_below: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 <= self.toggle_below <= self.swap_below <= 1.0:
            raise ConfigurationError(
                "need 0 <= toggle_below <= swap_below <= 1, got "
                f"{self.toggle_below}, {self.swap_below}"
            )
        if not self.swap_below <= self.server_move_below <= 1.0:
            raise ConfigurationError(
                "need swap_below <= server_move_below <= 1, got "
                f"{self.swap_below}, {self.server_move_below}"
            )

    def propose(
        self, decision: OffloadingDecision, rng: np.random.Generator
    ) -> OffloadingDecision:
        """One neighbour ``X_new`` of ``X_old`` per Algorithm 2 (input not mutated)."""
        return self.propose_move(decision, rng)[0]

    def propose_move(
        self, decision: OffloadingDecision, rng: np.random.Generator
    ) -> Tuple[OffloadingDecision, Tuple[int, ...]]:
        """One neighbour (Algorithm 2) plus the *touched set* describing the move.

        The touched set covers every user whose assignment may differ
        between ``X_old`` and ``X_new`` (the target user and, for moves
        landing on an occupied slot, the displaced occupant) — exactly
        what :meth:`~repro.core.delta.DeltaEvaluator.evaluate_move`
        needs to update incrementally.  ``propose`` draws from the same
        RNG stream, so the two entry points produce identical chains.
        """
        new = decision.copy()
        user = int(rng.integers(new.n_users))
        rand = float(rng.random())
        return new, self._apply_move(new, user, rand, rng)

    def _apply_move(
        self,
        new: OffloadingDecision,
        user: int,
        rand: float,
        rng: np.random.Generator,
    ) -> Tuple[int, ...]:
        """Dispatch ``rand`` to one of the four moves (Algorithm 2 lines 3-12).

        Split out from :meth:`propose_move` so restricted samplers (e.g.
        the fault-aware :class:`~repro.core.degradation.SlotRestrictedSampler`)
        can veto or redirect moves without perturbing the user/branch draws.
        """
        if rand > self.swap_below:
            if rand < self.server_move_below:
                return self._move_server(new, user, rng)
            if new.n_channels > 1:
                return self._move_channel(new, user, rng)
            return ()
        if rand > self.toggle_below:
            return self._swap(new, user, rng)
        return self._toggle(new, user, rng)

    # --- Moves ---------------------------------------------------------------

    def _random_slot_on(
        self, decision: OffloadingDecision, server: int, rng: np.random.Generator
    ) -> int:
        """A free sub-channel of ``server`` if any, else a random one."""
        free = decision.free_channels(server)
        if free:
            return int(free[int(rng.integers(len(free)))])
        return int(rng.integers(decision.n_channels))

    def _with_displaced(self, user: int, displaced: Optional[int]) -> Tuple[int, ...]:
        return (user,) if displaced is None else (user, displaced)

    def _move_server(
        self, decision: OffloadingDecision, user: int, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        current = int(decision.server[user])
        if decision.n_servers == 1 and current != LOCAL:
            return ()  # no "other" server exists
        while True:
            target = int(rng.integers(decision.n_servers))
            if target != current:
                break
        channel = self._random_slot_on(decision, target, rng)
        displaced = decision.displace_and_assign(user, target, channel)
        return self._with_displaced(user, displaced)

    def _move_channel(
        self, decision: OffloadingDecision, user: int, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        current_server = int(decision.server[user])
        current_channel = int(decision.channel[user])
        if current_server == LOCAL:
            # Local target user: give it a slot on a random server instead.
            server = int(rng.integers(decision.n_servers))
            channel = self._random_slot_on(decision, server, rng)
            displaced = decision.displace_and_assign(user, server, channel)
            return self._with_displaced(user, displaced)
        free = [j for j in decision.free_channels(current_server) if j != current_channel]
        if free:
            channel = int(free[int(rng.integers(len(free)))])
        else:
            while True:
                channel = int(rng.integers(decision.n_channels))
                if channel != current_channel:
                    break
        displaced = decision.displace_and_assign(user, current_server, channel)
        return self._with_displaced(user, displaced)

    def _swap(
        self, decision: OffloadingDecision, user: int, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        if decision.n_users < 2:
            return ()
        while True:
            other = int(rng.integers(decision.n_users))
            if other != user:
                break
        decision.swap(user, other)
        return (user, other)

    def _toggle(
        self, decision: OffloadingDecision, user: int, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        if decision.is_offloaded(user):
            decision.set_local(user)
            return (user,)
        server = int(rng.integers(decision.n_servers))
        channel = self._random_slot_on(decision, server, rng)
        displaced = decision.displace_and_assign(user, server, channel)
        return self._with_displaced(user, displaced)
