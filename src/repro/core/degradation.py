"""Graceful degradation of a scheduled plan under infrastructure faults.

The system model makes local execution always feasible, so a failed
``(server, sub-band)`` slot never strands a user: the worst case is
falling back to the local time/energy the utility is measured against.
This module turns that escape hatch into two explicit policies applied
*after* a plan was computed for the fault-free system:

* ``"local_fallback"`` — every user whose slot died (and every churned
  user) executes locally; the surviving assignments keep their slots and
  the KKT allocation (Eq. 22) is recomputed for the survivors.
* ``"reschedule"`` — start from the fallback plan and repair it with a
  warm-started TTSA (Alg. 1) whose neighbourhood is restricted to the
  surviving slots, so displaced users can re-enter service on healthy
  servers instead of staying local.

The module depends only on ``repro.core``; fault sets arrive duck-typed
from :mod:`repro.faults` (a type-only import), keeping the core package
free of simulation-layer imports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.allocation import kkt_allocation
from repro.core.annealing import AnnealingSchedule
from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import ScheduleResult, TsajsScheduler
from repro.errors import ConfigurationError
from repro.obs.clock import Stopwatch
from repro.obs.recorder import get_recorder

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.faults.models import FaultSet
    from repro.sim.scenario import Scenario

#: The degradation policies :func:`degrade` understands.
DEGRADATION_POLICIES: Tuple[str, ...] = ("local_fallback", "reschedule")


@dataclass(frozen=True)
class DegradedPlan:
    """Outcome of applying a degradation policy to a faulted plan.

    Attributes
    ----------
    result:
        The repaired ``(X, F, J)`` triple, feasible on the faulted system.
    planned_utility:
        Utility of the original (fault-free) plan.
    degraded_utility:
        Utility actually achieved on the faulted system.
    utility_retention:
        ``degraded_utility / planned_utility`` (1.0 for non-positive
        plans, where local execution already matched the optimum).
    n_fallback:
        Users forced from a dead slot back to local execution.
    n_churned:
        Users whose task request was withdrawn before scheduling closed.
    reschedule_wall_time_s:
        Wall-clock seconds spent repairing the plan.
    """

    result: ScheduleResult
    planned_utility: float
    degraded_utility: float
    utility_retention: float
    n_fallback: int
    n_churned: int
    reschedule_wall_time_s: float


def fallback_decision(
    decision: OffloadingDecision, faults: "FaultSet"
) -> Tuple[OffloadingDecision, int, int]:
    """Force users off dead slots (and churned users) to local execution.

    Returns ``(repaired_decision, n_fallback, n_churned)``: the repaired
    copy, the number of users whose slot died, and the number of churned
    users present in the decision.  Churned users count as churned even
    when their slot also died (churn wins the tie; their request no
    longer exists, so they never compete for surviving slots).
    """
    repaired = decision.copy()
    n_fallback = 0
    n_churned = 0
    for user in range(repaired.n_users):
        churned = user in faults.churned_users
        if churned:
            n_churned += 1
        server = int(repaired.server[user])
        if server == LOCAL:
            continue
        band = int(repaired.channel[user])
        if churned:
            repaired.set_local(user)
        elif faults.slot_is_dead(server, band):
            repaired.set_local(user)
            n_fallback += 1
    return repaired, n_fallback, n_churned


@dataclass(frozen=True)
class SlotRestrictedSampler(NeighborhoodSampler):
    """Algorithm 2 restricted to the surviving ``(server, band)`` slots.

    ``alive_channels[s]`` lists the sub-bands of server ``s`` still able
    to carry traffic (empty for a failed server); ``pinned_users`` are
    users that must stay local (churned arrivals).  Every move keeps the
    chain inside the surviving slot set: dead slots are never proposed,
    pinned users are never offloaded nor swapped with, and moves with no
    surviving target degenerate to the no-op proposal (an empty touched
    set), exactly like the base sampler's own impossible moves.
    """

    alive_channels: Tuple[Tuple[int, ...], ...] = ()
    pinned_users: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        for server, channels in enumerate(self.alive_channels):
            for band in channels:
                if band < 0:
                    raise ConfigurationError(
                        f"alive channel {band} of server {server} must be >= 0"
                    )

    def _alive_servers(self) -> List[int]:
        return [
            server
            for server, channels in enumerate(self.alive_channels)
            if channels
        ]

    def _apply_move(
        self,
        new: OffloadingDecision,
        user: int,
        rand: float,
        rng: np.random.Generator,
    ) -> Tuple[int, ...]:
        if user in self.pinned_users:
            return ()
        return super()._apply_move(new, user, rand, rng)

    def _random_slot_on(
        self, decision: OffloadingDecision, server: int, rng: np.random.Generator
    ) -> int:
        alive = self.alive_channels[server]
        if not alive:
            raise ConfigurationError(
                f"server {server} has no surviving sub-bands; the move "
                "dispatch must not target it"
            )
        free = [
            band for band in decision.free_channels(server) if band in alive
        ]
        if free:
            return int(free[int(rng.integers(len(free)))])
        return int(alive[int(rng.integers(len(alive)))])

    def _move_server(
        self, decision: OffloadingDecision, user: int, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        current = int(decision.server[user])
        candidates = [s for s in self._alive_servers() if s != current]
        if not candidates:
            return ()
        target = candidates[int(rng.integers(len(candidates)))]
        channel = self._random_slot_on(decision, target, rng)
        displaced = decision.displace_and_assign(user, target, channel)
        return self._with_displaced(user, displaced)

    def _move_channel(
        self, decision: OffloadingDecision, user: int, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        current_server = int(decision.server[user])
        if current_server == LOCAL:
            candidates = self._alive_servers()
            if not candidates:
                return ()
            server = candidates[int(rng.integers(len(candidates)))]
            channel = self._random_slot_on(decision, server, rng)
            displaced = decision.displace_and_assign(user, server, channel)
            return self._with_displaced(user, displaced)
        current_channel = int(decision.channel[user])
        alive = self.alive_channels[current_server]
        free = [
            band
            for band in decision.free_channels(current_server)
            if band != current_channel and band in alive
        ]
        if free:
            channel = int(free[int(rng.integers(len(free)))])
        else:
            others = [band for band in alive if band != current_channel]
            if not others:
                return ()
            channel = int(others[int(rng.integers(len(others)))])
        displaced = decision.displace_and_assign(user, current_server, channel)
        return self._with_displaced(user, displaced)

    def _swap(
        self, decision: OffloadingDecision, user: int, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        others = [
            other
            for other in range(decision.n_users)
            if other != user and other not in self.pinned_users
        ]
        if not others:
            return ()
        other = others[int(rng.integers(len(others)))]
        decision.swap(user, other)
        return (user, other)

    def _toggle(
        self, decision: OffloadingDecision, user: int, rng: np.random.Generator
    ) -> Tuple[int, ...]:
        if decision.is_offloaded(user):
            decision.set_local(user)
            return (user,)
        candidates = self._alive_servers()
        if not candidates:
            return ()
        server = candidates[int(rng.integers(len(candidates)))]
        channel = self._random_slot_on(decision, server, rng)
        displaced = decision.displace_and_assign(user, server, channel)
        return self._with_displaced(user, displaced)


def restricted_sampler_for(
    faults: "FaultSet",
    base: Optional[NeighborhoodSampler] = None,
) -> SlotRestrictedSampler:
    """Build a :class:`SlotRestrictedSampler` matching a fault set."""
    base = base if base is not None else NeighborhoodSampler()
    return SlotRestrictedSampler(
        toggle_below=base.toggle_below,
        swap_below=base.swap_below,
        server_move_below=base.server_move_below,
        alive_channels=faults.alive_channels(),
        pinned_users=tuple(sorted(faults.churned_users)),
    )


def _enforce_feasibility(
    decision: OffloadingDecision, faults: "FaultSet"
) -> Tuple[OffloadingDecision, bool]:
    """Force any user still on a dead slot (or churned) local (post-check)."""
    repaired = decision
    changed = False
    for user, server, band in list(decision.iter_assignments()):
        if user in faults.churned_users or faults.slot_is_dead(server, band):
            if not changed:
                repaired = decision.copy()
                changed = True
            repaired.set_local(user)
    return repaired, changed


def degrade(
    scenario: "Scenario",
    planned: ScheduleResult,
    faults: "FaultSet",
    policy: str = "local_fallback",
    *,
    rng: Optional[np.random.Generator] = None,
    schedule: Optional[AnnealingSchedule] = None,
    use_delta: bool = False,
) -> DegradedPlan:
    """Repair a fault-free plan for the faulted system and score it.

    Parameters
    ----------
    scenario:
        The **faulted** scenario (after
        :func:`repro.faults.inject.apply_faults`); its evaluator prices
        the degraded capacities and dead links.
    planned:
        The schedule computed for the fault-free system.
    faults:
        The realised fault set (dead slots, degraded servers, churn).
    policy:
        One of :data:`DEGRADATION_POLICIES`.
    rng:
        Chain for the repair anneal (``"reschedule"`` only); keep it on
        its own seed stream for reproducibility.
    schedule:
        Annealing schedule for the repair (defaults to Alg. 1 constants).
    use_delta:
        Score repair moves incrementally (bitwise-equal, faster).

    The repair never returns a worse utility than the pure fallback
    plan: the annealer's best-tracking starts at its warm-start state.
    """
    if policy not in DEGRADATION_POLICIES:
        raise ConfigurationError(
            f"unknown degradation policy {policy!r}; choose one of "
            f"{', '.join(DEGRADATION_POLICIES)}"
        )
    rec = get_recorder()
    watch = Stopwatch()
    degrade_span = rec.span("degrade.run", policy=policy)
    repaired, n_fallback, n_churned = fallback_decision(planned.decision, faults)
    if rec.enabled:
        rec.event(
            "degrade.fallback",
            policy=policy,
            n_fallback=n_fallback,
            n_churned=n_churned,
        )
    evaluator = ObjectiveEvaluator(scenario)

    if policy == "reschedule":
        sampler = restricted_sampler_for(faults)
        scheduler = TsajsScheduler(
            schedule=schedule,
            neighborhood=sampler,
            use_delta=use_delta,
        )
        outcome = scheduler.schedule(scenario, rng, initial=repaired)
        final, changed = _enforce_feasibility(outcome.decision, faults)
        if changed:
            outcome = ScheduleResult(
                decision=final,
                allocation=kkt_allocation(scenario, final),
                utility=evaluator.evaluate(final),
                evaluations=outcome.evaluations + evaluator.evaluations,
                wall_time_s=outcome.wall_time_s,
                trace=outcome.trace,
                accepted_moves=outcome.accepted_moves,
            )
        degraded_utility = outcome.utility
        evaluations = outcome.evaluations
        accepted = outcome.accepted_moves
        final_decision = outcome.decision
        allocation = outcome.allocation
    else:
        degraded_utility = evaluator.evaluate(repaired)
        if degraded_utility < 0.0:
            # A negative plan is dominated by full local execution, which
            # is always available (Sec. III-A); take the zero-utility plan.
            repaired = OffloadingDecision.all_local(
                scenario.n_users, scenario.n_servers, scenario.n_subbands
            )
            degraded_utility = evaluator.evaluate(repaired)
        evaluations = evaluator.evaluations
        accepted = 0
        final_decision = repaired
        allocation = kkt_allocation(scenario, final_decision)

    elapsed = watch.elapsed()
    if planned.utility > 0.0:
        retention = degraded_utility / planned.utility
    else:
        retention = 1.0
    if rec.enabled:
        rec.event(
            "degrade.result",
            policy=policy,
            degraded_utility=float(degraded_utility),
            utility_retention=float(retention),
            n_fallback=n_fallback,
            n_churned=n_churned,
            evaluations=evaluations,
        )
    degrade_span.__exit__(None, None, None)
    result = ScheduleResult(
        decision=final_decision,
        allocation=allocation,
        utility=degraded_utility,
        evaluations=evaluations,
        wall_time_s=elapsed,
        accepted_moves=accepted,
    )
    return DegradedPlan(
        result=result,
        planned_utility=planned.utility,
        degraded_utility=degraded_utility,
        utility_retention=retention,
        n_fallback=n_fallback,
        n_churned=n_churned,
        reschedule_wall_time_s=elapsed,
    )
