"""Sharded TSAJS: per-cluster TTSA solves plus boundary reconciliation.

:class:`ShardedScheduler` decomposes one metro-scale JTORA instance
along the spatial partition of :mod:`repro.core.partition`:

1. every cluster is extracted as an independent sub-scenario and solved
   by a plain :class:`~repro.core.scheduler.TsajsScheduler` (any of the
   scalar/delta/batch evaluation paths);
2. the per-cluster decisions are stitched into one global decision —
   feasible by construction, since a cluster's users only occupy slots
   of the cluster's own stations;
3. a deterministic fixed-point pass re-anneals the **boundary**
   clusters with the out-of-cluster interference frozen into the
   objective (``external_rx``) and the stitched decision as the
   ``schedule(initial=...)`` warm start, accepting a cluster's update
   only when the *globally* evaluated utility improves.

Determinism contract: with a fixed input generator the full run is a
pure function of ``(scenario, seed)``.  The caller's generator is used
only to draw one independent sub-seed per cluster plus one for the
reconciliation pass (in the deterministic cluster order), so cluster
solves never interleave draws and the trajectory is independent of any
execution-order concern.  When the partition yields a **single**
cluster the caller's generator is handed to the inner scheduler
unchanged and the inner result is returned verbatim (modulo an identity
index mapping), making the sharded solve bitwise identical to the
global scalar/delta/batch paths — the gate pinned by
``tests/test_sharded_equivalence.py``.

``ShardedScheduler`` implements the ordinary
:class:`~repro.core.scheduler.Scheduler` protocol, so it composes with
the :mod:`repro.sim.runner` sweep machinery and every
:class:`~repro.sim.executors.base.SweepExecutor` backend exactly like
any other scheme: the executors fan (position, seed) cells out across
processes while each cell's sharded solve handles the spatial
decomposition within the cell.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.allocation import kkt_allocation
from repro.core.annealing import AnnealingSchedule
from repro.core.decision import OffloadingDecision
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.objective import ObjectiveEvaluator
from repro.core.partition import (
    Partition,
    extract_cluster_scenario,
    external_interference,
    partition_scenario,
    restrict_decision,
    scatter_decision,
)
from repro.core.scheduler import ScheduleResult, TsajsScheduler
from repro.errors import ConfigurationError
from repro.obs.clock import Stopwatch
from repro.obs.recorder import get_recorder
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario

#: Upper bound (exclusive) for the per-cluster sub-seeds drawn from the
#: caller's generator; any value representable as a non-negative int64.
_SEED_BOUND = 2**63 - 1


class ShardedScheduler:
    """Spatially sharded TSAJS (cluster solves + boundary reconciliation).

    Parameters
    ----------
    cluster_radius_km:
        Side of the square grid tiles stations are binned into; the
        knob trading solution quality (larger clusters, fewer cut
        interference edges) against per-cluster solve cost.
    interference_radius_km:
        Distance beyond which a foreign station's co-channel coupling
        is treated as negligible (the far-field cutoff).  Defaults to
        the topology's inter-site distance at solve time.
    max_reconcile_rounds:
        Fixed-point iteration cap for the boundary pass; ``0`` disables
        reconciliation entirely.
    schedule, neighborhood, initial_offload_probability, record_trace,
    use_delta, use_batch, batch_size:
        Forwarded to the inner per-cluster
        :class:`~repro.core.scheduler.TsajsScheduler` instances.  With
        ``record_trace`` the result's trace is the concatenation of the
        per-cluster traces in cluster order.
    """

    name = "TSAJS-Shard"

    def __init__(
        self,
        cluster_radius_km: float = 2.0,
        interference_radius_km: Optional[float] = None,
        max_reconcile_rounds: int = 2,
        schedule: Optional[AnnealingSchedule] = None,
        neighborhood: Optional[NeighborhoodSampler] = None,
        initial_offload_probability: float = 0.5,
        record_trace: bool = False,
        use_delta: bool = False,
        use_batch: bool = False,
        batch_size: int = 64,
    ) -> None:
        if not cluster_radius_km > 0.0:
            raise ConfigurationError(
                f"cluster_radius_km must be positive, got {cluster_radius_km}"
            )
        if interference_radius_km is not None and not interference_radius_km > 0.0:
            raise ConfigurationError(
                "interference_radius_km must be positive, got "
                f"{interference_radius_km}"
            )
        if max_reconcile_rounds < 0:
            raise ConfigurationError(
                "max_reconcile_rounds must be non-negative, got "
                f"{max_reconcile_rounds}"
            )
        self.cluster_radius_km = cluster_radius_km
        self.interference_radius_km = interference_radius_km
        self.max_reconcile_rounds = max_reconcile_rounds
        self.schedule_params = schedule if schedule is not None else AnnealingSchedule()
        self.neighborhood = (
            neighborhood if neighborhood is not None else NeighborhoodSampler()
        )
        self.initial_offload_probability = initial_offload_probability
        self.record_trace = record_trace
        self.use_delta = use_delta
        self.use_batch = use_batch
        self.batch_size = batch_size

    # --- Inner-scheduler factories -----------------------------------------

    def _inner_scheduler(self) -> TsajsScheduler:
        """Per-cluster solver on the configured evaluation path."""
        return TsajsScheduler(
            schedule=self.schedule_params,
            neighborhood=self.neighborhood,
            initial_offload_probability=self.initial_offload_probability,
            record_trace=self.record_trace,
            use_delta=self.use_delta,
            use_batch=self.use_batch,
            batch_size=self.batch_size,
        )

    def _reconcile_scheduler(self, external_rx: np.ndarray) -> TsajsScheduler:
        """Boundary re-anneal solver with frozen external interference.

        Always scalar: the delta/batch evaluators do not model the
        ``external_rx`` term, and reconciliation touches only the small
        boundary clusters, so the scalar path's cost is immaterial.
        """

        def factory(scenario: "Scenario") -> ObjectiveEvaluator:
            return ObjectiveEvaluator(scenario, external_rx=external_rx)

        return TsajsScheduler(
            schedule=self.schedule_params,
            neighborhood=self.neighborhood,
            initial_offload_probability=self.initial_offload_probability,
            evaluator_factory=factory,
        )

    # --- Scheduling ---------------------------------------------------------

    def schedule(
        self,
        scenario: "Scenario",
        rng: Optional[np.random.Generator] = None,
        *,
        initial: Optional[OffloadingDecision] = None,
    ) -> ScheduleResult:
        """Solve ``scenario`` via the spatial decomposition.

        ``initial`` warm-starts every cluster from its restriction of
        the given global decision (assignments to foreign-cluster
        stations are dropped to local).
        """
        from repro.sim.rng import make_rng

        rng = rng if rng is not None else make_rng()
        interference_radius = (
            self.interference_radius_km
            if self.interference_radius_km is not None
            else (
                scenario.topology.inter_site_distance_km
                if scenario.topology is not None
                else self.cluster_radius_km
            )
        )
        partition = partition_scenario(
            scenario, self.cluster_radius_km, interference_radius
        )
        rec = get_recorder()
        watch = Stopwatch()
        n_boundary = int(
            np.add.reduce(
                np.array(
                    [c.boundary_users.size for c in partition.clusters],
                    dtype=np.int64,
                )
            )
        ) if partition.clusters else 0
        with rec.span(
            "shard.schedule",
            scheme=self.name,
            n_users=scenario.n_users,
            n_servers=scenario.n_servers,
            n_clusters=partition.n_clusters,
            n_boundary_users=n_boundary,
            cluster_radius_km=float(self.cluster_radius_km),
            interference_radius_km=float(interference_radius),
        ):
            if partition.n_clusters == 1:
                return self._schedule_single(scenario, partition, rng, initial, watch)
            return self._schedule_multi(scenario, partition, rng, initial, watch)

    def _schedule_single(
        self,
        scenario: "Scenario",
        partition: Partition,
        rng: np.random.Generator,
        initial: Optional[OffloadingDecision],
        watch: Stopwatch,
    ) -> ScheduleResult:
        """Degenerate one-cluster partition: defer to the inner solver.

        The sub-scenario extraction and index mapping still run (they
        are identity maps and bit-preserving), so this path exercises
        the same machinery as the multi-cluster one while remaining
        bitwise identical to a direct ``TsajsScheduler`` solve — the
        caller's generator is consumed by the inner solve alone.
        """
        cluster = partition.clusters[0]
        sub_scenario = extract_cluster_scenario(scenario, cluster)
        sub_initial = (
            restrict_decision(initial, cluster, scenario.n_servers)
            if initial is not None
            else None
        )
        result = self._inner_scheduler().schedule(
            sub_scenario, rng, initial=sub_initial
        )
        decision = OffloadingDecision.all_local(
            scenario.n_users, scenario.n_servers, scenario.n_subbands
        )
        scatter_decision(decision, cluster, result.decision)
        allocation = np.zeros((scenario.n_users, scenario.n_servers))
        allocation[np.ix_(cluster.users, cluster.servers)] = result.allocation
        return ScheduleResult(
            decision=decision,
            allocation=allocation,
            utility=result.utility,
            evaluations=result.evaluations,
            wall_time_s=watch.elapsed(),
            trace=list(result.trace),
            accepted_moves=result.accepted_moves,
        )

    def _schedule_multi(
        self,
        scenario: "Scenario",
        partition: Partition,
        rng: np.random.Generator,
        initial: Optional[OffloadingDecision],
        watch: Stopwatch,
    ) -> ScheduleResult:
        from repro.sim.rng import make_rng

        rec = get_recorder()
        # One upfront draw block from the caller's stream: each cluster
        # gets an independent generator derived from its own sub-seed,
        # so the per-cluster draw sequences are fixed regardless of how
        # the cluster solves are later parallelised or reordered.
        cluster_seeds = rng.integers(0, _SEED_BOUND, size=partition.n_clusters)
        reconcile_seed = int(rng.integers(0, _SEED_BOUND))

        composed = OffloadingDecision.all_local(
            scenario.n_users, scenario.n_servers, scenario.n_subbands
        )
        inner = self._inner_scheduler()
        sub_scenarios: List["Scenario"] = []
        evaluations = 0
        accepted_moves = 0
        trace: List[float] = []
        for cluster in partition.clusters:
            sub_scenario = extract_cluster_scenario(scenario, cluster)
            sub_scenarios.append(sub_scenario)
            sub_initial = (
                restrict_decision(initial, cluster, scenario.n_servers)
                if initial is not None
                else None
            )
            with rec.span(
                "shard.cluster",
                cluster=cluster.index,
                n_users=cluster.n_users,
                n_servers=cluster.n_servers,
                n_boundary_users=int(cluster.boundary_users.size),
            ):
                cluster_watch = Stopwatch()
                result = inner.schedule(
                    sub_scenario,
                    make_rng(int(cluster_seeds[cluster.index])),
                    initial=sub_initial,
                )
                if rec.enabled:
                    rec.observe(
                        "shard.cluster_solve_s",
                        cluster_watch.elapsed(),
                        cluster=cluster.index,
                    )
            scatter_decision(composed, cluster, result.decision)
            evaluations += result.evaluations
            accepted_moves += result.accepted_moves
            trace.extend(result.trace)

        global_eval = ObjectiveEvaluator(scenario)
        utility = global_eval.evaluate(composed)

        reconcile_rng = make_rng(reconcile_seed)
        boundary_clusters = [
            cluster
            for cluster in partition.clusters
            if cluster.boundary_users.size > 0
        ]
        rounds_used = 0
        for _ in range(self.max_reconcile_rounds):
            if not boundary_clusters:
                break
            improved = False
            rounds_used += 1
            accepted_clusters = 0
            for cluster in boundary_clusters:
                external_rx = external_interference(scenario, cluster, composed)
                warm = restrict_decision(composed, cluster, scenario.n_servers)
                result = self._reconcile_scheduler(external_rx).schedule(
                    sub_scenarios[cluster.index], reconcile_rng, initial=warm
                )
                evaluations += result.evaluations
                accepted_moves += result.accepted_moves
                candidate = composed.copy()
                scatter_decision(candidate, cluster, result.decision)
                candidate_utility = global_eval.evaluate(candidate)
                if candidate_utility > utility:
                    composed = candidate
                    utility = candidate_utility
                    improved = True
                    accepted_clusters += 1
            if rec.enabled:
                rec.event(
                    "shard.reconcile_round",
                    round=rounds_used,
                    improved=improved,
                    accepted_clusters=accepted_clusters,
                    utility=float(utility),
                )
            if not improved:
                break
        if rec.enabled:
            rec.count("shard.reconcile_rounds", float(rounds_used))

        # Mirror TsajsScheduler's guard: staying fully local scores 0,
        # so never return a negative-utility plan (Sec. III-A-4).
        if utility < 0.0:
            composed = OffloadingDecision.all_local(
                scenario.n_users, scenario.n_servers, scenario.n_subbands
            )
            utility = global_eval.evaluate(composed)
        evaluations += global_eval.evaluations

        if rec.enabled:
            rec.event(
                "scheduler.result",
                scheme=self.name,
                utility=float(utility),
                evaluations=evaluations,
                accepted_moves=accepted_moves,
                n_clusters=partition.n_clusters,
                reconcile_rounds=rounds_used,
                n_offloaded=int(composed.n_offloaded()),
            )
        return ScheduleResult(
            decision=composed,
            allocation=kkt_allocation(scenario, composed),
            utility=utility,
            evaluations=evaluations,
            wall_time_s=watch.elapsed(),
            trace=trace,
            accepted_moves=accepted_moves,
        )
