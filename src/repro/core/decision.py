"""The offloading decision ``X`` and its feasibility constraints.

The paper encodes a decision as a binary tensor ``x[u, s, j]`` subject to

* (12b) binary entries,
* (12c) each user offloads to at most one (server, sub-band) slot,
* (12d) each (server, sub-band) slot serves at most one user.

Because (12c) makes the rows one-hot-or-zero, the library uses the compact
equivalent encoding of two integer vectors — ``server_of_user`` and
``channel_of_user`` with ``-1`` meaning local execution — plus a slot
occupancy map kept in sync by the mutation helpers.  (12c) is structural in
this encoding; (12d) is enforced by the mutators and checked by
:meth:`OffloadingDecision.is_feasible`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, InfeasibleDecisionError

#: Marker for "execute locally" (re-exported from the SINR module).
LOCAL = -1


class OffloadingDecision:
    """A feasible-by-construction offloading decision.

    Parameters
    ----------
    n_users, n_servers, n_channels:
        Problem dimensions ``U``, ``S``, ``N``.
    server_of_user, channel_of_user:
        Optional initial assignment vectors; default all-local.
    """

    __slots__ = ("n_users", "n_servers", "n_channels", "server", "channel", "_slots")

    def __init__(
        self,
        n_users: int,
        n_servers: int,
        n_channels: int,
        server_of_user: Optional[np.ndarray] = None,
        channel_of_user: Optional[np.ndarray] = None,
    ) -> None:
        if n_users < 0 or n_servers < 1 or n_channels < 1:
            raise ConfigurationError(
                f"invalid dimensions U={n_users}, S={n_servers}, N={n_channels}"
            )
        self.n_users = n_users
        self.n_servers = n_servers
        self.n_channels = n_channels
        if server_of_user is None:
            self.server = np.full(n_users, LOCAL, dtype=np.int64)
            self.channel = np.full(n_users, LOCAL, dtype=np.int64)
        else:
            if channel_of_user is None:
                raise ConfigurationError(
                    "channel_of_user must accompany server_of_user"
                )
            self.server = np.array(server_of_user, dtype=np.int64)
            self.channel = np.array(channel_of_user, dtype=np.int64)
            if self.server.shape != (n_users,) or self.channel.shape != (n_users,):
                raise ConfigurationError(
                    "assignment vectors must have shape "
                    f"({n_users},), got {self.server.shape} / {self.channel.shape}"
                )
        self._slots = np.full((n_servers, n_channels), LOCAL, dtype=np.int64)
        self._rebuild_slots()

    # --- Construction helpers ---------------------------------------------

    @classmethod
    def all_local(
        cls, n_users: int, n_servers: int, n_channels: int
    ) -> "OffloadingDecision":
        """The trivial decision: every user executes locally."""
        return cls(n_users, n_servers, n_channels)

    @classmethod
    def random_feasible(
        cls,
        n_users: int,
        n_servers: int,
        n_channels: int,
        rng: np.random.Generator,
        offload_probability: float = 0.5,
    ) -> "OffloadingDecision":
        """A uniformly random feasible decision.

        Each user independently attempts to offload with the given
        probability; attempted offloaders are assigned random free slots
        until the slot pool is exhausted (then they stay local).
        """
        if not 0.0 <= offload_probability <= 1.0:
            raise ConfigurationError(
                f"offload_probability must lie in [0, 1], got {offload_probability}"
            )
        decision = cls.all_local(n_users, n_servers, n_channels)
        slots = [(s, j) for s in range(n_servers) for j in range(n_channels)]
        rng.shuffle(slots)
        users = rng.permutation(n_users)
        slot_iter = iter(slots)
        for u in users:
            if rng.random() >= offload_probability:
                continue
            slot = next(slot_iter, None)
            if slot is None:
                break
            decision.assign(int(u), slot[0], slot[1])
        return decision

    # --- Internal invariants ----------------------------------------------

    def _rebuild_slots(self) -> None:
        self._slots.fill(LOCAL)
        for u in range(self.n_users):
            s, j = int(self.server[u]), int(self.channel[u])
            if s == LOCAL and j == LOCAL:
                continue
            if s == LOCAL or j == LOCAL:
                raise InfeasibleDecisionError(
                    f"user {u}: server and channel must both be LOCAL or both set"
                )
            if not (0 <= s < self.n_servers and 0 <= j < self.n_channels):
                raise InfeasibleDecisionError(
                    f"user {u}: slot ({s}, {j}) out of range"
                )
            if self._slots[s, j] != LOCAL:
                raise InfeasibleDecisionError(
                    f"slot ({s}, {j}) assigned to users {self._slots[s, j]} and {u} "
                    "(violates constraint 12d)"
                )
            self._slots[s, j] = u

    # --- Queries ------------------------------------------------------------

    def is_offloaded(self, user: int) -> bool:
        return self.server[user] != LOCAL

    def occupant_of(self, server: int, channel: int) -> int:
        """User occupying slot ``(server, channel)``, or ``LOCAL`` if free."""
        return int(self._slots[server, channel])

    def offloaded_users(self) -> np.ndarray:
        """Indices of users currently offloading."""
        return np.flatnonzero(self.server >= 0)

    def users_on_server(self, server: int) -> np.ndarray:
        """Indices of users attached to ``server`` (the set U_s)."""
        return np.flatnonzero(self.server == server)

    def free_channels(self, server: int) -> List[int]:
        """Sub-bands of ``server`` with no occupant."""
        return [j for j in range(self.n_channels) if self._slots[server, j] == LOCAL]

    def n_offloaded(self) -> int:
        return int(np.count_nonzero(self.server >= 0))

    def iter_assignments(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(user, server, channel)`` for every offloaded user."""
        for u in self.offloaded_users():
            yield int(u), int(self.server[u]), int(self.channel[u])

    def changed_users(self, other: "OffloadingDecision") -> np.ndarray:
        """Indices of users assigned differently in ``other``.

        The exact set the delta evaluator must refresh when moving between
        two decisions; used by the equivalence tests to validate the
        touched sets :class:`~repro.core.neighborhood.NeighborhoodSampler`
        reports for its moves.
        """
        if self.n_users != other.n_users:
            raise ConfigurationError(
                f"user-count mismatch: {self.n_users} vs {other.n_users}"
            )
        return np.flatnonzero(
            (self.server != other.server) | (self.channel != other.channel)
        )

    def is_feasible(self) -> bool:
        """Check constraints (12b)-(12d) from scratch."""
        try:
            self._rebuild_slots()
        except InfeasibleDecisionError:
            return False
        return True

    # --- Mutations (keep the slot map in sync) -------------------------------

    def set_local(self, user: int) -> None:
        """Revoke ``user``'s offload, freeing its slot."""
        s, j = int(self.server[user]), int(self.channel[user])
        if s != LOCAL:
            self._slots[s, j] = LOCAL
        self.server[user] = LOCAL
        self.channel[user] = LOCAL

    def assign(self, user: int, server: int, channel: int) -> None:
        """Assign ``user`` to slot ``(server, channel)``.

        The slot must be free (or already held by ``user``); otherwise
        :class:`InfeasibleDecisionError` is raised.  Any previous slot of
        ``user`` is released.
        """
        if not (0 <= server < self.n_servers and 0 <= channel < self.n_channels):
            raise InfeasibleDecisionError(
                f"slot ({server}, {channel}) out of range"
            )
        occupant = int(self._slots[server, channel])
        if occupant not in (LOCAL, user):
            raise InfeasibleDecisionError(
                f"slot ({server}, {channel}) already held by user {occupant}"
            )
        self.set_local(user)
        self.server[user] = server
        self.channel[user] = channel
        self._slots[server, channel] = user

    def displace_and_assign(self, user: int, server: int, channel: int) -> Optional[int]:
        """Assign ``user`` to a slot, bumping any occupant to local.

        Returns the displaced user's index, or ``None`` if the slot was
        free.  This realises Algorithm 2's "allocate one randomly if none
        are free" while preserving feasibility.
        """
        occupant = int(self._slots[server, channel])
        displaced: Optional[int] = None
        if occupant not in (LOCAL, user):
            self.set_local(occupant)
            displaced = occupant
        self.assign(user, server, channel)
        return displaced

    def swap(self, user_a: int, user_b: int) -> None:
        """Exchange the (server, sub-band) assignments of two users.

        Either user may be local; then the swap moves one assignment
        across and leaves the other local.
        """
        sa, ja = int(self.server[user_a]), int(self.channel[user_a])
        sb, jb = int(self.server[user_b]), int(self.channel[user_b])
        self.set_local(user_a)
        self.set_local(user_b)
        if sb != LOCAL:
            self.assign(user_a, sb, jb)
        if sa != LOCAL:
            self.assign(user_b, sa, ja)

    # --- Conversions / dunder ------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """The paper's binary tensor ``x[u, s, j]`` (shape ``(U, S, N)``)."""
        dense = np.zeros((self.n_users, self.n_servers, self.n_channels), dtype=np.int8)
        for u, s, j in self.iter_assignments():
            dense[u, s, j] = 1
        return dense

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "OffloadingDecision":
        """Build a decision from the paper's binary tensor.

        Raises :class:`InfeasibleDecisionError` if the tensor violates
        constraints (12b)-(12d).
        """
        dense = np.asarray(dense)
        if dense.ndim != 3:
            raise ConfigurationError(
                f"dense decision must have shape (U, S, N), got {dense.shape}"
            )
        if not np.isin(dense, (0, 1)).all():
            raise InfeasibleDecisionError("decision entries must be binary (12b)")
        n_users, n_servers, n_channels = dense.shape
        per_user = dense.reshape(n_users, -1).sum(axis=1)
        if np.any(per_user > 1):
            raise InfeasibleDecisionError(
                "a user offloads to multiple slots (violates 12c)"
            )
        server = np.full(n_users, LOCAL, dtype=np.int64)
        channel = np.full(n_users, LOCAL, dtype=np.int64)
        for u in range(n_users):
            hits = np.argwhere(dense[u] == 1)
            if hits.size:
                server[u], channel[u] = int(hits[0][0]), int(hits[0][1])
        return cls(n_users, n_servers, n_channels, server, channel)

    def copy(self) -> "OffloadingDecision":
        clone = OffloadingDecision.__new__(OffloadingDecision)
        clone.n_users = self.n_users
        clone.n_servers = self.n_servers
        clone.n_channels = self.n_channels
        clone.server = self.server.copy()
        clone.channel = self.channel.copy()
        clone._slots = self._slots.copy()
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OffloadingDecision):
            return NotImplemented
        return (
            self.n_users == other.n_users
            and self.n_servers == other.n_servers
            and self.n_channels == other.n_channels
            and np.array_equal(self.server, other.server)
            and np.array_equal(self.channel, other.channel)
        )

    def __hash__(self) -> int:
        return hash(
            (self.n_users, self.n_servers, self.n_channels,
             self.server.tobytes(), self.channel.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"OffloadingDecision(U={self.n_users}, S={self.n_servers}, "
            f"N={self.n_channels}, offloaded={self.n_offloaded()})"
        )
