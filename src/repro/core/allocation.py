"""Computing Resource Allocation (CRA) — the KKT closed form.

For a fixed offloading decision the CRA sub-problem (Eq. 20)

    min_F  sum_s sum_{u in U_s} eta_u / f_us
    s.t.   sum_{u in U_s} f_us <= f_s,   f_us > 0

is convex (its Hessian is diagonal positive, Eq. 21).  The paper's Lemma
gives the optimum in closed form:

    f*_us       = f_s * sqrt(eta_u) / sum_{v in U_s} sqrt(eta_v)      (22)
    Lambda(X,F*) = sum_s (sum_{u in U_s} sqrt(eta_u))^2 / f_s          (23)

with ``eta_u = lambda_u * beta_u^time * f_u^local``.
"""

from __future__ import annotations

import numpy as np

from repro.core.decision import OffloadingDecision
from repro.errors import InfeasibleAllocationError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


def kkt_allocation(scenario: "Scenario", decision: OffloadingDecision) -> np.ndarray:
    """Optimal allocation matrix ``F`` with ``F[u, s] = f*_us`` (Eq. 22).

    Entries are zero for users not attached to the corresponding server.
    Each server's full capacity is split among its users proportionally to
    ``sqrt(eta_u)``; if ``eta_u = 0`` for every attached user (pure
    energy-preference users, ``beta_time = 0``), the execution-time term
    vanishes from the objective and capacity is split evenly — any feasible
    split is then optimal.
    """
    allocation = np.zeros((scenario.n_users, scenario.n_servers))
    for s in range(scenario.n_servers):
        users = decision.users_on_server(s)
        if users.size == 0:
            continue
        weights = scenario.sqrt_eta[users]
        total = weights.sum()
        if total > 0.0:
            allocation[users, s] = scenario.server_cpu_hz[s] * weights / total
        else:
            allocation[users, s] = scenario.server_cpu_hz[s] / users.size
    return allocation


def optimal_allocation_cost(
    scenario: "Scenario", decision: OffloadingDecision
) -> float:
    """The optimal CRA objective ``Lambda(X, F*)`` (Eq. 23)."""
    cost = 0.0
    for s in range(scenario.n_servers):
        users = decision.users_on_server(s)
        if users.size == 0:
            continue
        root_sum = scenario.sqrt_eta[users].sum()
        cost += root_sum**2 / scenario.server_cpu_hz[s]
    return cost


def allocation_cost(
    scenario: "Scenario", decision: OffloadingDecision, allocation: np.ndarray
) -> float:
    """The CRA objective ``sum eta_u / f_us`` (Eq. 20a) for any allocation.

    Useful for verifying that :func:`kkt_allocation` is in fact optimal.
    Raises :class:`InfeasibleAllocationError` if the allocation violates
    constraints (12e)-(12f) or leaves an attached user with no share.
    """
    allocation = np.asarray(allocation, dtype=float)
    if allocation.shape != (scenario.n_users, scenario.n_servers):
        raise InfeasibleAllocationError(
            "allocation must have shape "
            f"({scenario.n_users}, {scenario.n_servers}), got {allocation.shape}"
        )
    cost = 0.0
    for s in range(scenario.n_servers):
        users = decision.users_on_server(s)
        used = allocation[:, s].sum()
        if used > scenario.server_cpu_hz[s] * (1 + 1e-9):
            raise InfeasibleAllocationError(
                f"server {s} over-allocated: {used} > {scenario.server_cpu_hz[s]}"
            )
        for u in users:
            share = allocation[u, s]
            if share <= 0.0:
                raise InfeasibleAllocationError(
                    f"user {u} attached to server {s} received no CPU share"
                )
            cost += scenario.eta[u] / share
    return cost
