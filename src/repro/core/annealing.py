"""Threshold-triggered simulated annealing — Algorithm 1's control loop.

Classic simulated annealing cools geometrically (``T <- alpha * T``).  The
paper's twist is a *threshold trigger*: the run counts accepted worsened
solutions across chains, and the count is compared against ``maxCount =
threshold_factor * chain_length`` once at the end of each chain.  While
``count < maxCount`` the slow rate ``alpha_slow = 0.97`` applies; the
first end-of-chain check at which the count has reached ``maxCount``
(``count >= maxCount``) applies the fast rate ``alpha_fast = 0.90`` for
exactly that one cooling step and resets the counter to zero, so a fresh
accumulation starts at the next temperature.  Sustained acceptance of bad
moves means the chain is wandering, so the schedule spends less time at
unproductive temperatures — this is what lets TSAJS "effectively avoid
local optima and converge toward the global optimum" within a polynomial
budget.

The engine is generic over the state type: it only needs an objective
function, a proposal function and an initial state, so the ablation
experiments can reuse it with alternative neighbourhoods or schedules and
:class:`~repro.baselines.local_search.LocalSearchScheduler` shares its
bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generic, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.recorder import Recorder, get_recorder

State = TypeVar("State")


@dataclass(frozen=True)
class AnnealingSchedule:
    """Cooling-schedule parameters of Algorithm 1 (lines 3-4).

    ``initial_temperature = None`` reproduces the paper's ``T <- N``
    (the sub-channel count), resolved when the run starts.
    """

    initial_temperature: Optional[float] = None
    min_temperature: float = 1e-9
    alpha_slow: float = 0.97
    alpha_fast: float = 0.90
    chain_length: int = 30
    threshold_factor: float = 1.75

    def __post_init__(self) -> None:
        if self.initial_temperature is not None and self.initial_temperature <= 0:
            raise ConfigurationError(
                f"initial temperature must be positive, got {self.initial_temperature}"
            )
        if self.min_temperature <= 0:
            raise ConfigurationError(
                f"min temperature must be positive, got {self.min_temperature}"
            )
        if (
            self.initial_temperature is not None
            and self.min_temperature >= self.initial_temperature
        ):
            raise ConfigurationError("min temperature must be below the initial one")
        for name in ("alpha_slow", "alpha_fast"):
            alpha = getattr(self, name)
            if not 0.0 < alpha < 1.0:
                raise ConfigurationError(f"{name} must lie in (0, 1), got {alpha}")
        if self.chain_length < 1:
            raise ConfigurationError(
                f"chain length must be >= 1, got {self.chain_length}"
            )
        if self.threshold_factor <= 0:
            raise ConfigurationError(
                f"threshold factor must be positive, got {self.threshold_factor}"
            )

    @property
    def max_count(self) -> float:
        """The trigger threshold ``maxCount = threshold_factor * L``.

        The accepted-worse count is compared against this once per chain,
        *after* the chain's ``L`` proposals: a count that has reached
        ``maxCount`` (``count >= maxCount``) triggers exactly one
        fast-cooling step (``alpha_fast``) and resets the counter; any
        smaller count cools slowly (``alpha_slow``) and keeps
        accumulating.  With the paper's defaults (``threshold_factor =
        1.75``, ``L = 30``) the trigger therefore fires at the end of
        the first chain where the running count reaches 52.5, i.e. 53
        accepted worsened moves.
        """
        return self.threshold_factor * self.chain_length


@dataclass
class AnnealingResult(Generic[State]):
    """Outcome of one annealing run.

    ``temperature_trace`` / ``best_trace`` record one point per outer
    (temperature) iteration — useful for convergence plots and the
    threshold-trigger ablation.
    """

    best_state: State
    best_value: float
    iterations: int
    fast_coolings: int
    temperature_trace: List[float] = field(default_factory=list)
    best_trace: List[float] = field(default_factory=list)
    #: Total accepted moves (improving + accepted-worse), for the golden
    #: trajectory regressions and acceptance-ratio diagnostics.
    accepted_moves: int = 0


class ThresholdTriggeredAnnealer:
    """Algorithm 1's annealing engine, generic over the state type."""

    def __init__(self, schedule: Optional[AnnealingSchedule] = None) -> None:
        self.schedule = schedule if schedule is not None else AnnealingSchedule()

    def run(
        self,
        initial_state: State,
        objective: Callable[[State], float],
        propose: Callable[[State, np.random.Generator], State],
        rng: np.random.Generator,
        default_initial_temperature: float = 1.0,
        record_trace: bool = False,
        propose_move: Optional[
            Callable[[State, np.random.Generator], Tuple[State, Tuple[int, ...]]]
        ] = None,
        move_objective: Optional[
            Callable[[State, Tuple[int, ...]], float]
        ] = None,
        recorder: Optional[Recorder] = None,
        batch_objective: Optional[
            Callable[[Sequence[Tuple[State, Tuple[int, ...]]]], np.ndarray]
        ] = None,
        batch_commit: Optional[Callable[[State, Tuple[int, ...]], None]] = None,
        batch_size: int = 0,
    ) -> AnnealingResult[State]:
        """Maximise ``objective`` from ``initial_state``.

        Parameters
        ----------
        default_initial_temperature:
            Used when the schedule leaves ``initial_temperature`` unset;
            TSAJS passes the sub-channel count ``N`` here (Alg. 1 line 3).
        recorder:
            Observability sink (defaults to the process-level recorder).
            When enabled, the run emits one ``anneal.level`` event per
            temperature level (temperature, best/current value, accepted
            and accepted-worse counters) and an ``anneal.phase_switch``
            event at every end-of-chain check where the accepted-worse
            count has reached ``maxCount = threshold_factor * L``
            (Algorithm 2's trigger); with ``iteration_detail`` set it
            additionally emits one ``anneal.step`` event per proposal.
            Emission never touches the RNG stream, so traced and
            untraced runs walk bitwise-identical trajectories.
        propose_move, move_objective:
            Optional *delta-evaluation* pair (pass both or neither).
            ``propose_move`` returns ``(candidate, touched)`` and
            ``move_objective(candidate, touched)`` scores it from an
            incremental cache.  The cache mirrors the last *evaluated*
            candidate — accepted or not — so after a rejection the next
            call passes the union of the new and the rejected touched
            sets; ``propose`` is then unused (it must draw from the same
            RNG stream as ``propose_move`` for the two modes to walk
            identical chains, as :class:`NeighborhoodSampler` does).
            ``objective`` still scores the initial state.
        batch_objective, batch_commit, batch_size:
            *Vectorized batch* mode (pass all three, plus ``propose_move``).
            Each round speculatively proposes up to ``batch_size`` moves
            from the incumbent (recording the RNG state after each
            proposal and drawing one speculative Metropolis uniform per
            move), scores them all with one ``batch_objective`` call, and
            scans the value vector under exact scalar acceptance
            semantics.  The speculation template assumes every move is a
            rejected worsened one; the scan stops at the first move that
            breaks it — an accepted move, or a ``-inf`` delta (which
            consumes no uniform on the scalar path) — rewinding the RNG
            to the recorded pre-uniform state when the scalar path would
            not have drawn it and discarding the stale tail of the batch.
            The accepted-move chain, every counter and the RNG stream are
            therefore bit-for-bit identical to the scalar path;
            ``batch_commit(candidate, touched)`` is invoked exactly on
            acceptance so the batch evaluator's cache tracks the
            incumbent.
        """
        sched = self.schedule
        batch_mode = batch_objective is not None
        if batch_mode:
            if batch_commit is None or propose_move is None:
                raise ConfigurationError(
                    "batch mode needs propose_move, batch_objective and "
                    "batch_commit together"
                )
            if batch_size < 1:
                raise ConfigurationError(
                    f"batch_size must be >= 1 in batch mode, got {batch_size}"
                )
            if move_objective is not None:
                raise ConfigurationError(
                    "batch mode and move_objective are mutually exclusive"
                )
        elif batch_commit is not None or batch_size:
            raise ConfigurationError(
                "batch_commit/batch_size require batch_objective"
            )
        elif (propose_move is None) != (move_objective is None):
            raise ConfigurationError(
                "propose_move and move_objective must be provided together"
            )
        delta_mode = move_objective is not None
        temperature = (
            sched.initial_temperature
            if sched.initial_temperature is not None
            else float(default_initial_temperature)
        )
        if temperature <= sched.min_temperature:
            raise ConfigurationError(
                f"initial temperature {temperature} must exceed min "
                f"{sched.min_temperature}"
            )

        rec = recorder if recorder is not None else get_recorder()
        tracing = rec.enabled
        step_events = tracing and rec.iteration_detail

        current = initial_state
        current_value = objective(current)
        best = current
        best_value = current_value
        accepted_worse = 0
        accepted_moves = 0
        iterations = 0
        fast_coolings = 0
        level = 0
        prev_accepted = 0
        prev_worse = 0
        # Touched set of the last *rejected* candidate: the delta cache
        # still reflects that candidate, so the next evaluation must
        # also cover its users to diff back correctly.
        carry: Tuple[int, ...] = ()
        result = AnnealingResult(
            best_state=best,
            best_value=best_value,
            iterations=0,
            fast_coolings=0,
        )

        run_span = rec.span(
            "anneal.run",
            initial_temperature=temperature,
            min_temperature=sched.min_temperature,
            chain_length=sched.chain_length,
            max_count=sched.max_count,
            alpha_slow=sched.alpha_slow,
            alpha_fast=sched.alpha_fast,
            delta_mode=delta_mode,
            batch_mode=batch_mode,
            batch_size=batch_size,
        )
        while temperature > sched.min_temperature:
            if batch_mode:
                assert propose_move is not None  # validated above
                assert batch_objective is not None and batch_commit is not None
                steps_left = sched.chain_length
                while steps_left > 0:
                    count = min(batch_size, steps_left)
                    proposals: List[Tuple[State, Tuple[int, ...]]] = []
                    pre_uniform_states: List[Any] = []
                    post_uniform_states: List[Any] = []
                    uniforms: List[float] = []
                    for _ in range(count):
                        proposals.append(propose_move(current, rng))
                        pre_uniform_states.append(rng.bit_generator.state)
                        uniforms.append(rng.random())
                        post_uniform_states.append(rng.bit_generator.state)
                    values = batch_objective(proposals)
                    consumed = count
                    for i in range(count):
                        if step_events:
                            prev_accepted = accepted_moves
                            prev_worse = accepted_worse
                        iterations += 1
                        candidate, touched = proposals[i]
                        candidate_value = float(values[i])
                        delta = candidate_value - current_value
                        accepted = False
                        stop = False
                        if delta > 0:
                            # The scalar path consumes no Metropolis
                            # uniform for an improving move: rewind to the
                            # recorded post-proposal state, discarding the
                            # speculative uniform and the stale tail.
                            rng.bit_generator.state = pre_uniform_states[i]
                            accepted = True
                            stop = True
                        elif delta > -np.inf:
                            if np.exp(delta / temperature) > uniforms[i]:
                                # The uniform was legitimately consumed,
                                # but the tail proposals were drawn from
                                # the pre-acceptance incumbent: rewind to
                                # just after this move's uniform.
                                rng.bit_generator.state = post_uniform_states[i]
                                accepted = True
                                accepted_worse += 1
                                stop = True
                            # else: a rejected worsened move — exactly the
                            # speculation template; the stream stays valid.
                        else:
                            # -inf (or NaN) delta short-circuits the
                            # scalar acceptance test before the uniform;
                            # rewind and discard the stale tail.
                            rng.bit_generator.state = pre_uniform_states[i]
                            stop = True
                        if accepted:
                            current, current_value = candidate, candidate_value
                            accepted_moves += 1
                            batch_commit(candidate, touched)
                            if current_value > best_value:
                                best, best_value = current, current_value
                        if step_events:
                            rec.event(
                                "anneal.step",
                                iteration=iterations,
                                temperature=temperature,
                                delta=float(delta),
                                accepted=accepted_moves != prev_accepted,
                                worse=accepted_worse != prev_worse,
                                accepted_worse=accepted_worse,
                            )
                        if stop:
                            consumed = i + 1
                            break
                    steps_left -= consumed
            else:
                for _ in range(sched.chain_length):
                    if step_events:
                        prev_accepted = accepted_moves
                        prev_worse = accepted_worse
                    iterations += 1
                    if delta_mode:
                        assert propose_move is not None and move_objective is not None
                        candidate, touched = propose_move(current, rng)
                        candidate_value = move_objective(candidate, touched + carry)
                    else:
                        touched = ()
                        candidate = propose(current, rng)
                        candidate_value = objective(candidate)
                    delta = candidate_value - current_value
                    if delta > 0:
                        current, current_value = candidate, candidate_value
                        accepted_moves += 1
                        carry = ()
                        if current_value > best_value:
                            best, best_value = current, current_value
                    else:
                        # Accept a worsened solution with probability
                        # exp(delta / T); count it toward the trigger.
                        if delta > -np.inf and np.exp(delta / temperature) > rng.random():
                            current, current_value = candidate, candidate_value
                            accepted_worse += 1
                            accepted_moves += 1
                            carry = ()
                        else:
                            carry = touched
                    if step_events:
                        rec.event(
                            "anneal.step",
                            iteration=iterations,
                            temperature=temperature,
                            delta=float(delta),
                            accepted=accepted_moves != prev_accepted,
                            worse=accepted_worse != prev_worse,
                            accepted_worse=accepted_worse,
                        )
            if record_trace:
                result.temperature_trace.append(temperature)
                result.best_trace.append(best_value)
            if tracing:
                rec.event(
                    "anneal.level",
                    level=level,
                    temperature=temperature,
                    best=float(best_value),
                    current=float(current_value),
                    accepted_moves=accepted_moves,
                    accepted_worse=accepted_worse,
                    iterations=iterations,
                )
            if accepted_worse < sched.max_count:
                temperature *= sched.alpha_slow
            else:
                # Algorithm 2's trigger: the accepted-worse count reached
                # maxCount at an end-of-chain check, so the schedule
                # switches to one fast cooling step (alpha_fast).
                if tracing:
                    rec.event(
                        "anneal.phase_switch",
                        level=level,
                        temperature=temperature,
                        accepted_worse=accepted_worse,
                        max_count=sched.max_count,
                        fast_coolings=fast_coolings + 1,
                    )
                temperature *= sched.alpha_fast
                fast_coolings += 1
                accepted_worse = 0
            level += 1
        if tracing:
            rec.event(
                "anneal.finish",
                levels=level,
                iterations=iterations,
                accepted_moves=accepted_moves,
                fast_coolings=fast_coolings,
                best=float(best_value),
            )
        run_span.__exit__(None, None, None)

        result.best_state = best
        result.best_value = best_value
        result.iterations = iterations
        result.fast_coolings = fast_coolings
        result.accepted_moves = accepted_moves
        return result
