"""Incremental (delta) evaluation of ``J*(X)`` — the annealer's fast lane.

Every TTSA proposal differs from the incumbent in at most a handful of
users (Algorithm 2 touches one or two, plus a possibly displaced slot
occupant), yet :meth:`ObjectiveEvaluator.evaluate_assignment` rebuilds the
whole ``O(U·S·N)`` link-stats computation from scratch.
:class:`DeltaEvaluator` instead caches, for the last evaluated assignment,

* the per-user received-power rows ``rx[u][s] = p_u · h[u, s, j_u]``,
* the per-``(sub-band, server)`` total received power (Eq. 3's
  interference bookkeeping), with the occupant set of every sub-band,
* the per-user spectral efficiency, net benefit (gain minus
  communication cost) and the masked ``Σ√η`` KKT inputs,

and on the next call recomputes only what a move can change: the SINR of
users sharing a touched sub-band, the occupancy buckets of those bands,
and the affected users' objective terms.

Bitwise contract
----------------
The delta path returns values **bit-for-bit equal** to the full path, so
``use_delta=True`` reproduces the exact annealing trajectory (the
accept/reject comparisons and the RNG stream never diverge).  Three
invariants make this work; keep them in lockstep with
:mod:`repro.core.objective` and :mod:`repro.net.sinr` when editing:

1. every ``total_rx[j][s]`` bucket always equals the *sequential,
   ascending-user-order* sum of its current occupants' ``rx`` rows —
   the accumulation order ``np.add.at`` uses in
   :func:`~repro.net.sinr.compute_link_stats`;
2. per-user terms (signal, SINR, net benefit) are elementwise IEEE
   formulas, so recomputing them with scalar Python floats (which *are*
   IEEE doubles) yields the same bits as the full vectorised
   computation.  The one exception is ``log2``, whose numpy SIMD kernel
   differs from libm's — it therefore stays a (small, batched) numpy
   call;
3. the final reductions run over the same fixed-length masked arrays
   (``net``, ``√η`` weights, server indices) with the same pairwise
   order as the full path (``np.add.reduce`` / ``np.bincount``).

Most cache state is kept in plain Python lists rather than numpy arrays:
the per-move working set is a handful of scalars, where list indexing
beats numpy scalar indexing by an order of magnitude.  The price is an
extra Python-native copy of the gain tensor (``U·N·S`` floats), paid
once per scenario.

Touched-set protocol
--------------------
``evaluate_assignment(server, channel, touched=...)`` takes an iterable
of user indices that is a **superset** of the users whose assignment may
differ from the *previously evaluated* one (not the incumbent: a
rejected proposal still updates the cache, so the annealer passes the
union of the new move's touched set and the rejected move's).  Passing
``touched=None`` falls back to an ``O(U)`` vector diff, which makes the
evaluator a safe drop-in for any caller, including the baselines'
scratch-array loops.
"""

from __future__ import annotations

from bisect import insort
from typing import Iterable, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.objective import ObjectiveEvaluator
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


class DeltaEvaluator(ObjectiveEvaluator):
    """Cache-backed evaluator producing bitwise-identical ``J*(X)``.

    Construction costs ``O(U·S·N)`` time and memory (the Python-native
    gain copy); :meth:`rebuild` resets the cache to the all-local
    assignment, after which the evaluator is indistinguishable from a
    fresh one.
    """

    def __init__(
        self,
        scenario: "Scenario",
        *,
        share_constants_from: Optional["DeltaEvaluator"] = None,
    ) -> None:
        super().__init__(scenario)
        #: Incremental (touched-set) evaluations vs O(U) vector-diff ones;
        #: plain int telemetry read by the scheduler's observability event
        #: (``fast_evals + full_evals == evaluations`` at all times).
        #: Kept as direct attribute increments — not recorder calls — so
        #: the annealer's inner loop pays nothing for the bookkeeping.
        self.fast_evals = 0
        self.full_evals = 0
        if share_constants_from is not None:
            # Alias the immutable per-scenario constants of an existing
            # evaluator instead of re-materialising them (the gain copy is
            # the expensive part: U*N*S Python floats).  Used by the
            # parallel-tempering chains, which all score the same scenario.
            if share_constants_from.scenario is not scenario:
                raise ConfigurationError(
                    "share_constants_from must wrap the same scenario object"
                )
            src = share_constants_from
            self._p_list = src._p_list
            self._sqrt_eta_list = src._sqrt_eta_list
            self._comm_list = src._comm_list
            self._gain_list = src._gain_list
            self._noise = src._noise
            self._n_servers = src._n_servers
            self._cpu_hz = src._cpu_hz
            self._gain_rows = src._gain_rows
        else:
            # Python-native copies of the constants read per move: list
            # indexing returns ready-made floats, numpy scalar indexing
            # allocates a wrapper object each time.  float() is exact, so
            # scalar arithmetic on these matches numpy's kernels bitwise.
            self._p_list = scenario.tx_power_watts.tolist()
            self._sqrt_eta_list = scenario.sqrt_eta.tolist()
            self._comm_list = scenario.comm_weight.tolist()
            self._gain_list = scenario.offload_gain.tolist()
            self._noise = float(scenario.noise_watts)
            self._n_servers = scenario.n_servers
            self._cpu_hz = scenario.server_cpu_hz
            #: ``_gain_rows[u][j][s]`` = ``h[u, s, j]``, band-major.
            self._gain_rows = scenario.gains.transpose(0, 2, 1).tolist()
        self.rebuild()

    # --- Cache lifecycle ---------------------------------------------------

    def rebuild(self) -> None:
        """Reset the cache to the all-local assignment."""
        sc = self.scenario
        n_users, n_servers, n_subbands = sc.n_users, sc.n_servers, sc.n_subbands
        self._server_list: List[int] = [LOCAL] * n_users
        self._channel_list: List[int] = [LOCAL] * n_users
        #: Occupants of each sub-band, kept sorted ascending (invariant 1).
        self._band_users: List[List[int]] = [[] for _ in range(n_subbands)]
        #: Current received-power row of each offloaded user.
        self._rx_rows: List[Optional[List[float]]] = [None] * n_users
        self._total_rx = [[0.0] * n_servers for _ in range(n_subbands)]
        self._signal = [0.0] * n_users
        self._se = [0.0] * n_users
        self._net = np.zeros(n_users)
        self._w = np.zeros(n_users)
        self._idx = np.zeros(n_users, dtype=np.int64)
        self._dead = [False] * n_users
        self._n_dead = 0
        self._n_offloaded = 0
        self._lambda_cost = 0.0
        self._kkt_dirty = False

    # --- Evaluation --------------------------------------------------------

    def evaluate_assignment(
        self,
        server_of_user: np.ndarray,
        channel_of_user: np.ndarray,
        touched: Optional[Iterable[int]] = None,
    ) -> float:
        """``J*(X)`` (Eq. 24), recomputing only what changed since the last call.

        ``touched`` must cover every user whose assignment may differ
        from the previously evaluated one (see the module docstring);
        ``None`` diffs the full vectors instead.
        """
        self.evaluations += 1
        server_list, channel_list = self._server_list, self._channel_list
        if touched is None:
            self.full_evals += 1
            server = np.asarray(server_of_user)
            channel = np.asarray(channel_of_user)
            diff = np.flatnonzero(
                (server != np.asarray(server_list, dtype=server.dtype))
                | (channel != np.asarray(channel_list, dtype=channel.dtype))
            )
            changed = [
                (int(u), int(server[u]), int(channel[u])) for u in diff
            ]
        else:
            self.fast_evals += 1
            server, channel = server_of_user, channel_of_user
            changed = []
            seen: List[int] = []
            for u in touched:
                if u in seen:  # touched sets are tiny; a set() costs more
                    continue
                seen.append(u)
                new_server = int(server[u])
                new_channel = int(channel[u])
                if server_list[u] != new_server or channel_list[u] != new_channel:
                    changed.append((u, new_server, new_channel))
        if changed:
            self._apply(changed)
        return self._value()

    def evaluate_move(
        self, decision: OffloadingDecision, touched: Iterable[int] = ()
    ) -> float:
        """``J*(X)`` (Eq. 24) for a decision whose changed users lie in ``touched``."""
        # Inlined copy of evaluate_assignment's touched path — this is the
        # annealer's per-proposal call, where even argument re-dispatch
        # shows up in the profile.
        self.evaluations += 1
        self.fast_evals += 1
        server = decision.server
        channel = decision.channel
        server_list, channel_list = self._server_list, self._channel_list
        changed: List[Tuple[int, int, int]] = []
        seen: List[int] = []
        for u in touched:
            if u in seen:
                continue
            seen.append(u)
            new_server = int(server[u])
            new_channel = int(channel[u])
            if server_list[u] != new_server or channel_list[u] != new_channel:
                changed.append((u, new_server, new_channel))
        if changed:
            self._apply(changed)
        return self._value()

    # --- Internals ---------------------------------------------------------

    def _apply(self, changed: List[Tuple[int, int, int]]) -> None:
        server_list, channel_list = self._server_list, self._channel_list
        rx_rows = self._rx_rows
        bands = set()
        # Detach every changed user from its old slot first, so the band
        # occupant lists never hold a stale entry while new ones insert.
        for u, _, _ in changed:
            if server_list[u] != LOCAL:
                old_band = channel_list[u]
                bands.add(old_band)
                self._band_users[old_band].remove(u)
                self._n_offloaded -= 1
                if self._dead[u]:
                    self._dead[u] = False
                    self._n_dead -= 1
        for u, new_server, new_band in changed:
            old_server = server_list[u]
            server_list[u] = new_server
            channel_list[u] = new_band
            if new_server != old_server:
                # The masked KKT inputs change only on offload-state or
                # server changes; pure channel moves keep Lambda intact.
                self._kkt_dirty = True
                if new_server == LOCAL:
                    self._w[u] = 0.0
                    self._idx[u] = 0
                else:
                    self._w[u] = self._sqrt_eta_list[u]
                    self._idx[u] = new_server
            if new_server == LOCAL:
                self._signal[u] = 0.0
                self._se[u] = 0.0
                self._net[u] = 0.0
            else:
                bands.add(new_band)
                insort(self._band_users[new_band], u)
                self._n_offloaded += 1
                p = self._p_list[u]
                row = [g * p for g in self._gain_rows[u][new_band]]
                rx_rows[u] = row
                self._signal[u] = row[new_server]
        # Rebuild the received-power buckets of every touched band by
        # summing occupant rows in ascending-user order — the order
        # np.add.at accumulates in on the full path (invariant 1).  Bands
        # are visited in sorted order: each bucket is rebuilt independently,
        # so the order cannot change values, only make it deterministic.
        total_rx = self._total_rx
        affected: List[int] = []
        for band in sorted(bands):
            occupants = self._band_users[band]
            if occupants:
                first = iter(occupants)
                bucket = list(rx_rows[next(first)])
                for u in first:
                    row = rx_rows[u]
                    for s, value in enumerate(row):
                        bucket[s] += value
                total_rx[band] = bucket
                affected.extend(occupants)
            else:
                total_rx[band] = [0.0] * len(total_rx[band])
        if affected:
            self._refresh(affected)

    def _refresh(self, affected: List[int]) -> None:
        """Recompute SINR-dependent terms for users on touched bands.

        All scalar arithmetic below reproduces compute_link_stats'
        elementwise kernels bit-for-bit (invariant 2); only log2 stays a
        batched numpy call.
        """
        server_list, channel_list = self._server_list, self._channel_list
        signal_list = self._signal
        total_rx = self._total_rx
        noise = self._noise
        sinr = [0.0] * len(affected)
        for i, u in enumerate(affected):
            sig = signal_list[u]
            interference = total_rx[channel_list[u]][server_list[u]] - sig
            if interference <= 0.0:  # matches np.maximum(x, 0.0)
                interference = 0.0
            sinr[i] = sig / (interference + noise)
        se = np.log2(1.0 + np.array(sinr)).tolist()
        se_list = self._se
        net = self._net
        dead = self._dead
        gain_list, comm_list = self._gain_list, self._comm_list
        for i, u in enumerate(affected):
            se_u = se[i]
            se_list[u] = se_u
            if se_u > 0.0:
                if dead[u]:
                    dead[u] = False
                    self._n_dead -= 1
                net[u] = gain_list[u] - comm_list[u] / se_u
            else:
                # Zero spectral efficiency makes J* -inf regardless of the
                # net terms; park the entry at 0.0 (it is refreshed before
                # it can matter) and avoid the division by zero.
                if not dead[u]:
                    dead[u] = True
                    self._n_dead += 1
                net[u] = 0.0

    def _settle_kkt(self) -> None:
        """Recompute the cached ``Lambda(X, F*)`` cost if it is stale.

        The recomputation runs over the same fixed-length masked arrays
        as the full path, so settling at any time is exact; the batch
        evaluator calls this before staging so clean candidates can reuse
        ``_lambda_cost`` even when ``_value`` early-returned (all-local or
        dead-user incumbents skip the lazy settle below).
        """
        if self._kkt_dirty:
            root_sums = np.bincount(
                self._idx, weights=self._w, minlength=self._n_servers
            )
            self._lambda_cost = float(
                np.add.reduce(root_sums * root_sums / self._cpu_hz)
            )
            self._kkt_dirty = False

    def _value(self) -> float:
        if self._n_offloaded == 0:
            return 0.0
        if self._n_dead:
            return float("-inf")
        # Identical reductions to the full path (invariant 3):
        # np.add.reduce is exactly ndarray.sum's pairwise kernel.  The
        # KKT cost is recomputed from the same masked arrays whenever
        # they changed, so caching it across channel-only moves is exact.
        self._settle_kkt()
        return float(np.add.reduce(self._net)) - self._lambda_cost
