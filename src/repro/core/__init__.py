"""The paper's primary contribution: TSAJS joint scheduling.

* :mod:`repro.core.decision` — the offloading decision ``X`` and its
  feasibility constraints (12b)-(12d).
* :mod:`repro.core.allocation` — the KKT closed-form computing-resource
  allocation (Eq. 20-23).
* :mod:`repro.core.objective` — utility/cost evaluation (Eq. 8-11, 16-19, 24).
* :mod:`repro.core.delta` — incremental (delta) evaluation of the same
  objective for the annealer's single-user moves.
* :mod:`repro.core.batch` — vectorized batch evaluation of whole
  Algorithm-2 neighbourhoods, plus parallel tempering over batches.
* :mod:`repro.core.annealing` — the threshold-triggered simulated-annealing
  engine (Algorithm 1's control loop).
* :mod:`repro.core.neighborhood` — the move generator (Algorithm 2).
* :mod:`repro.core.scheduler` — TSAJS itself: TTSA over decisions with KKT
  allocation, returning ``(X, F, J)``.
* :mod:`repro.core.partition` — spatial clustering of metro-scale
  topologies (grid-tile partitioner, boundary sets, sub-scenario
  extraction).
* :mod:`repro.core.sharding` — the sharded scheduler: per-cluster TTSA
  solves stitched together with a boundary-reconciliation fixed point.
"""

from repro.core.allocation import kkt_allocation, optimal_allocation_cost
from repro.core.annealing import AnnealingSchedule, ThresholdTriggeredAnnealer
from repro.core.batch import BatchEvaluator, ParallelTemperingScheduler
from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.delta import DeltaEvaluator
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.objective import ObjectiveEvaluator, UtilityBreakdown
from repro.core.partition import Cluster, Partition, partition_scenario
from repro.core.scheduler import ScheduleResult, TsajsScheduler
from repro.core.sharding import ShardedScheduler

__all__ = [
    "LOCAL",
    "AnnealingSchedule",
    "BatchEvaluator",
    "Cluster",
    "DeltaEvaluator",
    "ParallelTemperingScheduler",
    "NeighborhoodSampler",
    "ObjectiveEvaluator",
    "OffloadingDecision",
    "Partition",
    "ScheduleResult",
    "ShardedScheduler",
    "ThresholdTriggeredAnnealer",
    "TsajsScheduler",
    "UtilityBreakdown",
    "kkt_allocation",
    "optimal_allocation_cost",
    "partition_scenario",
]
