"""Vectorized batch evaluation of Algorithm-2 neighborhoods.

:class:`BatchEvaluator` scores a whole batch of candidate moves — all
proposed from the *same* incumbent decision — in one NumPy shot, instead
of the :class:`~repro.core.delta.DeltaEvaluator`'s one-candidate-at-a-time
loop.  The annealer's batch mode (``ThresholdTriggeredAnnealer.run(...,
batch_size=B)``) proposes ``B`` speculative moves per round, calls
:meth:`BatchEvaluator.evaluate_batch` once, and applies the Metropolis
rule over the returned value vector with exact scalar semantics (see
:mod:`repro.core.annealing` for the RNG-rewind protocol that keeps the
two modes bitwise identical).

Evaluation strategy
-------------------
Each candidate differs from the incumbent in at most a handful of users
(Algorithm 2 touches one or two, plus a possibly displaced occupant), so
the evaluator reuses the delta cache of the incumbent and splits work
into two phases:

1. **Staging** (per candidate, cheap scalar Python): diff the candidate
   against the cache, rebuild the per-sub-band received-power buckets its
   move touches (a bucket holds at most ``S`` occupants — one per
   station, constraint 12d), and collect the SINRs of every user whose
   interference changed, plus the candidate's KKT-input fixes.

2. **Finalize** (one NumPy shot across the whole batch): a single
   ``log2`` over all collected SINRs, a ``(B, U)`` net-benefit matrix
   reduced along the user axis, and an ``np.add.at`` scatter replacing
   per-candidate ``np.bincount`` calls for the ``Lambda(X, F*)`` cost.

Bitwise contract
----------------
``evaluate_batch`` returns, for every candidate, the exact bits
:meth:`ObjectiveEvaluator.evaluate_assignment` would return.  On top of
the delta invariants (see :mod:`repro.core.delta`) this relies on three
row-batching identities of NumPy, pinned by tests/test_batch_equivalence:

* ``np.add.reduce(M, axis=1)`` of a C-contiguous ``(B, U)`` matrix
  equals the per-row 1-D pairwise reduction, row by row;
* ``np.add.at`` over per-row ascending indices accumulates each row in
  the same sequential order as ``np.bincount``;
* ``np.log2`` is value-deterministic — the same input bits give the same
  output bits regardless of array shape or element position.

The cache must mirror the **incumbent** (not the last evaluated
candidate, as in delta mode): ``evaluate_batch`` never mutates it, and
the annealer calls :meth:`commit` exactly when a move is accepted.

:class:`ParallelTemperingScheduler` amortizes one finalize across
multiple annealing chains at staggered temperatures: every chain stages
its own batch against its own cache, and :func:`finalize_staged` fuses
the NumPy phase.  Parallel tempering is a different search algorithm —
it makes no bitwise-equivalence claim against the scalar path, only a
seeded-determinism one.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.allocation import kkt_allocation
from repro.core.annealing import AnnealingSchedule, ThresholdTriggeredAnnealer
from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.delta import DeltaEvaluator
from repro.core.neighborhood import NeighborhoodSampler
from repro.errors import ConfigurationError
from repro.obs.clock import Stopwatch
from repro.obs.recorder import get_recorder
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.core.scheduler import ScheduleResult
    from repro.sim.scenario import Scenario

#: One candidate move: the proposed decision plus its touched-user set.
Candidate = Tuple[OffloadingDecision, Tuple[int, ...]]


@dataclass
class StagedBatch:
    """Scalar-phase output of :meth:`BatchEvaluator.stage`, ready to fuse.

    All index lists are parallel per collection; ``finalize_staged``
    consumes one or more of these (possibly from different evaluators
    over the same scenario) in a single vectorized pass.
    """

    evaluator: "BatchEvaluator"
    n_candidates: int
    base_value: float
    #: Flat (candidate, user) pairs whose SINR changed, plus the new SINR
    #: and whether the user was dead (zero spectral efficiency) in the base.
    rows: List[int] = field(default_factory=list)
    cols: List[int] = field(default_factory=list)
    sinr: List[float] = field(default_factory=list)
    was_dead: List[bool] = field(default_factory=list)
    #: Flat (candidate, user) pairs whose net term becomes exactly 0.0
    #: (users the move sends back to local execution).
    zero_rows: List[int] = field(default_factory=list)
    zero_cols: List[int] = field(default_factory=list)
    #: Per-candidate bookkeeping.
    n_offloaded: List[int] = field(default_factory=list)
    n_dead_base: List[int] = field(default_factory=list)
    unchanged: List[bool] = field(default_factory=list)
    #: Candidates whose KKT inputs changed, with their (user, idx, w) fixes.
    dirty_index: List[int] = field(default_factory=list)
    dirty_fixes: List[List[Tuple[int, int, float]]] = field(default_factory=list)


class BatchEvaluator(DeltaEvaluator):
    """Array-at-once scorer for Algorithm-2 neighborhoods.

    Construction cost matches :class:`DeltaEvaluator` (pass
    ``share_constants_from`` to alias another instance's per-scenario
    constants).  The inherited ``evaluate`` / ``evaluate_assignment``
    entry points still work and keep the cache in sync, so the annealer's
    initial and final full evaluations need no special casing.
    """

    def __init__(
        self,
        scenario: "Scenario",
        *,
        share_constants_from: Optional[DeltaEvaluator] = None,
    ) -> None:
        super().__init__(scenario, share_constants_from=share_constants_from)
        #: Candidates scored through the vectorized path (telemetry;
        #: direct attribute increments for the same reason as
        #: ``fast_evals`` — the hot loop must not pay for bookkeeping).
        self.batch_evals = 0
        #: Number of ``evaluate_batch`` rounds (vectorized-path hits).
        self.batch_rounds = 0
        #: Candidates committed into the cache (accepted moves).
        self.batch_commits = 0

    # --- Cache sync ---------------------------------------------------------

    def commit(self, decision: OffloadingDecision, touched: Tuple[int, ...]) -> None:
        """Fold an *accepted* candidate into the cache (no evaluation count).

        ``touched`` follows the delta protocol: a superset of the users
        whose assignment differs from the cached incumbent.
        """
        server = decision.server
        channel = decision.channel
        server_list, channel_list = self._server_list, self._channel_list
        changed: List[Tuple[int, int, int]] = []
        seen: List[int] = []
        for u in touched:
            if u in seen:
                continue
            seen.append(u)
            new_server = int(server[u])
            new_channel = int(channel[u])
            if server_list[u] != new_server or channel_list[u] != new_channel:
                changed.append((u, new_server, new_channel))
        if changed:
            self._apply(changed)
        self.batch_commits += 1

    # --- Staging (scalar phase) ----------------------------------------------

    def stage(self, candidates: Sequence[Candidate]) -> StagedBatch:
        """Diff each candidate against the incumbent cache (no mutation)."""
        # Settle the KKT cache first: kkt-clean candidates reuse
        # _lambda_cost directly in the finalize phase.
        self._settle_kkt()
        staged = StagedBatch(
            evaluator=self,
            n_candidates=len(candidates),
            base_value=self._value(),
        )
        server_list, channel_list = self._server_list, self._channel_list
        band_users, rx_rows = self._band_users, self._rx_rows
        signal_list = self._signal
        dead = self._dead
        p_list, gain_rows = self._p_list, self._gain_rows
        sqrt_eta_list = self._sqrt_eta_list
        noise = self._noise

        for index, (decision, touched) in enumerate(candidates):
            server = decision.server
            channel = decision.channel
            changed: List[Tuple[int, int, int]] = []
            seen: List[int] = []
            for u in touched:
                if u in seen:
                    continue
                seen.append(u)
                new_server = int(server[u])
                new_channel = int(channel[u])
                if server_list[u] != new_server or channel_list[u] != new_channel:
                    changed.append((u, new_server, new_channel))
            if not changed:
                staged.unchanged.append(True)
                staged.n_offloaded.append(self._n_offloaded)
                staged.n_dead_base.append(self._n_dead)
                continue
            staged.unchanged.append(False)

            # Candidate-local occupancy of the touched bands, mirroring
            # DeltaEvaluator._apply: detach every changed user first, then
            # insert arrivals in ascending-user order.
            bands: Set[int] = set()
            leaving: List[int] = []
            n_offloaded = self._n_offloaded
            n_dead = self._n_dead
            kkt_dirty = False
            fixes: List[Tuple[int, int, float]] = []
            for u, new_server, new_band in changed:
                old_server = server_list[u]
                if old_server != LOCAL:
                    bands.add(channel_list[u])
                    leaving.append(u)
                    n_offloaded -= 1
                    if dead[u]:
                        n_dead -= 1
                if new_server != old_server:
                    kkt_dirty = True
                    if new_server == LOCAL:
                        fixes.append((u, 0, 0.0))
                    else:
                        fixes.append((u, new_server, sqrt_eta_list[u]))
                if new_server == LOCAL:
                    staged.zero_rows.append(index)
                    staged.zero_cols.append(u)
                else:
                    bands.add(new_band)
                    n_offloaded += 1

            occupants_of: Dict[int, List[int]] = {}
            for band in sorted(bands):
                occ = [u for u in band_users[band] if u not in leaving]
                occupants_of[band] = occ
            #: Candidate-local received-power rows for users that moved
            #: onto a (new) band; everyone else keeps the cached row.
            local_rows: Dict[int, List[float]] = {}
            cand_server: Dict[int, int] = {}
            for u, new_server, new_band in changed:
                cand_server[u] = new_server
                if new_server != LOCAL:
                    insort(occupants_of[new_band], u)
                    p = p_list[u]
                    local_rows[u] = [g * p for g in gain_rows[u][new_band]]

            # Rebuild each touched bucket as the ascending-user sequential
            # sum of its occupants' rows (invariant 1 of the delta
            # contract), then collect the occupants' new SINRs.
            for band in sorted(bands):
                occ = occupants_of[band]
                if not occ:
                    continue
                bucket: Optional[List[float]] = None
                for u in occ:
                    row = local_rows.get(u)
                    if row is None:
                        cached = rx_rows[u]
                        assert cached is not None  # offloaded => has a row
                        row = cached
                    if bucket is None:
                        bucket = list(row)
                    else:
                        for s, value in enumerate(row):
                            bucket[s] += value
                assert bucket is not None
                for u in occ:
                    srv = cand_server.get(u)
                    if srv is None:
                        srv = server_list[u]
                        sig = signal_list[u]
                        # Detaching clears the dead flag in _apply, so a
                        # *changed* user re-enters refresh as not-dead;
                        # only unchanged occupants carry their base flag.
                        was_dead = dead[u]
                    else:
                        sig = local_rows[u][srv]
                        was_dead = False
                    interference = bucket[srv] - sig
                    if interference <= 0.0:  # matches np.maximum(x, 0.0)
                        interference = 0.0
                    staged.rows.append(index)
                    staged.cols.append(u)
                    staged.sinr.append(sig / (interference + noise))
                    staged.was_dead.append(was_dead)

            staged.n_offloaded.append(n_offloaded)
            staged.n_dead_base.append(n_dead)
            if kkt_dirty:
                staged.dirty_index.append(index)
                staged.dirty_fixes.append(fixes)
        return staged

    # --- Public batch entry ---------------------------------------------------

    def evaluate_batch(self, candidates: Sequence[Candidate]) -> np.ndarray:
        """``J*(X)`` (Eq. 24) for every candidate, in one vectorized pass.

        Every value is bit-for-bit what the scalar paths would return for
        the same assignment.  The cache is not modified; call
        :meth:`commit` for the (at most one) candidate the annealer
        accepts.
        """
        n = len(candidates)
        self.evaluations += n
        self.batch_evals += n
        self.batch_rounds += 1
        return finalize_staged([self.stage(candidates)])[0]


def finalize_staged(staged_batches: Sequence[StagedBatch]) -> List[np.ndarray]:
    """Fuse the NumPy phase of one or more staged batches.

    All batches must come from evaluators over scenarios with the same
    user count (parallel-tempering chains share one scenario).  Returns
    one value vector per staged batch, in order.
    """
    if not staged_batches:
        return []
    # One log2 over every (candidate, user) SINR across all batches —
    # log2 is value-deterministic, so fusing cannot change bits.
    offsets: List[int] = []
    total = 0
    for staged in staged_batches:
        offsets.append(total)
        total += len(staged.sinr)
    all_sinr = np.empty(total)
    position = 0
    for staged in staged_batches:
        count = len(staged.sinr)
        all_sinr[position : position + count] = staged.sinr
        position += count
    all_se = np.log2(1.0 + all_sinr)

    results: List[np.ndarray] = []
    for staged, offset in zip(staged_batches, offsets):
        results.append(_finalize_one(staged, all_se[offset : offset + len(staged.sinr)]))
    return results


def _finalize_one(staged: StagedBatch, se: np.ndarray) -> np.ndarray:
    """Vectorized value computation for one staged batch."""
    evaluator = staged.evaluator
    n_candidates = staged.n_candidates
    if n_candidates == 0:
        return np.empty(0)
    n_users = evaluator.scenario.n_users

    # (B, U) net-benefit matrix: every row starts as the incumbent's
    # masked array, then the affected entries are scattered in.  The
    # arithmetic (gain - comm / se) is the same elementwise IEEE kernel
    # the scalar paths use (delta invariant 2).  Broadcast-assign rather
    # than np.repeat: same bits, one memcpy-speed fill.
    net = np.empty((n_candidates, n_users))
    net[:] = evaluator._net[None, :]
    rows = np.asarray(staged.rows, dtype=np.intp)
    cols = np.asarray(staged.cols, dtype=np.intp)
    dead_delta = np.zeros(n_candidates)
    if rows.size:
        alive = se > 0.0
        gain = np.asarray(evaluator.scenario.offload_gain)[cols]
        comm = np.asarray(evaluator.scenario.comm_weight)[cols]
        values = np.zeros(rows.size)
        values[alive] = gain[alive] - comm[alive] / se[alive]
        net[rows, cols] = values
        was_dead = np.asarray(staged.was_dead)
        # A user's dead flag flips when its aliveness changed.
        np.add.at(dead_delta, rows[~alive & ~was_dead], 1.0)
        np.add.at(dead_delta, rows[alive & was_dead], -1.0)
    if staged.zero_rows:
        net[np.asarray(staged.zero_rows, dtype=np.intp),
            np.asarray(staged.zero_cols, dtype=np.intp)] = 0.0
    net_sums = np.add.reduce(net, axis=1)

    # Lambda(X, F*) per candidate: clean candidates reuse the cached
    # cost; dirty ones rerun the scalar path's own masked-bincount
    # kernel against the shared cache with the candidate's fixes applied
    # in place (then reverted).  np.bincount accumulates each bucket
    # sequentially in ascending user order — the pinned contract — so
    # this is bit-for-bit the np.add.at row scatter it replaces, without
    # materializing (B, U) index/weight copies.
    lambda_cost = np.full(n_candidates, evaluator._lambda_cost)
    if staged.dirty_index:
        idx = evaluator._idx
        weights = evaluator._w
        n_servers = evaluator._n_servers
        cpu_hz = evaluator._cpu_hz
        for index, fixes in zip(staged.dirty_index, staged.dirty_fixes):
            saved = [(u, idx[u], weights[u]) for u, _, _ in fixes]
            for u, new_idx, new_w in fixes:
                idx[u] = new_idx
                weights[u] = new_w
            root_sums = np.bincount(idx, weights=weights, minlength=n_servers)
            lambda_cost[index] = np.add.reduce(root_sums * root_sums / cpu_hz)
            for u, old_idx, old_w in saved:
                idx[u] = old_idx
                weights[u] = old_w

    out = net_sums - lambda_cost
    n_offloaded = np.asarray(staged.n_offloaded)
    out[n_offloaded == 0] = 0.0
    n_dead = np.asarray(staged.n_dead_base) + dead_delta
    out[n_dead > 0] = float("-inf")
    if staged.unchanged:
        out[np.asarray(staged.unchanged, dtype=bool)] = staged.base_value
    return out


class ParallelTemperingScheduler:
    """TSAJS with parallel-tempering chains sharing one vectorized batch.

    Runs ``n_chains`` threshold-triggered annealing chains at staggered
    temperatures (chain ``c`` starts at ``T0 * temperature_spacing**c``),
    each scoring speculative candidate batches against its own
    :class:`BatchEvaluator` cache; every round fuses all chains' staging
    output through one :func:`finalize_staged` call, which is the
    amortization this mode exists for.  Every ``swap_every`` temperature
    levels, adjacent chains attempt a replica-exchange (Metropolis
    criterion on the inverse-temperature gap), letting hot-chain
    discoveries migrate to the cold chain.

    The result is deterministic for a fixed RNG (chains draw from
    ``rng.spawn`` streams) but *not* bitwise-equal to the single-chain
    path — it is a different search algorithm.
    """

    name = "TSAJS-PT"

    def __init__(
        self,
        schedule: Optional[AnnealingSchedule] = None,
        neighborhood: Optional[NeighborhoodSampler] = None,
        n_chains: int = 4,
        temperature_spacing: float = 1.6,
        batch_size: int = 16,
        swap_every: int = 4,
        initial_offload_probability: float = 0.5,
    ) -> None:
        if n_chains < 1:
            raise ConfigurationError(f"n_chains must be >= 1, got {n_chains}")
        if temperature_spacing <= 1.0:
            raise ConfigurationError(
                f"temperature_spacing must exceed 1, got {temperature_spacing}"
            )
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if swap_every < 1:
            raise ConfigurationError(f"swap_every must be >= 1, got {swap_every}")
        self.schedule_params = schedule if schedule is not None else AnnealingSchedule()
        self.neighborhood = (
            neighborhood if neighborhood is not None else NeighborhoodSampler()
        )
        self.n_chains = n_chains
        self.temperature_spacing = temperature_spacing
        self.batch_size = batch_size
        self.swap_every = swap_every
        self.initial_offload_probability = initial_offload_probability

    def schedule(
        self, scenario: "Scenario", rng: Optional[np.random.Generator] = None
    ) -> ScheduleResult:
        """Solve one scenario with ``n_chains`` tempered chains."""
        # Imported lazily: scheduler imports this module at package-init
        # time (and sim imports scheduler), so top-level imports of
        # either would be circular.
        from repro.core.scheduler import ScheduleResult
        from repro.sim.rng import make_rng

        rng = rng if rng is not None else make_rng()
        rec = get_recorder()
        watch = Stopwatch()
        sched = self.schedule_params
        with rec.span(
            "scheduler.schedule",
            scheme=self.name,
            n_users=scenario.n_users,
            n_servers=scenario.n_servers,
            n_subbands=scenario.n_subbands,
            n_chains=self.n_chains,
            batch_size=self.batch_size,
        ):
            if scenario.n_users == 0:
                empty = OffloadingDecision.all_local(
                    0, scenario.n_servers, scenario.n_subbands
                )
                evaluator = BatchEvaluator(scenario)
                return ScheduleResult(
                    decision=empty,
                    allocation=kkt_allocation(scenario, empty),
                    utility=evaluator.evaluate(empty),
                    evaluations=evaluator.evaluations,
                    wall_time_s=watch.elapsed(),
                )

            streams = rng.spawn(self.n_chains + 1)
            swap_rng = streams[-1]
            chains: List[_Chain] = []
            for c in range(self.n_chains):
                chains.append(
                    _Chain(
                        scenario=scenario,
                        neighborhood=self.neighborhood,
                        schedule=sched,
                        temperature=self._initial_temperature(scenario)
                        * self.temperature_spacing**c,
                        rng=streams[c],
                        share_from=chains[0].evaluator if chains else None,
                    )
                )
            for chain in chains:
                chain.start(self.initial_offload_probability)

            level = 0
            swaps_accepted = 0
            # The coldest chain (index 0) owns the stopping criterion.
            while chains[0].temperature > sched.min_temperature:
                for chain in chains:
                    chain.begin_level()
                while any(chain.steps_left > 0 for chain in chains):
                    active = [chain for chain in chains if chain.steps_left > 0]
                    staged = [
                        chain.propose_batch(self.batch_size) for chain in active
                    ]
                    for chain, values in zip(active, finalize_staged(staged)):
                        chain.scan(values)
                for chain in chains:
                    chain.cool()
                level += 1
                if level % self.swap_every == 0:
                    swaps_accepted += self._attempt_swaps(chains, swap_rng)

            best_chain = max(chains, key=lambda chain: chain.best_value)
            best = best_chain.best
            if best_chain.best_value < 0.0:
                best = OffloadingDecision.all_local(
                    scenario.n_users, scenario.n_servers, scenario.n_subbands
                )
            evaluator = chains[0].evaluator
            utility = evaluator.evaluate(best)
            evaluations = 0
            batch_evals = 0
            accepted_moves = 0
            for chain in chains:
                evaluations += chain.evaluator.evaluations
                batch_evals += chain.evaluator.batch_evals
                accepted_moves += chain.accepted_moves
            if rec.enabled:
                rec.event(
                    "scheduler.result",
                    scheme=self.name,
                    utility=float(utility),
                    evaluations=evaluations,
                    batch_evals=batch_evals,
                    n_chains=self.n_chains,
                    swaps_accepted=swaps_accepted,
                    levels=level,
                    n_offloaded=int(best.n_offloaded()),
                )
            return ScheduleResult(
                decision=best,
                allocation=kkt_allocation(scenario, best),
                utility=utility,
                evaluations=evaluations,
                wall_time_s=watch.elapsed(),
                accepted_moves=accepted_moves,
            )

    def _initial_temperature(self, scenario: "Scenario") -> float:
        if self.schedule_params.initial_temperature is not None:
            return self.schedule_params.initial_temperature
        return float(scenario.n_subbands)

    def _attempt_swaps(
        self, chains: List["_Chain"], swap_rng: np.random.Generator
    ) -> int:
        """Replica exchange between adjacent chains (cold-to-hot order)."""
        accepted = 0
        for cold, hot in zip(chains, chains[1:]):
            # Maximization form of the PT criterion: swapping helps when
            # the hot chain found a better value than the cold one.
            gap = (1.0 / cold.temperature - 1.0 / hot.temperature) * (
                hot.current_value - cold.current_value
            )
            if gap >= 0.0 or np.exp(gap) > swap_rng.random():
                cold.exchange_with(hot)
                accepted += 1
        return accepted


class _Chain:
    """One tempered annealing chain: state, cache and trigger counters."""

    def __init__(
        self,
        scenario: "Scenario",
        neighborhood: NeighborhoodSampler,
        schedule: AnnealingSchedule,
        temperature: float,
        rng: np.random.Generator,
        share_from: Optional[BatchEvaluator],
    ) -> None:
        self.scenario = scenario
        self.neighborhood = neighborhood
        self.schedule = schedule
        self.temperature = temperature
        self.rng = rng
        self.evaluator = BatchEvaluator(scenario, share_constants_from=share_from)
        self.current: OffloadingDecision
        self.current_value = 0.0
        self.best: OffloadingDecision
        self.best_value = 0.0
        self.accepted_moves = 0
        self.accepted_worse = 0
        self.steps_left = 0
        self._pending: List[Candidate] = []

    def start(self, initial_offload_probability: float) -> None:
        self.current = OffloadingDecision.random_feasible(
            self.scenario.n_users,
            self.scenario.n_servers,
            self.scenario.n_subbands,
            self.rng,
            offload_probability=initial_offload_probability,
        )
        self.current_value = self.evaluator.evaluate(self.current)
        self.best = self.current
        self.best_value = self.current_value

    def begin_level(self) -> None:
        self.steps_left = self.schedule.chain_length

    def propose_batch(self, batch_size: int) -> StagedBatch:
        """Speculative candidates from the incumbent, staged for fusion."""
        count = min(batch_size, self.steps_left)
        self._pending = [
            self.neighborhood.propose_move(self.current, self.rng)
            for _ in range(count)
        ]
        evaluator = self.evaluator
        evaluator.evaluations += count
        evaluator.batch_evals += count
        evaluator.batch_rounds += 1
        return evaluator.stage(self._pending)

    def scan(self, values: np.ndarray) -> None:
        """Metropolis over the batch; stop at the first acceptance.

        Unlike the bitwise single-chain batch mode, rejected-then-stale
        candidates are simply dropped (no RNG replay): parallel tempering
        defines its own chain semantics.
        """
        consumed = len(self._pending)
        for i, (candidate, touched) in enumerate(self._pending):
            value = float(values[i])
            delta = value - self.current_value
            accept = delta > 0
            if not accept and delta > float("-inf"):
                accept = bool(np.exp(delta / self.temperature) > self.rng.random())
                if accept:
                    self.accepted_worse += 1
            if accept:
                self.current, self.current_value = candidate, value
                self.accepted_moves += 1
                self.evaluator.commit(candidate, touched)
                if value > self.best_value:
                    self.best, self.best_value = candidate, value
                consumed = i + 1
                break
        self.steps_left -= consumed
        self._pending = []

    def cool(self) -> None:
        if self.accepted_worse < self.schedule.max_count:
            self.temperature *= self.schedule.alpha_slow
        else:
            self.temperature *= self.schedule.alpha_fast
            self.accepted_worse = 0

    def exchange_with(self, other: "_Chain") -> None:
        """Swap incumbents with ``other`` and resync both caches."""
        self.current, other.current = other.current, self.current
        self.current_value, other.current_value = (
            other.current_value,
            self.current_value,
        )
        # Full-vector resync (touched=None diffs the whole assignment).
        self.evaluator.evaluate_assignment(
            self.current.server, self.current.channel
        )
        other.evaluator.evaluate_assignment(
            other.current.server, other.current.channel
        )


__all__ = [
    "BatchEvaluator",
    "Candidate",
    "ParallelTemperingScheduler",
    "StagedBatch",
    "finalize_staged",
]
