"""Utility and cost evaluation for the JTORA problem.

Three evaluation paths are provided and kept consistent (property-tested):

* the **fast path** :meth:`ObjectiveEvaluator.evaluate` computes the
  optimal-value function ``J*(X)`` of Eq. (24) directly from the closed
  forms — ``sum lam_u (beta_t + beta_e)`` over offloaders minus the
  communication cost ``Gamma(X)`` (first term of Eq. 19) minus the optimal
  computation cost ``Lambda(X, F*)`` (Eq. 23).  This is the annealer's
  inner-loop objective.

* the **explicit path** :meth:`ObjectiveEvaluator.breakdown` materialises
  the per-user delays, energies and utilities of Eq. (8)-(10) for a given
  allocation and sums them per Eq. (11).  With the KKT allocation the two
  paths agree exactly.

* the **delta path** :class:`~repro.core.delta.DeltaEvaluator` computes
  the same ``J*(X)`` incrementally from a cache of the previous
  assignment, recomputing only the terms a single-user move can change.
  It is bit-for-bit equal to the fast path; to make that possible the
  fast path below reduces over *fixed-length* masked arrays (zeros for
  local users) in a fixed order, which the delta path maintains
  incrementally and reduces identically.  Keep the two in lockstep when
  editing either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.allocation import kkt_allocation
from repro.core.decision import OffloadingDecision
from repro.errors import ConfigurationError
from repro.net.sinr import compute_link_stats
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class UtilityBreakdown:
    """Per-user quantities realised by one (decision, allocation) pair.

    All arrays have length ``U``.  For a *local* user the experienced time
    and energy are the local-execution values and its offloading utility
    ``J_u`` is zero (it does not participate in Eq. 11's sum because
    ``sum_s x_us = 0``).

    Attributes
    ----------
    system_utility:
        ``J(X, F) = sum_u lam_u J_u`` (Eq. 11).
    utility:
        Per-user offloading benefit ``J_u`` (Eq. 10); zero for local users.
    rate_bps, sinr:
        Uplink statistics (zero for local users).
    upload_time_s, execute_time_s:
        Offload latency components (Eq. 5 and 7); zero for local users.
    time_s, energy_j:
        The completion time / energy each user actually experiences
        (offload values if offloaded, local values otherwise).
    offloaded:
        Boolean mask of offloading users.
    allocation:
        The ``(U, S)`` CPU-share matrix used.
    """

    system_utility: float
    utility: np.ndarray
    rate_bps: np.ndarray
    sinr: np.ndarray
    upload_time_s: np.ndarray
    execute_time_s: np.ndarray
    time_s: np.ndarray
    energy_j: np.ndarray
    offloaded: np.ndarray
    allocation: np.ndarray

    @property
    def n_offloaded(self) -> int:
        return int(np.count_nonzero(self.offloaded))


class ObjectiveEvaluator:
    """Evaluates offloading decisions against one scenario.

    The evaluator precomputes nothing beyond what :class:`Scenario` already
    holds; it exists to give the schedulers a single, well-tested objective
    implementation and to count evaluations (used by the runtime figures).
    """

    def __init__(
        self, scenario: "Scenario", external_rx: Optional[np.ndarray] = None
    ) -> None:
        self.scenario = scenario
        #: Optional ``(N, S)`` frozen out-of-instance received power
        #: (the sharded scheduler's boundary coupling); ``None`` leaves
        #: the evaluation path bitwise identical to the global one.
        self.external_rx = (
            None if external_rx is None else np.asarray(external_rx, dtype=float)
        )
        #: Number of fast-path objective evaluations performed, for the
        #: algorithm-complexity experiments (Fig. 8).
        self.evaluations = 0

    # --- Fast path (Eq. 24) -------------------------------------------------

    def evaluate_assignment(
        self, server_of_user: np.ndarray, channel_of_user: np.ndarray
    ) -> float:
        """``J*(X)`` (Eq. 24) for raw assignment vectors (hot path, no validation).

        Returns ``-inf`` when an offloaded user has zero achievable rate
        (the upload would never finish, so the decision has unbounded
        cost) — the annealer then steers away from it.
        """
        self.evaluations += 1
        sc = self.scenario
        stats = compute_link_stats(
            sc.gains,
            sc.tx_power_watts,
            sc.noise_watts,
            sc.subband_width_hz,
            server_of_user,
            channel_of_user,
            validate=False,
            external_rx=self.external_rx,
        )
        mask = server_of_user >= 0
        offloaded = np.flatnonzero(mask)
        if offloaded.size == 0:
            return 0.0
        se = stats.spectral_efficiency[offloaded]
        if np.any(se <= 0.0):
            return float("-inf")

        # Net per-user benefit: the constant gain term of Eq. (16)/(24)
        # minus the communication cost Gamma(X) (first term of Eq. 19),
        # held in a full-length masked array (zeros for local users).
        # The delta path maintains this exact array incrementally and
        # reduces it the same way, so the two paths agree bitwise.
        net = np.zeros(sc.n_users)
        net[offloaded] = sc.offload_gain[offloaded] - sc.comm_weight[offloaded] / se

        # Lambda(X, F*): optimal computation cost (Eq. 23), grouped by
        # server.  Local users contribute an exact-identity 0.0 to bucket
        # 0 so the reduction shape stays fixed across assignments.
        root_sums = np.bincount(
            np.where(mask, server_of_user, 0),
            weights=np.where(mask, sc.sqrt_eta, 0.0),
            minlength=sc.n_servers,
        )
        lambda_cost = float((root_sums * root_sums / sc.server_cpu_hz).sum())
        return float(net.sum()) - lambda_cost

    def evaluate(self, decision: OffloadingDecision) -> float:
        """``J*(X)`` (Eq. 24) for a decision object."""
        return self.evaluate_assignment(decision.server, decision.channel)

    # --- Explicit path (Eq. 8-11) --------------------------------------------

    def breakdown(
        self,
        decision: OffloadingDecision,
        allocation: Optional[np.ndarray] = None,
    ) -> UtilityBreakdown:
        """Materialise per-user delays, energies and utilities (Eq. 8-11).

        Parameters
        ----------
        decision:
            The offloading decision ``X``.
        allocation:
            CPU-share matrix ``F``; defaults to the KKT optimum (Eq. 22).
        """
        sc = self.scenario
        if allocation is None:
            allocation = kkt_allocation(sc, decision)
        else:
            allocation = np.asarray(allocation, dtype=float)
            if allocation.shape != (sc.n_users, sc.n_servers):
                raise ConfigurationError(
                    "allocation must have shape "
                    f"({sc.n_users}, {sc.n_servers}), got {allocation.shape}"
                )

        stats = compute_link_stats(
            sc.gains,
            sc.tx_power_watts,
            sc.noise_watts,
            sc.subband_width_hz,
            decision.server,
            decision.channel,
            external_rx=self.external_rx,
        )
        n = sc.n_users
        upload = np.zeros(n)
        execute = np.zeros(n)
        time_s = sc.local_time_s.copy()
        energy = sc.local_energy_j.copy()
        utility = np.zeros(n)
        offloaded_mask = decision.server >= 0

        for u in np.flatnonzero(offloaded_mask):
            s = int(decision.server[u])
            rate = stats.rate_bps[u]
            share = allocation[u, s]
            if rate <= 0.0:
                upload[u] = np.inf
            else:
                upload[u] = sc.input_bits[u] / rate
            if share <= 0.0:
                execute[u] = np.inf
            else:
                execute[u] = sc.cycles[u] / share
            time_s[u] = upload[u] + execute[u]
            energy[u] = sc.tx_power_watts[u] * upload[u]
            time_saving = (sc.local_time_s[u] - time_s[u]) / sc.local_time_s[u]
            energy_saving = (sc.local_energy_j[u] - energy[u]) / sc.local_energy_j[u]
            utility[u] = (
                sc.beta_time[u] * time_saving + sc.beta_energy[u] * energy_saving
            )

        system_utility = float(np.sum(sc.operator_weight * utility))
        return UtilityBreakdown(
            system_utility=system_utility,
            utility=utility,
            rate_bps=stats.rate_bps,
            sinr=stats.sinr,
            upload_time_s=upload,
            execute_time_s=execute,
            time_s=time_s,
            energy_j=energy,
            offloaded=offloaded_mask,
            allocation=allocation,
        )
