"""Spatial partitioning of a metro-scale topology into cell clusters.

The paper's interference model is local: with the urban-macro path loss
``L[dB] = 140.7 + 36.7 log10(d_km)`` (Eq. 2), a transmitter one
inter-site distance away is received tens of dB below the noise floor,
so co-channel coupling between far cells is negligible.  This module
exploits that locality.  It partitions the base stations of a
:class:`~repro.net.topology.Topology` into **clusters** of nearby cells
and assigns every user to the cluster of its nearest station, so each
cluster forms an almost-independent TTSA instance.  The residual
coupling is captured by the **boundary set**: users within a
configurable interference radius of a foreign cluster's station, which
the sharded scheduler reconciles explicitly
(:mod:`repro.core.sharding`).

The partition is deterministic and relabeling-invariant by
construction:

* stations are binned into square grid tiles of side
  ``cluster_radius_km`` anchored at the elementwise minimum of the
  station coordinates (a permutation-invariant origin);
* clusters are ordered lexicographically by tile coordinate, and the
  member index arrays are sorted ascending — so permuting user or
  server labels permutes the membership arrays but never the geometry
  of the partition (pinned by ``tests/test_partition.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.decision import LOCAL, OffloadingDecision
from repro.errors import ConfigurationError
from repro.net.sinr import total_received_power
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario

#: Users processed per chunk when scanning user-to-station distances;
#: bounds peak memory to ``O(chunk * S)`` at metro scale.
DISTANCE_CHUNK = 4096


@dataclass(frozen=True)
class Cluster:
    """One cell cluster: a tile of stations plus the users they serve.

    Attributes
    ----------
    index:
        Position of this cluster in :attr:`Partition.clusters` (the
        deterministic lexicographic tile order).
    tile:
        Grid-tile coordinate ``(tx, ty)`` the cluster occupies.
    servers:
        Sorted global indices of the member base stations.
    users:
        Sorted global indices of the users whose nearest station is a
        member (every user belongs to exactly one cluster).
    boundary_users:
        Sorted subset of :attr:`users` lying within the interference
        radius of at least one foreign-cluster station.
    """

    index: int
    tile: Tuple[int, int]
    servers: np.ndarray
    users: np.ndarray
    boundary_users: np.ndarray

    @property
    def n_servers(self) -> int:
        return int(self.servers.size)

    @property
    def n_users(self) -> int:
        return int(self.users.size)


@dataclass(frozen=True)
class Partition:
    """A complete clustering of one scenario's users and stations.

    ``neighbor_pairs`` is the symmetric boundary relation on clusters:
    ``(a, b)`` (with ``a < b``) appears when any user of one cluster
    lies within the interference radius of a station of the other.
    """

    clusters: Tuple[Cluster, ...]
    cluster_of_server: np.ndarray
    cluster_of_user: np.ndarray
    nearest_server: np.ndarray
    cluster_radius_km: float
    interference_radius_km: float
    neighbor_pairs: Tuple[Tuple[int, int], ...]

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def neighbors_of(self, index: int) -> Tuple[int, ...]:
        """Cluster indices sharing a boundary with cluster ``index``."""
        out: List[int] = []
        for a, b in self.neighbor_pairs:
            if a == index:
                out.append(b)
            elif b == index:
                out.append(a)
        return tuple(sorted(out))


def _validate_radii(cluster_radius_km: float, interference_radius_km: float) -> None:
    if not cluster_radius_km > 0.0:
        raise ConfigurationError(
            f"cluster_radius_km must be positive, got {cluster_radius_km}"
        )
    if not interference_radius_km > 0.0:
        raise ConfigurationError(
            "interference_radius_km must be positive, got "
            f"{interference_radius_km}"
        )


def partition_stations(
    bs_positions: np.ndarray, cluster_radius_km: float
) -> np.ndarray:
    """Cluster index of every station under grid-tile binning.

    Tiles are squares of side ``cluster_radius_km`` anchored at the
    elementwise minimum of the station coordinates; cluster indices
    follow the lexicographic order of the occupied tile coordinates.
    Both choices are invariant under permutations of the station
    labels, which is what makes the whole partition
    relabeling-deterministic.
    """
    positions = np.asarray(bs_positions, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 2:
        raise ConfigurationError(
            f"bs_positions must have shape (S, 2), got {positions.shape}"
        )
    if not cluster_radius_km > 0.0:
        raise ConfigurationError(
            f"cluster_radius_km must be positive, got {cluster_radius_km}"
        )
    origin = positions.min(axis=0)
    tiles = np.floor((positions - origin[None, :]) / cluster_radius_km).astype(
        np.int64
    )
    order: Dict[Tuple[int, int], int] = {}
    for tx, ty in sorted({(int(t[0]), int(t[1])) for t in tiles}):
        order[(tx, ty)] = len(order)
    cluster_of_server = np.array(
        [order[(int(t[0]), int(t[1]))] for t in tiles], dtype=np.int64
    )
    return cluster_of_server


def partition_topology(
    bs_positions: np.ndarray,
    user_positions: np.ndarray,
    cluster_radius_km: float,
    interference_radius_km: float,
) -> Partition:
    """Partition stations and users into clusters with a boundary set.

    Users join the cluster of their nearest station (ties broken toward
    the lowest station index, matching ``np.argmin``).  A user is a
    **boundary user** when some station of a *different* cluster lies
    within ``interference_radius_km`` — beyond that radius the path
    loss makes its uplink interference negligible, which is the far-
    field cutoff assumption ``repro.sim.validation`` checks against the
    radio parameters.
    """
    _validate_radii(cluster_radius_km, interference_radius_km)
    stations = np.asarray(bs_positions, dtype=float)
    users = np.asarray(user_positions, dtype=float)
    if users.ndim != 2 or users.shape[1] != 2:
        raise ConfigurationError(
            f"user_positions must have shape (U, 2), got {users.shape}"
        )
    cluster_of_server = partition_stations(stations, cluster_radius_km)
    n_clusters = int(cluster_of_server.max()) + 1 if cluster_of_server.size else 0
    n_users = users.shape[0]

    nearest_server = np.zeros(n_users, dtype=np.int64)
    cluster_of_user = np.zeros(n_users, dtype=np.int64)
    is_boundary = np.zeros(n_users, dtype=bool)
    adjacency = np.zeros((n_clusters, n_clusters), dtype=bool)
    # Chunked scan: peak memory O(chunk * S) instead of O(U * S), so the
    # partitioner stays usable at metro scale (1e5 users, 1e4 stations).
    for start in range(0, n_users, DISTANCE_CHUNK):
        stop = min(start + DISTANCE_CHUNK, n_users)
        deltas = users[start:stop, None, :] - stations[None, :, :]
        dists = np.sqrt(np.add.reduce(deltas * deltas, axis=2))
        chunk_nearest = np.argmin(dists, axis=1)
        nearest_server[start:stop] = chunk_nearest
        chunk_cluster = cluster_of_server[chunk_nearest]
        cluster_of_user[start:stop] = chunk_cluster
        foreign = cluster_of_server[None, :] != chunk_cluster[:, None]
        close_foreign = foreign & (dists <= interference_radius_km)
        is_boundary[start:stop] = np.any(close_foreign, axis=1)
        rows, cols = np.nonzero(close_foreign)
        if rows.size:
            adjacency[chunk_cluster[rows], cluster_of_server[cols]] = True

    # The boundary relation is symmetric by definition: if a user of a
    # couples into b, re-annealing either side can change the other's
    # interference, so both must treat the pair as a shared boundary.
    adjacency = adjacency | adjacency.T
    np.fill_diagonal(adjacency, False)
    pairs = [
        (int(a), int(b))
        for a, b in zip(*np.nonzero(adjacency))
        if int(a) < int(b)
    ]

    origin = stations.min(axis=0)
    tiles = np.floor((stations - origin[None, :]) / cluster_radius_km).astype(
        np.int64
    )
    clusters: List[Cluster] = []
    for index in range(n_clusters):
        members = np.flatnonzero(cluster_of_server == index)
        member_users = np.flatnonzero(cluster_of_user == index)
        tile = tiles[members[0]]
        clusters.append(
            Cluster(
                index=index,
                tile=(int(tile[0]), int(tile[1])),
                servers=members,
                users=member_users,
                boundary_users=member_users[is_boundary[member_users]],
            )
        )
    return Partition(
        clusters=tuple(clusters),
        cluster_of_server=cluster_of_server,
        cluster_of_user=cluster_of_user,
        nearest_server=nearest_server,
        cluster_radius_km=float(cluster_radius_km),
        interference_radius_km=float(interference_radius_km),
        neighbor_pairs=tuple(sorted(pairs)),
    )


def partition_scenario(
    scenario: "Scenario",
    cluster_radius_km: float,
    interference_radius_km: float,
) -> Partition:
    """Partition a scenario built with topology/user-position metadata.

    Raises :class:`ConfigurationError` when the scenario was assembled
    without geometry (e.g. via ``Scenario.from_parts``) — the sharded
    scheduler needs positions to know which cells are near each other.
    """
    if scenario.topology is None or scenario.user_positions is None:
        raise ConfigurationError(
            "spatial sharding needs scenario.topology and "
            "scenario.user_positions; build the scenario with "
            "Scenario.build (from_parts scenarios carry no geometry)"
        )
    return partition_topology(
        scenario.topology.bs_positions,
        scenario.user_positions,
        cluster_radius_km,
        interference_radius_km,
    )


def extract_cluster_scenario(scenario: "Scenario", cluster: Cluster) -> "Scenario":
    """The sub-scenario a cluster solves as an independent TTSA instance.

    Selecting users/servers/gains by the sorted member indices and
    reassembling through ``Scenario.from_parts`` re-derives every
    constant array from the same per-user objects, so when the cluster
    is the whole scenario (identity indices) the sub-scenario's arrays
    are bitwise equal to the original's — the property the
    single-cluster equivalence tests pin.
    """
    from repro.sim.scenario import Scenario

    users = [scenario.users[int(u)] for u in cluster.users]
    servers = [scenario.servers[int(s)] for s in cluster.servers]
    gains = scenario.gains[cluster.users][:, cluster.servers, :]
    return Scenario.from_parts(
        users=users,
        servers=servers,
        gains=gains,
        total_bandwidth_hz=scenario.ofdma.total_bandwidth_hz,
        noise_watts=scenario.noise_watts,
    )


def restrict_decision(
    decision: OffloadingDecision, cluster: Cluster, n_servers: int
) -> OffloadingDecision:
    """Project a global decision onto one cluster's index space.

    Assignments pointing at foreign-cluster servers are dropped to
    local (a warm start can only seed slots the cluster owns).
    """
    server_map = np.full(n_servers, LOCAL, dtype=np.int64)
    server_map[cluster.servers] = np.arange(cluster.servers.size, dtype=np.int64)
    sub_server = decision.server[cluster.users]
    sub_channel = decision.channel[cluster.users]
    mapped = np.where(
        sub_server >= 0, server_map[np.clip(sub_server, 0, None)], LOCAL
    )
    sub_channel = np.where(mapped >= 0, sub_channel, LOCAL)
    return OffloadingDecision(
        n_users=int(cluster.users.size),
        n_servers=int(cluster.servers.size),
        n_channels=decision.n_channels,
        server_of_user=mapped,
        channel_of_user=sub_channel,
    )


def scatter_decision(
    target: OffloadingDecision, cluster: Cluster, sub: OffloadingDecision
) -> None:
    """Write a cluster's sub-decision back into the global decision.

    Frees every slot the cluster's users previously held, then replays
    the sub-decision's assignments with server indices mapped back to
    the global space.  Feasibility is preserved because a cluster's
    users only ever occupy slots of the cluster's own servers.
    """
    for u in cluster.users:
        target.set_local(int(u))
    for local_u, local_s, channel in sub.iter_assignments():
        target.assign(
            int(cluster.users[local_u]),
            int(cluster.servers[local_s]),
            int(channel),
        )


def external_interference(
    scenario: "Scenario", cluster: Cluster, decision: OffloadingDecision
) -> np.ndarray:
    """Frozen out-of-cluster received power at the cluster's stations.

    Returns the ``(N, S_c)`` per-(sub-band, member-station) power that
    users *outside* the cluster deposit under the current global
    decision — the boundary-coupling term the reconciliation pass adds
    to Eq. (3)'s interference sum while re-annealing the cluster.  The
    accumulation reuses :func:`repro.net.sinr.total_received_power`
    (which buckets by sub-band only), so the bits match what a global
    evaluation would accumulate for the same external users.
    """
    in_cluster = np.zeros(decision.n_users, dtype=bool)
    in_cluster[cluster.users] = True
    external = np.flatnonzero((decision.server >= 0) & ~in_cluster)
    n_channels = decision.n_channels
    if external.size == 0:
        return np.zeros((n_channels, cluster.servers.size))
    gains = scenario.gains[external][:, cluster.servers, :]
    # total_received_power only uses the server vector as an "is
    # offloaded" mask, so external users — whose serving stations lie
    # outside the cluster's index space — are marked with station 0.
    placeholder = np.zeros(external.size, dtype=np.int64)
    return total_received_power(
        gains,
        scenario.tx_power_watts[external],
        placeholder,
        decision.channel[external],
    )
