"""TSAJS — the joint task-scheduling scheme (Algorithm 1 + the KKT Lemma).

The scheduler composes the three pieces of the paper's method:

1. a random feasible initial decision (Alg. 1 line 5),
2. the threshold-triggered annealer searching over offloading decisions
   with Algorithm 2's neighbourhood, scoring each candidate with the
   closed-form optimal-value function ``J*(X)`` of Eq. (24) (which embeds
   the optimal resource allocation via Eq. 23),
3. the explicit KKT allocation ``F*`` (Eq. 22) recovered for the best
   decision found.

The output matches Algorithm 1's: the offloading decision ``X``, the
computing-resource allocation ``F`` and the achieved utility ``J``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.allocation import kkt_allocation
from repro.core.annealing import AnnealingSchedule, ThresholdTriggeredAnnealer
from repro.core.batch import BatchEvaluator
from repro.core.decision import OffloadingDecision
from repro.core.delta import DeltaEvaluator
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.objective import ObjectiveEvaluator
from repro.errors import ConfigurationError
from repro.obs.clock import Stopwatch
from repro.obs.recorder import get_recorder
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class ScheduleResult:
    """The ``(X, F, J)`` triple produced by any scheduler, plus metadata.

    Attributes
    ----------
    decision:
        The offloading decision ``X``.
    allocation:
        The ``(U, S)`` computing-resource allocation ``F`` (KKT optimum for
        the returned decision).
    utility:
        The achieved system utility ``J*(X)`` (Eq. 24).
    evaluations:
        Objective evaluations spent (algorithm-cost metric for Fig. 8).
    wall_time_s:
        Wall-clock scheduling time in seconds.
    trace:
        Optional per-temperature best-utility trace (TSAJS only).
    """

    decision: OffloadingDecision
    allocation: np.ndarray
    utility: float
    evaluations: int
    wall_time_s: float
    trace: List[float] = field(default_factory=list)
    #: Accepted annealer moves (improving + worse); 0 for non-annealing
    #: schedulers.
    accepted_moves: int = 0


@runtime_checkable
class Scheduler(Protocol):
    """Common interface implemented by TSAJS and every baseline."""

    name: str

    def schedule(
        self, scenario: "Scenario", rng: Optional[np.random.Generator] = None
    ) -> ScheduleResult:
        """Solve the JTORA problem for one scenario instance."""
        ...  # pragma: no cover - protocol definition


class TsajsScheduler:
    """The paper's TSAJS heuristic (threshold-triggered SA + KKT).

    Parameters
    ----------
    schedule:
        Annealing schedule; defaults to Algorithm 1's constants, with the
        initial temperature resolving to the sub-channel count ``N``.
    neighborhood:
        Move generator; defaults to Algorithm 2's probabilities.
    initial_offload_probability:
        Density of the random feasible initial solution.
    record_trace:
        Keep a per-temperature best-utility trace in the result.
    use_delta:
        Score candidates with the incremental
        :class:`~repro.core.delta.DeltaEvaluator` instead of re-running
        the full ``O(U·S·N)`` evaluation per move.  The delta path is
        bit-for-bit equal to the full path, so with a fixed RNG the two
        settings produce the exact same decision, allocation and
        utility — this is purely a wall-clock optimisation.
    use_batch, batch_size:
        Score whole speculative neighbourhoods with the vectorized
        :class:`~repro.core.batch.BatchEvaluator` (one NumPy shot per
        up-to-``batch_size`` candidate moves).  Like the delta path this
        is bitwise equal to the scalar path — identical accepted-move
        chain, trajectory and RNG stream — and purely a wall-clock
        optimisation; mutually exclusive with ``use_delta``.
    evaluator_factory:
        Builds the objective evaluator for a scenario; override to plug in
        extended objectives (e.g. the downlink-aware evaluator).  With
        ``use_delta=True`` the factory's evaluator must expose the
        :class:`~repro.core.delta.DeltaEvaluator` ``evaluate_move``
        interface.
    """

    name = "TSAJS"

    def __init__(
        self,
        schedule: Optional[AnnealingSchedule] = None,
        neighborhood: Optional[NeighborhoodSampler] = None,
        initial_offload_probability: float = 0.5,
        record_trace: bool = False,
        use_delta: bool = False,
        use_batch: bool = False,
        batch_size: int = 64,
        evaluator_factory: Optional[
            Callable[["Scenario"], ObjectiveEvaluator]
        ] = None,
    ) -> None:
        if not 0.0 <= initial_offload_probability <= 1.0:
            raise ConfigurationError(
                "initial_offload_probability must lie in [0, 1], got "
                f"{initial_offload_probability}"
            )
        if use_delta and use_batch:
            raise ConfigurationError(
                "use_delta and use_batch are mutually exclusive evaluation "
                "modes (both are bitwise equal to the scalar path)"
            )
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.schedule_params = schedule if schedule is not None else AnnealingSchedule()
        self.neighborhood = (
            neighborhood if neighborhood is not None else NeighborhoodSampler()
        )
        self.initial_offload_probability = initial_offload_probability
        self.record_trace = record_trace
        self.use_delta = use_delta
        self.use_batch = use_batch
        self.batch_size = batch_size
        if evaluator_factory is None:
            if use_batch:
                evaluator_factory = BatchEvaluator
            elif use_delta:
                evaluator_factory = DeltaEvaluator
            else:
                evaluator_factory = ObjectiveEvaluator
        self.evaluator_factory = evaluator_factory

    def schedule(
        self,
        scenario: "Scenario",
        rng: Optional[np.random.Generator] = None,
        *,
        initial: Optional[OffloadingDecision] = None,
    ) -> ScheduleResult:
        """Run Algorithm 1 on ``scenario`` and return ``(X, F, J)``.

        ``initial`` warm-starts the anneal from a given feasible decision
        instead of Alg. 1 line 5's random draw (used by the graceful
        degradation policy to repair an existing plan); the annealer's
        best-tracking starts at the initial state, so the result is never
        worse than the warm start itself.
        """
        # Imported here: repro.sim imports this module at package-init
        # time, so a top-level import would be circular.
        from repro.sim.rng import make_rng

        rng = rng if rng is not None else make_rng()
        rec = get_recorder()
        watch = Stopwatch()
        with rec.span(
            "scheduler.schedule",
            scheme=self.name,
            n_users=scenario.n_users,
            n_servers=scenario.n_servers,
            n_subbands=scenario.n_subbands,
            use_delta=self.use_delta,
            use_batch=self.use_batch,
            batch_size=self.batch_size if self.use_batch else 0,
            warm_start=initial is not None,
        ):
            evaluator = self.evaluator_factory(scenario)

            if scenario.n_users == 0:
                # Degenerate instance: the only decision is the empty one.
                empty = OffloadingDecision.all_local(
                    0, scenario.n_servers, scenario.n_subbands
                )
                return ScheduleResult(
                    decision=empty,
                    allocation=kkt_allocation(scenario, empty),
                    utility=evaluator.evaluate(empty),
                    evaluations=evaluator.evaluations,
                    wall_time_s=watch.elapsed(),
                )

            if initial is None:
                initial = OffloadingDecision.random_feasible(
                    scenario.n_users,
                    scenario.n_servers,
                    scenario.n_subbands,
                    rng,
                    offload_probability=self.initial_offload_probability,
                )
            else:
                initial = initial.copy()
            annealer = ThresholdTriggeredAnnealer(self.schedule_params)
            delta_kwargs: Dict[str, Any] = {}
            if self.use_batch:
                if not hasattr(evaluator, "evaluate_batch"):
                    raise ConfigurationError(
                        "use_batch=True needs an evaluator with evaluate_batch "
                        f"(got {type(evaluator).__name__}); use BatchEvaluator "
                        "or a subclass as the evaluator_factory"
                    )
                delta_kwargs = dict(
                    propose_move=self.neighborhood.propose_move,
                    batch_objective=evaluator.evaluate_batch,
                    batch_commit=evaluator.commit,
                    batch_size=self.batch_size,
                )
            elif self.use_delta:
                if not hasattr(evaluator, "evaluate_move"):
                    raise ConfigurationError(
                        "use_delta=True needs an evaluator with evaluate_move "
                        f"(got {type(evaluator).__name__}); use DeltaEvaluator "
                        "or a subclass as the evaluator_factory"
                    )
                delta_kwargs = dict(
                    propose_move=self.neighborhood.propose_move,
                    move_objective=evaluator.evaluate_move,
                )
            outcome = annealer.run(
                initial_state=initial,
                objective=evaluator.evaluate,
                propose=self.neighborhood.propose,
                rng=rng,
                default_initial_temperature=float(scenario.n_subbands),
                record_trace=self.record_trace,
                recorder=rec,
                **delta_kwargs,
            )

            best = outcome.best_state
            # An empty offload set scores 0; never return a negative-utility
            # plan when staying local is available (users only offload when
            # the benefit is positive, Sec. III-A-4).
            if outcome.best_value < 0.0:
                best = OffloadingDecision.all_local(
                    scenario.n_users, scenario.n_servers, scenario.n_subbands
                )
            utility = evaluator.evaluate(best)
            allocation = kkt_allocation(scenario, best)
            if rec.enabled:
                fast_evals = int(getattr(evaluator, "fast_evals", 0))
                batch_evals = int(getattr(evaluator, "batch_evals", 0))
                rec.event(
                    "scheduler.result",
                    scheme=self.name,
                    utility=float(utility),
                    evaluations=evaluator.evaluations,
                    fast_evals=fast_evals,
                    batch_evals=batch_evals,
                    batch_rounds=int(getattr(evaluator, "batch_rounds", 0)),
                    batch_commits=int(getattr(evaluator, "batch_commits", 0)),
                    full_evals=evaluator.evaluations - fast_evals - batch_evals,
                    accepted_moves=outcome.accepted_moves,
                    fast_coolings=outcome.fast_coolings,
                    n_offloaded=int(best.n_offloaded()),
                )
            return ScheduleResult(
                decision=best,
                allocation=allocation,
                utility=utility,
                evaluations=evaluator.evaluations,
                wall_time_s=watch.elapsed(),
                trace=list(outcome.best_trace),
                accepted_moves=outcome.accepted_moves,
            )
