"""The atomic computation task ``T_u = <d_u, w_u>`` (Sec. III-A-1).

Each user owns exactly one non-divisible task characterised by the input
data volume ``d_u`` (bits) that must be shipped to the MEC server and the
computational load ``w_u`` (CPU cycles) needed to execute it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Task:
    """An atomic offloadable computation task.

    Attributes
    ----------
    input_bits:
        ``d_u`` — bits of program state/input transferred on offload.
    cycles:
        ``w_u`` — CPU cycles required to complete the task.
    """

    input_bits: float
    cycles: float

    def __post_init__(self) -> None:
        if self.input_bits <= 0:
            raise ConfigurationError(
                f"task input size must be positive, got {self.input_bits}"
            )
        if self.cycles <= 0:
            raise ConfigurationError(
                f"task cycle count must be positive, got {self.cycles}"
            )

    def local_time_s(self, cpu_hz: float) -> float:
        """Completion time ``t_local = w_u / f_local`` on a local CPU."""
        if cpu_hz <= 0:
            raise ConfigurationError(f"CPU frequency must be positive, got {cpu_hz}")
        return self.cycles / cpu_hz

    def local_energy_j(self, cpu_hz: float, kappa: float) -> float:
        """Local execution energy ``E_local = kappa * f_local^2 * w_u`` (Eq. 1)."""
        if cpu_hz <= 0:
            raise ConfigurationError(f"CPU frequency must be positive, got {cpu_hz}")
        if kappa <= 0:
            raise ConfigurationError(f"kappa must be positive, got {kappa}")
        return kappa * cpu_hz**2 * self.cycles
