"""Task, user-device and MEC-server models (Sec. III-A of the paper)."""

from repro.tasks.device import UserDevice
from repro.tasks.profiles import PROFILES, TaskProfile, get_profile, list_profiles, mixed_profile_tasks
from repro.tasks.server import MecServer
from repro.tasks.task import Task
from repro.tasks.workload import (
    WorkloadSpec,
    uniform_population,
    heterogeneous_population,
)

__all__ = [
    "MecServer",
    "PROFILES",
    "Task",
    "TaskProfile",
    "UserDevice",
    "WorkloadSpec",
    "get_profile",
    "heterogeneous_population",
    "list_profiles",
    "mixed_profile_tasks",
    "uniform_population",
]
