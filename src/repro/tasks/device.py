"""The mobile user device model (Sec. III-A-1 and III-A-4).

A device bundles its local CPU, transmit power, energy coefficient and the
QoE preference weights ``beta_time`` / ``beta_energy`` (which must sum to 1)
together with the operator preference ``lambda_u``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tasks.task import Task

#: Tolerance for the ``beta_time + beta_energy == 1`` requirement.
_BETA_SUM_TOL = 1e-9


@dataclass(frozen=True)
class UserDevice:
    """A resource-limited mobile user with one offloadable task.

    Attributes
    ----------
    task:
        The user's atomic computation task ``T_u``.
    cpu_hz:
        Local processing power ``f_u^local`` in cycles/s.
    tx_power_watts:
        Constant uplink transmit power ``p_u``.
    kappa:
        Chip-dependent energy coefficient in ``E = kappa f^2 w`` (Eq. 1).
    beta_time:
        Preference weight for task-completion speed (``beta_u^time``).
    beta_energy:
        Preference weight for energy saving (``beta_u^energy``).
    operator_weight:
        Service-provider preference ``lambda_u`` in (0, 1].
    """

    task: Task
    cpu_hz: float
    tx_power_watts: float
    kappa: float
    beta_time: float = 0.5
    beta_energy: float = 0.5
    operator_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.cpu_hz <= 0:
            raise ConfigurationError(
                f"local CPU frequency must be positive, got {self.cpu_hz}"
            )
        if self.tx_power_watts <= 0:
            raise ConfigurationError(
                f"transmit power must be positive, got {self.tx_power_watts}"
            )
        if self.kappa <= 0:
            raise ConfigurationError(f"kappa must be positive, got {self.kappa}")
        if not (0.0 <= self.beta_time <= 1.0 and 0.0 <= self.beta_energy <= 1.0):
            raise ConfigurationError(
                "preference weights must lie in [0, 1], got "
                f"beta_time={self.beta_time}, beta_energy={self.beta_energy}"
            )
        if abs(self.beta_time + self.beta_energy - 1.0) > _BETA_SUM_TOL:
            raise ConfigurationError(
                "beta_time + beta_energy must equal 1, got "
                f"{self.beta_time} + {self.beta_energy}"
            )
        if not (0.0 < self.operator_weight <= 1.0):
            raise ConfigurationError(
                f"operator weight must lie in (0, 1], got {self.operator_weight}"
            )

    @property
    def local_time_s(self) -> float:
        """``t_u^local`` — local completion time of the user's task."""
        return self.task.local_time_s(self.cpu_hz)

    @property
    def local_energy_j(self) -> float:
        """``E_u^local`` — local execution energy (Eq. 1)."""
        return self.task.local_energy_j(self.cpu_hz, self.kappa)
