"""The MEC server model (Sec. III-A-3).

Each base station hosts one MEC server whose computation rate ``f_s``
(cycles/s) is divided among the users it serves, subject to
``sum_u f_us <= f_s`` (constraint 12f).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MecServer:
    """An edge server co-located with a base station.

    Attributes
    ----------
    cpu_hz:
        Total computation rate ``f_s`` in cycles/s available for sharing
        among the server's offloaded tasks.
    """

    cpu_hz: float

    def __post_init__(self) -> None:
        if self.cpu_hz <= 0:
            raise ConfigurationError(
                f"server CPU frequency must be positive, got {self.cpu_hz}"
            )

    def degraded(self, capacity_fraction: float) -> "MecServer":
        """A copy of this server running at a fraction of its capacity.

        Models partial failures (thermal throttling, overload shedding,
        loss of some cores) used by :mod:`repro.faults`; the fraction
        must keep the capacity strictly positive.
        """
        if not 0.0 < capacity_fraction <= 1.0:
            raise ConfigurationError(
                f"capacity_fraction must lie in (0, 1], got {capacity_fraction}"
            )
        return MecServer(cpu_hz=self.cpu_hz * capacity_fraction)

    def execution_time_s(self, cycles: float, allocated_hz: float) -> float:
        """``t_execute = w_u / f_us`` for an allocated share (Eq. 7)."""
        if allocated_hz <= 0:
            raise ConfigurationError(
                f"allocated CPU share must be positive, got {allocated_hz}"
            )
        if allocated_hz > self.cpu_hz * (1 + 1e-12):
            raise ConfigurationError(
                f"allocated share {allocated_hz} exceeds server capacity {self.cpu_hz}"
            )
        return cycles / allocated_hz
