"""Workload (user population) generators.

The paper's experiments use a homogeneous population — every user has the
same input size, workload, CPU, power and preferences (Sec. V) — but the
model supports full heterogeneity, and Fig. 9 sweeps the preference weights.
These helpers build ``UserDevice`` lists for both styles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.tasks.device import UserDevice
from repro.tasks.task import Task
from repro.sim.rng import make_rng


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameter ranges for a heterogeneous user population.

    Each ``(low, high)`` range is sampled uniformly per user.  Scalars
    can be expressed as ``(v, v)``.
    """

    input_bits: Tuple[float, float]
    cycles: Tuple[float, float]
    cpu_hz: Tuple[float, float]
    tx_power_watts: Tuple[float, float]
    kappa: float
    beta_time: Tuple[float, float] = (0.5, 0.5)
    operator_weight: Tuple[float, float] = (1.0, 1.0)

    def __post_init__(self) -> None:
        for name in (
            "input_bits",
            "cycles",
            "cpu_hz",
            "tx_power_watts",
            "beta_time",
            "operator_weight",
        ):
            low, high = getattr(self, name)
            if low > high:
                raise ConfigurationError(
                    f"{name} range is inverted: ({low}, {high})"
                )


def _sample(rng: np.random.Generator, bounds: Tuple[float, float]) -> float:
    low, high = bounds
    if low == high:
        return float(low)
    return float(rng.uniform(low, high))


def uniform_population(
    n_users: int,
    input_bits: float,
    cycles: float,
    cpu_hz: float,
    tx_power_watts: float,
    kappa: float,
    beta_time: float = 0.5,
    operator_weight: float = 1.0,
) -> List[UserDevice]:
    """Homogeneous population, matching the paper's experimental setup.

    ``beta_energy`` is derived as ``1 - beta_time`` (the paper keeps the
    sum fixed at 1, Sec. V-E).
    """
    if n_users < 0:
        raise ConfigurationError(f"n_users must be non-negative, got {n_users}")
    task = Task(input_bits=input_bits, cycles=cycles)
    return [
        UserDevice(
            task=task,
            cpu_hz=cpu_hz,
            tx_power_watts=tx_power_watts,
            kappa=kappa,
            beta_time=beta_time,
            beta_energy=1.0 - beta_time,
            operator_weight=operator_weight,
        )
        for _ in range(n_users)
    ]


def heterogeneous_population(
    n_users: int,
    spec: WorkloadSpec,
    rng: Optional[np.random.Generator] = None,
) -> List[UserDevice]:
    """Population with per-user parameters sampled from ``spec``."""
    if n_users < 0:
        raise ConfigurationError(f"n_users must be non-negative, got {n_users}")
    rng = rng if rng is not None else make_rng()
    users = []
    for _ in range(n_users):
        beta_time = _sample(rng, spec.beta_time)
        users.append(
            UserDevice(
                task=Task(
                    input_bits=_sample(rng, spec.input_bits),
                    cycles=_sample(rng, spec.cycles),
                ),
                cpu_hz=_sample(rng, spec.cpu_hz),
                tx_power_watts=_sample(rng, spec.tx_power_watts),
                kappa=spec.kappa,
                beta_time=beta_time,
                beta_energy=1.0 - beta_time,
                operator_weight=_sample(rng, spec.operator_weight),
            )
        )
    return users
