"""Named application task profiles from the MEC literature.

The paper motivates MEC with concrete application classes — "traffic
management in smart cities, real-time monitoring in industrial
production, interactive classrooms in remote education, and immersive
virtual reality experiences" (Sec. I) — but evaluates a single synthetic
task shape (420 KB, 1000 Megacycles).  This catalogue provides
representative ``<d_u, w_u>`` pairs for those application classes so
examples and episodic workloads can exercise realistic heterogeneity.

Magnitudes follow the measurement literature the paper builds on
(Miettinen & Nurminen, ref. [38], and the profiling numbers commonly
used in MEC evaluations): interactive apps ship small inputs with
moderate compute; analytics apps ship bulky frames; compute-bound apps
(e.g. model inference) are cycle-heavy relative to their input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.tasks.task import Task
from repro.units import kb_to_bits, megacycles_to_cycles
from repro.sim.rng import make_rng


@dataclass(frozen=True)
class TaskProfile:
    """A named application task class.

    ``input_kb`` / ``megacycles`` are central values; ``spread`` is the
    relative half-width of the uniform draw around them (0.2 = ±20 %).
    """

    name: str
    description: str
    input_kb: float
    megacycles: float
    spread: float = 0.2

    def __post_init__(self) -> None:
        if self.input_kb <= 0 or self.megacycles <= 0:
            raise ConfigurationError(
                f"profile {self.name!r} needs positive input/compute sizes"
            )
        if not 0.0 <= self.spread < 1.0:
            raise ConfigurationError(
                f"profile {self.name!r} spread must lie in [0, 1), got {self.spread}"
            )

    @property
    def intensity_cycles_per_bit(self) -> float:
        """Computational intensity ``w_u / d_u`` — the offloading
        friendliness metric behind the paper's Fig. 5/6 conclusion."""
        return megacycles_to_cycles(self.megacycles) / kb_to_bits(self.input_kb)

    def sample_task(self, rng: Optional[np.random.Generator] = None) -> Task:
        """Draw one task uniformly within the profile's spread."""
        rng = rng if rng is not None else make_rng()
        low, high = 1.0 - self.spread, 1.0 + self.spread
        return Task(
            input_bits=kb_to_bits(self.input_kb) * rng.uniform(low, high),
            cycles=megacycles_to_cycles(self.megacycles) * rng.uniform(low, high),
        )

    def nominal_task(self) -> Task:
        """The profile's central task (no randomness)."""
        return Task(
            input_bits=kb_to_bits(self.input_kb),
            cycles=megacycles_to_cycles(self.megacycles),
        )


#: The built-in catalogue, keyed by profile name.
PROFILES: Dict[str, TaskProfile] = {
    profile.name: profile
    for profile in (
        TaskProfile(
            name="face-recognition",
            description="Single-frame face recognition (compute-bound)",
            input_kb=62.0,
            megacycles=1000.0,
        ),
        TaskProfile(
            name="ar-overlay",
            description="Augmented-reality object overlay per frame",
            input_kb=420.0,
            megacycles=1200.0,
        ),
        TaskProfile(
            name="video-analytics",
            description="HD frame batch for traffic/industrial analytics",
            input_kb=1500.0,
            megacycles=2500.0,
        ),
        TaskProfile(
            name="navigation",
            description="Route re-planning over a compressed map tile",
            input_kb=150.0,
            megacycles=400.0,
        ),
        TaskProfile(
            name="speech-to-text",
            description="A few seconds of audio to transcribe",
            input_kb=250.0,
            megacycles=3000.0,
        ),
        TaskProfile(
            name="health-telemetry",
            description="Wearable sensor window classification (light)",
            input_kb=30.0,
            megacycles=120.0,
        ),
    )
}


def get_profile(name: str) -> TaskProfile:
    """Look up a catalogue profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown task profile {name!r}; available: {', '.join(sorted(PROFILES))}"
        ) from None


def list_profiles() -> List[str]:
    """All catalogue profile names, sorted."""
    return sorted(PROFILES)


def mixed_profile_tasks(
    n_tasks: int,
    rng: Optional[np.random.Generator] = None,
    weights: Optional[Dict[str, float]] = None,
) -> List[Task]:
    """Draw tasks from a (weighted) mix of catalogue profiles.

    ``weights`` maps profile names to non-negative selection weights;
    defaults to uniform over the whole catalogue.
    """
    if n_tasks < 0:
        raise ConfigurationError(f"n_tasks must be non-negative, got {n_tasks}")
    rng = rng if rng is not None else make_rng()
    if weights is None:
        names = list_profiles()
        probabilities = np.full(len(names), 1.0 / len(names))
    else:
        if not weights:
            raise ConfigurationError("weights must not be empty")
        names = sorted(weights)
        raw = np.array([weights[name] for name in names], dtype=float)
        if np.any(raw < 0) or raw.sum() <= 0:
            raise ConfigurationError(
                "weights must be non-negative and sum to a positive value"
            )
        for name in names:
            get_profile(name)  # validates existence
        probabilities = raw / raw.sum()
    choices = rng.choice(len(names), size=n_tasks, p=probabilities)
    return [get_profile(names[int(i)]).sample_task(rng) for i in choices]
