"""Extension experiment — graceful degradation under infrastructure faults.

For each server-outage probability, a TSAJS plan is computed for the
fault-free system, a seeded fault set is drawn (full outages plus fixed
low rates of capacity degradation, sub-band loss and arrival churn), and
the plan is repaired by both degradation policies:

* ``TSAJS+local`` — users on dead slots fall back to local execution,
* ``TSAJS+resched`` — the fallback plan is repaired by a warm-started
  TTSA restricted to the surviving slots.

The reported quantity is **utility retention**: achieved utility on the
faulted system as a fraction of the fault-free plan's utility, averaged
over seeds, plus the mean number of users forced local.  Rescheduling
can only help (the repair anneal starts from the fallback plan), so the
gap between the two rows prices the value of re-optimisation.

The driver is journal-aware: with a :class:`SweepJournal` installed (via
``tsajs run --journal``), every completed (scheme, seed) cell is
checkpointed, and a resumed run recomputes only the missing cells.  The
output contains no wall-clock-derived values, so a resumed run's
persisted output is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.annealing import AnnealingSchedule
from repro.core.degradation import DEGRADATION_POLICIES, degrade
from repro.core.scheduler import TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.persistence import sweep_digest
from repro.experiments.report import ExperimentOutput, format_stat
from repro.faults.inject import apply_faults, faulted_solution_metrics
from repro.faults.models import FaultConfig, draw_faults_for_seed
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SolutionMetrics
from repro.sim.rng import child_rng
from repro.sim.runner import get_default_journal
from repro.sim.scenario import Scenario
from repro.sim.stats import summarize

#: Scheme labels per degradation policy.
SCHEME_NAMES: Dict[str, str] = {
    "local_fallback": "TSAJS+local",
    "reschedule": "TSAJS+resched",
}


@dataclass(frozen=True)
class ExtFaultsSettings:
    """Settings for the fault-injection degradation experiment."""

    outage_probabilities: Sequence[float] = (0.0, 0.1, 0.2, 0.4)
    server_degradation_probability: float = 0.1
    degraded_capacity_fraction: float = 0.25
    band_outage_probability: float = 0.05
    arrival_churn_probability: float = 0.05
    n_users: int = 20
    n_servers: int = 5
    n_subbands: int = 3
    chain_length: int = 40
    min_temperature: float = 1e-3
    repair_chain_length: int = 20
    n_seeds: int = 5

    @classmethod
    def quick(cls) -> "ExtFaultsSettings":
        return cls(
            outage_probabilities=(0.0, 0.4),
            n_users=8,
            n_servers=3,
            n_subbands=2,
            chain_length=10,
            min_temperature=1e-1,
            repair_chain_length=5,
            n_seeds=2,
        )


def _fault_config(settings: ExtFaultsSettings, outage: float) -> FaultConfig:
    return FaultConfig(
        server_outage_probability=outage,
        server_degradation_probability=settings.server_degradation_probability,
        degraded_capacity_fraction=settings.degraded_capacity_fraction,
        band_outage_probability=settings.band_outage_probability,
        arrival_churn_probability=settings.arrival_churn_probability,
    )


def run(settings: ExtFaultsSettings = ExtFaultsSettings()) -> ExperimentOutput:
    """Utility retention per degradation policy across outage rates."""
    seeds = default_seeds(settings.n_seeds)
    journal = get_default_journal()
    planner = TsajsScheduler(
        schedule=AnnealingSchedule(
            chain_length=settings.chain_length,
            min_temperature=settings.min_temperature,
        )
    )
    repair_schedule = AnnealingSchedule(
        chain_length=settings.repair_chain_length,
        min_temperature=settings.min_temperature,
    )
    config = SimulationConfig(
        n_users=settings.n_users,
        n_servers=settings.n_servers,
        n_subbands=settings.n_subbands,
    )
    policies = list(DEGRADATION_POLICIES)
    scheme_names = [SCHEME_NAMES[policy] for policy in policies]

    headers = (
        ["outage prob"]
        + [f"{name} retention" for name in scheme_names]
        + [f"{name} local-fb" for name in scheme_names]
    )
    rows: List[List[str]] = []
    raw: dict = {
        "outage_probabilities": list(settings.outage_probabilities),
        "series": {name: [] for name in scheme_names},
        "fallbacks": {name: [] for name in scheme_names},
        "churned": {name: [] for name in scheme_names},
    }

    for outage in settings.outage_probabilities:
        fault_config = _fault_config(settings, outage)
        digest = sweep_digest(
            config,
            [planner],
            extra={
                "experiment": "ext_faults",
                "faults": fault_config,
                "repair_schedule": repair_schedule,
            },
        )
        samples: Dict[str, List[SolutionMetrics]] = {
            name: [] for name in scheme_names
        }
        for seed in seeds:
            cached: Dict[str, SolutionMetrics] = {}
            if journal is not None:
                for policy in policies:
                    name = SCHEME_NAMES[policy]
                    hit = journal.get(digest, name, seed)
                    if hit is not None:
                        cached[name] = hit
            missing = [
                policy
                for policy in policies
                if SCHEME_NAMES[policy] not in cached
            ]
            if missing:
                scenario = Scenario.build(config, seed=seed)
                plan = planner.schedule(scenario, child_rng(seed, 100))
                faults = draw_faults_for_seed(
                    fault_config,
                    scenario.n_users,
                    scenario.n_servers,
                    scenario.n_subbands,
                    seed,
                )
                faulted = apply_faults(scenario, faults)
                for policy in missing:
                    name = SCHEME_NAMES[policy]
                    plan_degraded = degrade(
                        faulted,
                        plan,
                        faults,
                        policy,
                        rng=child_rng(seed, 200 + policies.index(policy)),
                        schedule=repair_schedule,
                    )
                    metrics = faulted_solution_metrics(
                        faulted,
                        plan_degraded.result,
                        planned_utility=plan_degraded.planned_utility,
                        n_fallback=plan_degraded.n_fallback,
                        n_churned=plan_degraded.n_churned,
                        reschedule_wall_time_s=(
                            plan_degraded.reschedule_wall_time_s
                        ),
                    )
                    cached[name] = metrics
                    if journal is not None:
                        journal.record(digest, name, seed, metrics)
            for name in scheme_names:
                samples[name].append(cached[name])

        row = [f"{outage:.2f}"]
        for name in scheme_names:
            stat = summarize([m.utility_retention for m in samples[name]])
            raw["series"][name].append(stat)
            row.append(format_stat(stat, precision=3))
        for name in scheme_names:
            mean_fallback = summarize(
                [float(m.n_fallback) for m in samples[name]]
            ).mean
            mean_churned = summarize(
                [float(m.n_churned) for m in samples[name]]
            ).mean
            raw["fallbacks"][name].append(mean_fallback)
            raw["churned"][name].append(mean_churned)
            row.append(f"{mean_fallback:.2f}")
        rows.append(row)

    return ExperimentOutput(
        experiment_id="ext_faults",
        title="Extension - graceful degradation under injected faults",
        headers=headers,
        rows=rows,
        raw=raw,
    )
