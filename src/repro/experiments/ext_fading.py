"""Extension experiment — robustness to unaveraged fast fading.

The paper schedules on long-term mean gains, assuming fast fading
averages out (Sec. III-A-2).  This experiment stress-tests that
assumption: TSAJS plans on the mean channel, then the plan's utility is
re-evaluated under many realised fading draws of decreasing channel
hardness (Rician K = 10, 5, 1, then Rayleigh).  The gap between the
planned and the realised mean utility is the price of planning on
averages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.annealing import AnnealingSchedule
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.report import ExperimentOutput, format_stat
from repro.net.fading import RayleighFading, RicianFading, faded_scenario
from repro.sim.config import SimulationConfig
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario
from repro.sim.stats import summarize


@dataclass(frozen=True)
class ExtFadingSettings:
    """Settings for the fading-robustness experiment."""

    k_factors: Sequence[float] = (10.0, 5.0, 1.0)  # + Rayleigh appended
    include_rayleigh: bool = True
    n_users: int = 20
    workload_megacycles: float = 2000.0
    chain_length: int = 30
    min_temperature: float = 1e-4
    n_seeds: int = 3
    n_fading_draws: int = 30

    @classmethod
    def quick(cls) -> "ExtFadingSettings":
        return cls(
            k_factors=(10.0,),
            n_users=10,
            n_seeds=2,
            n_fading_draws=10,
            min_temperature=1e-2,
        )


def run(settings: ExtFadingSettings = ExtFadingSettings()) -> ExperimentOutput:
    """Planned vs realised utility under fading of decreasing hardness."""
    scheduler = TsajsScheduler(
        schedule=AnnealingSchedule(
            chain_length=settings.chain_length,
            min_temperature=settings.min_temperature,
        )
    )
    seeds = default_seeds(settings.n_seeds)

    models = [(f"Rician K={k:g}", RicianFading(k_factor=k)) for k in settings.k_factors]
    if settings.include_rayleigh:
        models.append(("Rayleigh", RayleighFading()))

    headers = ["channel", "planned J", "realised J", "loss %"]
    rows: List[List[str]] = []
    raw: dict = {"models": [name for name, _ in models], "series": {}}

    # One plan per seed on the mean channel; re-evaluated per model.
    plans = []
    for seed in seeds:
        scenario = Scenario.build(
            SimulationConfig(
                n_users=settings.n_users,
                workload_megacycles=settings.workload_megacycles,
            ),
            seed=seed,
        )
        result = scheduler.schedule(scenario, child_rng(seed, 100))
        plans.append((seed, scenario, result))

    planned_stat = summarize([result.utility for _, _, result in plans])

    for name, model in models:
        realised_means = []
        for seed, scenario, result in plans:
            fading_rng = child_rng(seed, 500)
            draws = []
            for _ in range(settings.n_fading_draws):
                realised = faded_scenario(scenario, model, fading_rng)
                evaluator = ObjectiveEvaluator(realised)
                draws.append(evaluator.evaluate(result.decision))
            realised_means.append(float(np.mean(draws)))
        realised_stat = summarize(realised_means)
        loss = 100.0 * (planned_stat.mean - realised_stat.mean) / abs(
            planned_stat.mean
        )
        raw["series"][name] = {
            "planned": planned_stat,
            "realised": realised_stat,
            "loss_percent": loss,
        }
        rows.append(
            [
                name,
                format_stat(planned_stat),
                format_stat(realised_stat),
                f"{loss:+.1f}",
            ]
        )

    return ExperimentOutput(
        experiment_id="ext_fading",
        title="Extension - robustness of mean-channel plans to fast fading",
        headers=headers,
        rows=rows,
        raw=raw,
    )
