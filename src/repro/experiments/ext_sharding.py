"""Extension experiment — utility gap of spatial sharding vs cluster radius.

For each cluster radius, every seed's scenario is solved twice: once by
the global TSAJS annealer and once by the spatially sharded solver
(:class:`~repro.core.sharding.ShardedScheduler`) under that radius.  The
reported quantity is the **relative utility gap**
``(global - sharded) / |global|`` averaged over seeds, next to the mean
cluster count the radius induces — the quality side of the
quality-vs-cost trade the radius knob controls.  The largest radius in
the sweep collapses the partition to a single cluster, where the sharded
solve is bitwise identical to the global one and the gap is exactly
zero, anchoring the table.

The driver is journal-aware: with a :class:`SweepJournal` installed
(via ``tsajs run --journal``) every completed (scheme, seed) cell is
checkpointed and a resumed run recomputes only the missing cells.  The
global solve is radius-independent, so it is journaled once under its
own digest and reused by every radius row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.annealing import AnnealingSchedule
from repro.core.partition import partition_scenario
from repro.core.scheduler import TsajsScheduler
from repro.core.sharding import ShardedScheduler
from repro.experiments.common import default_seeds
from repro.experiments.persistence import sweep_digest
from repro.experiments.report import ExperimentOutput
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SolutionMetrics, solution_metrics
from repro.sim.rng import child_rng
from repro.sim.runner import get_default_journal
from repro.sim.scenario import Scenario
from repro.sim.stats import summarize


@dataclass(frozen=True)
class ExtShardingSettings:
    """Settings for the sharding gap-vs-radius sweep."""

    #: Grid-tile sides to sweep; the last collapses to one cluster.
    cluster_radii_km: Sequence[float] = (0.75, 1.5, 3.0, 1000.0)
    interference_radius_km: float = 1.0
    max_reconcile_rounds: int = 2
    n_users: int = 30
    n_servers: int = 9
    n_subbands: int = 3
    chain_length: int = 40
    min_temperature: float = 1e-3
    n_seeds: int = 5

    @classmethod
    def quick(cls) -> "ExtShardingSettings":
        return cls(
            cluster_radii_km=(1.2, 1000.0),
            n_users=8,
            chain_length=10,
            min_temperature=1e-1,
            n_seeds=2,
        )


def run(settings: ExtShardingSettings = ExtShardingSettings()) -> ExperimentOutput:
    """Relative utility gap and cluster count per cluster radius."""
    seeds = default_seeds(settings.n_seeds)
    journal = get_default_journal()
    schedule = AnnealingSchedule(
        chain_length=settings.chain_length,
        min_temperature=settings.min_temperature,
    )
    config = SimulationConfig(
        n_users=settings.n_users,
        n_servers=settings.n_servers,
        n_subbands=settings.n_subbands,
        interference_radius_km=settings.interference_radius_km,
        max_reconcile_rounds=settings.max_reconcile_rounds,
    )
    planner = TsajsScheduler(schedule=schedule)

    # The global reference is radius-independent: journal it once.
    global_digest = sweep_digest(
        config, [planner], extra={"experiment": "ext_sharding", "role": "global"}
    )
    global_metrics: Dict[int, SolutionMetrics] = {}
    for seed in seeds:
        hit = journal.get(global_digest, "TSAJS", seed) if journal else None
        if hit is None:
            scenario = Scenario.build(config, seed=seed)
            result = planner.schedule(scenario, child_rng(seed, 100))
            hit = solution_metrics(scenario, result)
            if journal is not None:
                journal.record(global_digest, "TSAJS", seed, hit)
        global_metrics[seed] = hit

    headers = [
        "cluster radius (km)",
        "clusters",
        "TSAJS utility",
        "TSAJS-Shard utility",
        "gap (%)",
    ]
    rows: List[List[str]] = []
    raw: dict = {
        "cluster_radii_km": list(settings.cluster_radii_km),
        "interference_radius_km": settings.interference_radius_km,
        "n_clusters": [],
        "global_utility": [],
        "sharded_utility": [],
        "gap_percent": [],
    }

    for radius in settings.cluster_radii_km:
        sharder = ShardedScheduler(
            cluster_radius_km=radius,
            interference_radius_km=settings.interference_radius_km,
            max_reconcile_rounds=settings.max_reconcile_rounds,
            schedule=schedule,
        )
        digest = sweep_digest(
            config,
            [sharder],
            extra={"experiment": "ext_sharding", "role": "sharded"},
        )
        samples: List[SolutionMetrics] = []
        cluster_counts: List[float] = []
        gaps: List[float] = []
        for seed in seeds:
            scenario = Scenario.build(config, seed=seed)
            cluster_counts.append(
                float(
                    partition_scenario(
                        scenario, radius, settings.interference_radius_km
                    ).n_clusters
                )
            )
            hit = journal.get(digest, "TSAJS-Shard", seed) if journal else None
            if hit is None:
                result = sharder.schedule(scenario, child_rng(seed, 100))
                hit = solution_metrics(scenario, result)
                if journal is not None:
                    journal.record(digest, "TSAJS-Shard", seed, hit)
            samples.append(hit)
            reference = global_metrics[seed].system_utility
            gaps.append(
                100.0
                * (reference - hit.system_utility)
                / abs(reference)
            )

        global_stat = summarize(
            [global_metrics[seed].system_utility for seed in seeds]
        )
        shard_stat = summarize([m.system_utility for m in samples])
        gap_stat = summarize(gaps)
        mean_clusters = summarize(cluster_counts).mean
        raw["n_clusters"].append(mean_clusters)
        raw["global_utility"].append(global_stat)
        raw["sharded_utility"].append(shard_stat)
        raw["gap_percent"].append(gap_stat)
        rows.append(
            [
                f"{radius:g}",
                f"{mean_clusters:.1f}",
                f"{global_stat.mean:.4f}",
                f"{shard_stat.mean:.4f}",
                f"{gap_stat.mean:+.2f}",
            ]
        )

    return ExperimentOutput(
        experiment_id="ext_sharding",
        title="Extension - sharded-vs-global utility gap vs cluster radius",
        headers=headers,
        rows=rows,
        raw=raw,
    )
