"""Experiment drivers reproducing every figure of the paper's Sec. V.

Each ``figN_*`` module exposes a ``Settings`` dataclass (paper-scale
defaults plus a ``quick()`` preset for CI/benchmarks) and a ``run``
function returning an :class:`~repro.experiments.report.ExperimentOutput`
whose rows mirror the series plotted in the corresponding figure.

The ``ablation_*`` modules probe the design choices DESIGN.md calls out:
the threshold trigger, the neighbourhood move mix and the cooling rates.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.report import ExperimentOutput, render_text

__all__ = [
    "EXPERIMENTS",
    "ExperimentOutput",
    "get_experiment",
    "list_experiments",
    "render_text",
]
