"""Name-to-scheduler registry for the CLI and user scripts.

Maps the scheme names used throughout the paper (and this library's
extensions) to constructor callables, with a ``quick`` knob for the
annealer-based schemes.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.baselines import (
    AllLocalScheduler,
    ExhaustiveScheduler,
    GeneticScheduler,
    GreedyScheduler,
    HJtoraScheduler,
    LocalSearchScheduler,
    RandomScheduler,
)
from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import Scheduler, TsajsScheduler
from repro.errors import ConfigurationError
from repro.extensions.power_control import TsajsWithPowerControl

#: Stop temperature used by annealer-based schemes in quick mode.
QUICK_MIN_TEMPERATURE = 1e-2


def _annealing(quick: bool) -> AnnealingSchedule:
    return AnnealingSchedule(
        min_temperature=QUICK_MIN_TEMPERATURE if quick else 1e-9
    )


#: Scheme name -> factory taking the quick flag.
SCHEME_FACTORIES: Dict[str, Callable[[bool], Scheduler]] = {
    "TSAJS": lambda quick: TsajsScheduler(schedule=_annealing(quick)),
    "hJTORA": lambda quick: HJtoraScheduler(),
    "LocalSearch": lambda quick: LocalSearchScheduler(),
    "Greedy": lambda quick: GreedyScheduler(),
    "Exhaustive": lambda quick: ExhaustiveScheduler(),
    "GA": lambda quick: GeneticScheduler(
        generations=20 if quick else 80
    ),
    "TSAJS-PC": lambda quick: TsajsWithPowerControl(schedule=_annealing(quick)),
    "AllLocal": lambda quick: AllLocalScheduler(),
    "Random": lambda quick: RandomScheduler(samples=10),
}


def available_schemes() -> List[str]:
    """All registered scheme names, in display order."""
    return list(SCHEME_FACTORIES.keys())


def build_schemes(names: List[str], quick: bool = False) -> List[Scheduler]:
    """Instantiate schedulers for the given scheme names.

    Raises :class:`ConfigurationError` for unknown or duplicate names.
    """
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scheme names: {names}")
    schedulers = []
    for name in names:
        try:
            factory = SCHEME_FACTORIES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
            ) from None
        schedulers.append(factory(quick))
    return schedulers
