"""Name-to-scheduler registry for the CLI and user scripts.

Maps the scheme names used throughout the paper (and this library's
extensions) to constructor callables, with a ``quick`` knob for the
annealer-based schemes and ``use_delta`` / ``use_batch`` knobs selecting
the incremental or vectorized (both bitwise-equal) evaluation paths for
the TSAJS variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.baselines import (
    AllLocalScheduler,
    ExhaustiveScheduler,
    GeneticScheduler,
    GreedyScheduler,
    HJtoraScheduler,
    LocalSearchScheduler,
    RandomScheduler,
)
from repro.core.annealing import AnnealingSchedule
from repro.core.batch import ParallelTemperingScheduler
from repro.core.scheduler import Scheduler, TsajsScheduler
from repro.core.sharding import ShardedScheduler
from repro.errors import ConfigurationError
from repro.extensions.power_control import TsajsWithPowerControl

#: Stop temperature used by annealer-based schemes in quick mode.
QUICK_MIN_TEMPERATURE = 1e-2


@dataclass(frozen=True)
class SchemeOptions:
    """Construction knobs shared by every scheme factory.

    ``quick`` shortens the annealing schedule; ``use_delta`` and
    ``use_batch`` pick the incremental or vectorized evaluation path for
    the TSAJS variants (both bitwise-equal to the scalar path, and
    mutually exclusive); ``batch_size`` sizes the speculative batches of
    the vectorized path and the parallel-tempering scheme.  Baselines
    without an annealer inner loop ignore the evaluation knobs.

    ``use_sharding`` swaps the TSAJS factory for the spatially sharded
    solver (``TSAJS-Shard`` always builds it); ``cluster_radius_km``,
    ``interference_radius_km`` and ``max_reconcile_rounds`` forward to
    :class:`~repro.core.sharding.ShardedScheduler`.
    """

    quick: bool = False
    use_delta: bool = False
    use_batch: bool = False
    batch_size: int = 64
    use_sharding: bool = False
    cluster_radius_km: float = 2.0
    interference_radius_km: Optional[float] = None
    max_reconcile_rounds: int = 2

    def __post_init__(self) -> None:
        if self.use_delta and self.use_batch:
            raise ConfigurationError(
                "use_delta and use_batch are mutually exclusive"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )


def _annealing(quick: bool) -> AnnealingSchedule:
    return AnnealingSchedule(
        min_temperature=QUICK_MIN_TEMPERATURE if quick else 1e-9
    )


def _sharded(opts: SchemeOptions) -> ShardedScheduler:
    return ShardedScheduler(
        cluster_radius_km=opts.cluster_radius_km,
        interference_radius_km=opts.interference_radius_km,
        max_reconcile_rounds=opts.max_reconcile_rounds,
        schedule=_annealing(opts.quick),
        use_delta=opts.use_delta,
        use_batch=opts.use_batch,
        batch_size=opts.batch_size,
    )


#: Scheme name -> factory taking a :class:`SchemeOptions`.
SCHEME_FACTORIES: Dict[str, Callable[[SchemeOptions], Scheduler]] = {
    "TSAJS": lambda opts: _sharded(opts)
    if opts.use_sharding
    else TsajsScheduler(
        schedule=_annealing(opts.quick),
        use_delta=opts.use_delta,
        use_batch=opts.use_batch,
        batch_size=opts.batch_size,
    ),
    "TSAJS-Shard": _sharded,
    "TSAJS-PT": lambda opts: ParallelTemperingScheduler(
        schedule=_annealing(opts.quick), batch_size=opts.batch_size
    ),
    "hJTORA": lambda opts: HJtoraScheduler(),
    "LocalSearch": lambda opts: LocalSearchScheduler(),
    "Greedy": lambda opts: GreedyScheduler(),
    "Exhaustive": lambda opts: ExhaustiveScheduler(),
    "GA": lambda opts: GeneticScheduler(generations=20 if opts.quick else 80),
    "TSAJS-PC": lambda opts: TsajsWithPowerControl(
        schedule=_annealing(opts.quick),
        use_delta=opts.use_delta,
        use_batch=opts.use_batch,
        batch_size=opts.batch_size,
    ),
    "AllLocal": lambda opts: AllLocalScheduler(),
    "Random": lambda opts: RandomScheduler(samples=10),
}


def available_schemes() -> List[str]:
    """All registered scheme names, in display order."""
    return list(SCHEME_FACTORIES.keys())


def build_schemes(
    names: List[str],
    quick: bool = False,
    use_delta: bool = False,
    use_batch: bool = False,
    batch_size: int = 64,
    use_sharding: bool = False,
    cluster_radius_km: float = 2.0,
    interference_radius_km: Optional[float] = None,
    max_reconcile_rounds: int = 2,
) -> List[Scheduler]:
    """Instantiate schedulers for the given scheme names.

    Raises :class:`ConfigurationError` for unknown or duplicate names.
    """
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scheme names: {names}")
    opts = SchemeOptions(
        quick=quick,
        use_delta=use_delta,
        use_batch=use_batch,
        batch_size=batch_size,
        use_sharding=use_sharding,
        cluster_radius_km=cluster_radius_km,
        interference_radius_km=interference_radius_km,
        max_reconcile_rounds=max_reconcile_rounds,
    )
    schedulers = []
    for name in names:
        try:
            factory = SCHEME_FACTORIES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
            ) from None
        schedulers.append(factory(opts))
    return schedulers
