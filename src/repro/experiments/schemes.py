"""Name-to-scheduler registry for the CLI and user scripts.

Maps the scheme names used throughout the paper (and this library's
extensions) to constructor callables, with a ``quick`` knob for the
annealer-based schemes and a ``use_delta`` knob selecting the
incremental (bitwise-equal) evaluation path for the TSAJS variants.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.baselines import (
    AllLocalScheduler,
    ExhaustiveScheduler,
    GeneticScheduler,
    GreedyScheduler,
    HJtoraScheduler,
    LocalSearchScheduler,
    RandomScheduler,
)
from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import Scheduler, TsajsScheduler
from repro.errors import ConfigurationError
from repro.extensions.power_control import TsajsWithPowerControl

#: Stop temperature used by annealer-based schemes in quick mode.
QUICK_MIN_TEMPERATURE = 1e-2


def _annealing(quick: bool) -> AnnealingSchedule:
    return AnnealingSchedule(
        min_temperature=QUICK_MIN_TEMPERATURE if quick else 1e-9
    )


#: Scheme name -> factory taking the (quick, use_delta) flags.  The
#: non-annealing baselines ignore use_delta (they have no inner loop the
#: delta evaluator accelerates).
SCHEME_FACTORIES: Dict[str, Callable[[bool, bool], Scheduler]] = {
    "TSAJS": lambda quick, use_delta=False: TsajsScheduler(
        schedule=_annealing(quick), use_delta=use_delta
    ),
    "hJTORA": lambda quick, use_delta=False: HJtoraScheduler(),
    "LocalSearch": lambda quick, use_delta=False: LocalSearchScheduler(),
    "Greedy": lambda quick, use_delta=False: GreedyScheduler(),
    "Exhaustive": lambda quick, use_delta=False: ExhaustiveScheduler(),
    "GA": lambda quick, use_delta=False: GeneticScheduler(
        generations=20 if quick else 80
    ),
    "TSAJS-PC": lambda quick, use_delta=False: TsajsWithPowerControl(
        schedule=_annealing(quick), use_delta=use_delta
    ),
    "AllLocal": lambda quick, use_delta=False: AllLocalScheduler(),
    "Random": lambda quick, use_delta=False: RandomScheduler(samples=10),
}


def available_schemes() -> List[str]:
    """All registered scheme names, in display order."""
    return list(SCHEME_FACTORIES.keys())


def build_schemes(
    names: List[str], quick: bool = False, use_delta: bool = False
) -> List[Scheduler]:
    """Instantiate schedulers for the given scheme names.

    Raises :class:`ConfigurationError` for unknown or duplicate names.
    """
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scheme names: {names}")
    schedulers = []
    for name in names:
        try:
            factory = SCHEME_FACTORIES[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown scheme {name!r}; available: {', '.join(available_schemes())}"
            ) from None
        schedulers.append(factory(quick, use_delta))
    return schedulers
