"""Extension experiment — how much utility does power control add?

The paper fixes every uplink at 10 dBm.  This experiment quantifies what
that assumption costs: for each user count it runs plain TSAJS, TSAJS
plus one best-response power pass, and the full alternation
(:class:`TsajsWithPowerControl`), and reports the mean system utility of
each stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.report import ExperimentOutput, format_stat
from repro.extensions.power_control import TsajsWithPowerControl, optimize_powers
from repro.sim.config import SimulationConfig
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario
from repro.sim.stats import summarize


@dataclass(frozen=True)
class ExtPowerControlSettings:
    """Settings for the power-control extension experiment."""

    user_counts: Sequence[int] = (10, 20, 40)
    workload_megacycles: float = 2000.0
    chain_length: int = 30
    min_temperature: float = 1e-4
    n_seeds: int = 5
    p_min_watts: float = 1e-3
    p_max_watts: float = 0.1

    @classmethod
    def quick(cls) -> "ExtPowerControlSettings":
        return cls(user_counts=(10,), n_seeds=2, min_temperature=1e-2)


def run(
    settings: ExtPowerControlSettings = ExtPowerControlSettings(),
) -> ExperimentOutput:
    """Mean utility of TSAJS, TSAJS+power pass, and full alternation."""
    schedule = AnnealingSchedule(
        chain_length=settings.chain_length,
        min_temperature=settings.min_temperature,
    )
    seeds = default_seeds(settings.n_seeds)

    headers = ["users", "TSAJS", "TSAJS+power", "alternating", "gain %"]
    rows: List[List[str]] = []
    raw: dict = {"user_counts": list(settings.user_counts), "series": {}}
    for n_users in settings.user_counts:
        base_values = []
        power_values = []
        joint_values = []
        for seed in seeds:
            scenario = Scenario.build(
                SimulationConfig(
                    n_users=n_users,
                    workload_megacycles=settings.workload_megacycles,
                ),
                seed=seed,
            )
            base = TsajsScheduler(schedule=schedule).schedule(
                scenario, child_rng(seed, 100)
            )
            base_values.append(base.utility)
            control = optimize_powers(
                scenario,
                base.decision,
                p_min_watts=settings.p_min_watts,
                p_max_watts=settings.p_max_watts,
            )
            power_values.append(control.utility_after)
            joint = TsajsWithPowerControl(
                schedule=schedule,
                rounds=2,
                p_min_watts=settings.p_min_watts,
                p_max_watts=settings.p_max_watts,
            ).schedule_joint(scenario, child_rng(seed, 200))
            joint_values.append(joint.result.utility)

        base_stat = summarize(base_values)
        power_stat = summarize(power_values)
        joint_stat = summarize(joint_values)
        gain = 100.0 * (joint_stat.mean - base_stat.mean) / abs(base_stat.mean)
        raw["series"][n_users] = {
            "base": base_stat,
            "power": power_stat,
            "joint": joint_stat,
            "gain_percent": gain,
        }
        rows.append(
            [
                str(n_users),
                format_stat(base_stat),
                format_stat(power_stat),
                format_stat(joint_stat),
                f"{gain:+.1f}",
            ]
        )

    return ExperimentOutput(
        experiment_id="ext_power_control",
        title="Extension - utility gain from uplink power control",
        headers=headers,
        rows=rows,
        raw=raw,
    )
