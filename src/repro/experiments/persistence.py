"""JSON persistence for experiment outputs.

Experiment results carry :class:`~repro.sim.stats.SummaryStats` values
nested inside their ``raw`` payload; this module round-trips the whole
:class:`~repro.experiments.report.ExperimentOutput` through JSON so runs
can be archived, diffed across commits, and re-rendered without re-running
the (potentially hours-long) sweeps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.errors import ConfigurationError
from repro.experiments.report import ExperimentOutput
from repro.sim.stats import SummaryStats

#: Tag marking an encoded SummaryStats object inside the JSON tree.
_STATS_TAG = "__summary_stats__"

#: Schema version written into every file (bump on format changes).
FORMAT_VERSION = 1


def _encode(value: Any) -> Any:
    """Recursively convert raw payloads into JSON-compatible values."""
    if isinstance(value, SummaryStats):
        return {
            _STATS_TAG: {
                "mean": value.mean,
                "std": value.std,
                "ci_halfwidth": value.ci_halfwidth,
                "n": value.n,
                "confidence": value.confidence,
            }
        }
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigurationError(
        f"cannot serialize value of type {type(value).__name__} to JSON"
    )


def _decode(value: Any) -> Any:
    """Inverse of :func:`_encode`."""
    if isinstance(value, dict):
        if set(value.keys()) == {_STATS_TAG}:
            fields = value[_STATS_TAG]
            return SummaryStats(
                mean=float(fields["mean"]),
                std=float(fields["std"]),
                ci_halfwidth=float(fields["ci_halfwidth"]),
                n=int(fields["n"]),
                confidence=float(fields["confidence"]),
            )
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def output_to_dict(output: ExperimentOutput) -> dict:
    """Plain-dict representation of an :class:`ExperimentOutput`."""
    return {
        "format_version": FORMAT_VERSION,
        "experiment_id": output.experiment_id,
        "title": output.title,
        "headers": list(output.headers),
        "rows": [list(row) for row in output.rows],
        "raw": _encode(output.raw),
    }


def output_from_dict(payload: dict) -> ExperimentOutput:
    """Rebuild an :class:`ExperimentOutput` from :func:`output_to_dict`."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported experiment-output format version: {version!r}"
        )
    return ExperimentOutput(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        headers=list(payload["headers"]),
        rows=[list(row) for row in payload["rows"]],
        raw=_decode(payload["raw"]),
    )


def save_output(output: ExperimentOutput, path: Union[str, Path]) -> None:
    """Write an experiment output to ``path`` as indented JSON."""
    path = Path(path)
    path.write_text(json.dumps(output_to_dict(output), indent=2) + "\n")


def load_output(path: Union[str, Path]) -> ExperimentOutput:
    """Read an experiment output previously written by :func:`save_output`."""
    payload = json.loads(Path(path).read_text())
    return output_from_dict(payload)
