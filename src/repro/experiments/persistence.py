"""JSON persistence for experiment outputs and crash-safe sweep journals.

Experiment results carry :class:`~repro.sim.stats.SummaryStats` (and,
since format version 2, :class:`~repro.sim.metrics.SolutionMetrics`)
values nested inside their ``raw`` payload; this module round-trips the
whole :class:`~repro.experiments.report.ExperimentOutput` through JSON so
runs can be archived, diffed across commits, and re-rendered without
re-running the (potentially hours-long) sweeps.

The :class:`SweepJournal` adds the crash-safety half: every completed
(scheme, seed) cell is appended to a JSON-lines file and fsynced the
moment it is computed, so a sweep killed at any point — a worker SIGKILL,
a driver crash, a power cut — resumes by re-running only the missing
cells.  JSON round-trips floats exactly (``repr``-based), so a resumed
sweep's persisted output is byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.atomicio import atomic_write_text
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.experiments.report import ExperimentOutput
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SolutionMetrics
from repro.sim.stats import SummaryStats

#: Tag marking an encoded SummaryStats object inside the JSON tree.
_STATS_TAG = "__summary_stats__"

#: Tag marking an encoded SolutionMetrics object inside the JSON tree.
_METRICS_TAG = "__solution_metrics__"

#: Schema version written into every file (bump on format changes).
#: v1: SummaryStats tagging only.
#: v2: adds SolutionMetrics tagging and the sweep-journal line format.
#: v3: every sweep-journal line carries the writing build's code
#:     fingerprint, so stale checkpoints are rejected instead of being
#:     silently mixed into a resumed sweep.
FORMAT_VERSION = 3


def _encode(value: Any) -> Any:
    """Recursively convert raw payloads into JSON-compatible values."""
    if isinstance(value, SummaryStats):
        return {
            _STATS_TAG: {
                "mean": value.mean,
                "std": value.std,
                "ci_halfwidth": value.ci_halfwidth,
                "n": value.n,
                "confidence": value.confidence,
            }
        }
    if isinstance(value, SolutionMetrics):
        return {_METRICS_TAG: dataclasses.asdict(value)}
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise ConfigurationError(
        f"cannot serialize value of type {type(value).__name__} to JSON"
    )


def _decode(value: Any) -> Any:
    """Inverse of :func:`_encode`."""
    if isinstance(value, dict):
        if set(value.keys()) == {_STATS_TAG}:
            fields = value[_STATS_TAG]
            return SummaryStats(
                mean=float(fields["mean"]),
                std=float(fields["std"]),
                ci_halfwidth=float(fields["ci_halfwidth"]),
                n=int(fields["n"]),
                confidence=float(fields["confidence"]),
            )
        if set(value.keys()) == {_METRICS_TAG}:
            return _metrics_from_dict(value[_METRICS_TAG])
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def _metrics_from_dict(fields: Dict[str, Any]) -> SolutionMetrics:
    known = {f.name for f in dataclasses.fields(SolutionMetrics)}
    unknown = sorted(set(fields) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown SolutionMetrics fields in payload: {', '.join(unknown)}"
        )
    return SolutionMetrics(**fields)


def output_to_dict(output: ExperimentOutput) -> dict:
    """Plain-dict representation of an :class:`ExperimentOutput`."""
    return {
        "format_version": FORMAT_VERSION,
        "experiment_id": output.experiment_id,
        "title": output.title,
        "headers": list(output.headers),
        "rows": [list(row) for row in output.rows],
        "raw": _encode(output.raw),
    }


def _check_version(payload: dict, what: str) -> None:
    if "format_version" not in payload:
        raise ConfigurationError(
            f"{what} has no 'format_version' field; not a file written by "
            "repro.experiments.persistence (or it predates versioning)"
        )
    version = payload["format_version"]
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported {what} format version: {version!r} "
            f"(this build reads version {FORMAT_VERSION}; re-run the sweep "
            "or load the file with a matching checkout)"
        )


def output_from_dict(payload: dict) -> ExperimentOutput:
    """Rebuild an :class:`ExperimentOutput` from :func:`output_to_dict`.

    Rejects payloads whose ``format_version`` is missing or differs from
    :data:`FORMAT_VERSION` with a descriptive
    :class:`~repro.errors.ConfigurationError` — silently reading a stale
    or foreign file would corrupt cross-commit comparisons.
    """
    _check_version(payload, "experiment-output")
    return ExperimentOutput(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        headers=list(payload["headers"]),
        rows=[list(row) for row in payload["rows"]],
        raw=_decode(payload["raw"]),
    )


def save_output(output: ExperimentOutput, path: Union[str, Path]) -> None:
    """Write an experiment output to ``path`` as indented JSON.

    The write is crash-safe (tmp + fsync + atomic rename via
    :mod:`repro.atomicio`): a reader never observes a torn file, and a
    crash mid-save leaves any previous version intact.
    """
    atomic_write_text(
        Path(path), json.dumps(output_to_dict(output), indent=2) + "\n"
    )


def load_output(path: Union[str, Path]) -> ExperimentOutput:
    """Read an experiment output previously written by :func:`save_output`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"{path} does not contain a JSON object "
            f"(got {type(payload).__name__})"
        )
    return output_from_dict(payload)


# --- Sweep fingerprints -----------------------------------------------------


def _fingerprint(value: Any) -> Any:
    """JSON-stable structural fingerprint of configs and schedulers.

    Dataclasses flatten to ``{type, fields...}``; arbitrary objects (the
    scheduler instances) flatten to their type plus instance ``__dict__``;
    callables and classes reduce to their qualified name.  Two sweeps
    share a journal digest only when their configs *and* scheme
    construction parameters match, so e.g. two ``fig4`` points differing
    only in chain length never collide.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _fingerprint(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.init
        }
        return {"__type__": type(value).__qualname__, **fields}
    if isinstance(value, dict):
        return {str(key): _fingerprint(item) for key, item in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_fingerprint(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, type) or callable(value):
        module = getattr(value, "__module__", "")
        qualname = getattr(value, "__qualname__", type(value).__qualname__)
        return f"{module}.{qualname}"
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {
            "__type__": type(value).__qualname__,
            **{
                str(key): _fingerprint(item)
                for key, item in sorted(state.items())
            },
        }
    return repr(value)


def sweep_digest(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Stable hex digest identifying one (config, schemes) sweep cell set.

    ``extra`` folds driver-specific knobs (fault rates, policies, sweep
    settings) into the digest so one journal file can safely back many
    experiment points.
    """
    payload = {
        "config": _fingerprint(config),
        "schedulers": [_fingerprint(s) for s in schedulers],
        "extra": _fingerprint(extra) if extra else None,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


#: Memoized :func:`code_fingerprint` value (stable for a process's lifetime).
_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Short hex digest of the *implementation contract* of this build.

    Hashes the checked-in equation/algorithm registries and the lint
    rule set (ids + titles + required-citation map) — the project's
    machine-readable statement of which formulas the code implements and
    which invariants it enforces.  When any of those change, previously
    persisted per-seed metrics may no longer be reproducible, so cache
    entries and journal checkpoints stamp this fingerprint and refuse to
    serve results written under a different one.

    The registries are imported lazily (the lint package is otherwise
    never needed at sweep time) and the digest memoized: registries are
    module-level constants, so the fingerprint cannot change within a
    process.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        from repro.lint.equations import (
            ALGORITHMS,
            EQUATIONS,
            REQUIRED_CITATIONS,
        )
        from repro.lint.registry import all_rules

        payload = {
            "equations": EQUATIONS,
            "algorithms": ALGORITHMS,
            "required_citations": {
                module: {
                    function: list(citations)
                    for function, citations in sorted(functions.items())
                }
                for module, functions in sorted(REQUIRED_CITATIONS.items())
            },
            "rules": [[rule.rule_id, rule.title] for rule in all_rules()],
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        _CODE_FINGERPRINT = hashlib.sha256(
            canonical.encode("utf-8")
        ).hexdigest()[:16]
    return _CODE_FINGERPRINT


# --- Crash-safe sweep journal -----------------------------------------------


class SweepJournal:
    """Append-per-seed JSON-lines checkpoint store for sweeps.

    Every record is one completed (sweep digest, scheme, seed) cell with
    its full :class:`~repro.sim.metrics.SolutionMetrics`, flushed and
    fsynced before the runner moves on — a killed run loses at most the
    seeds in flight.  Opening with ``resume=True`` loads every intact
    record (a torn final line from a mid-write crash is skipped; any
    *intact* line that is not a valid record is rejected) and the runner
    then re-runs only the missing cells.  Every line is stamped with the
    writing build's :func:`code_fingerprint`; resuming over a journal
    written under a different fingerprint is rejected with an error
    pointing at ``--no-resume``, because metrics persisted by different
    equations/rules cannot be trusted to reproduce.  Opening with
    ``resume=False`` truncates the file and starts fresh.

    Satisfies the :class:`repro.sim.runner.SeedJournal` protocol, and
    exposes the digest-level :meth:`get` / :meth:`record` for drivers
    (e.g. ``ext_faults``) whose cells are not plain (config, scheduler)
    pairs.
    """

    def __init__(self, path: Union[str, Path], resume: bool = False) -> None:
        self.path = Path(path)
        self._cache: Dict[Tuple[str, str, int], SolutionMetrics] = {}
        if resume and self.path.exists():
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text("")

    def __len__(self) -> int:
        return len(self._cache)

    def _load(self) -> None:
        lines = self.path.read_text().splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    # Torn final line: the writer died mid-append.  The
                    # cell was never acknowledged, so dropping it is safe.
                    continue
                raise ConfigurationError(
                    f"{self.path}:{index + 1}: corrupt journal line "
                    "(not valid JSON and not the final line)"
                ) from None
            _check_version(payload, "sweep-journal")
            code = payload.get("code")
            if code != code_fingerprint():
                raise ConfigurationError(
                    f"{self.path}:{index + 1}: journal entry was written "
                    f"under code fingerprint {code!r} but this build is "
                    f"{code_fingerprint()!r} — the equation/rule registries "
                    "changed since the checkpoint, so its metrics may not "
                    "reproduce.  Re-run with --no-resume to discard the "
                    "stale journal and recompute."
                )
            try:
                key = (
                    str(payload["digest"]),
                    str(payload["scheme"]),
                    int(payload["seed"]),
                )
                metrics = _metrics_from_dict(payload["metrics"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"{self.path}:{index + 1}: malformed journal record "
                    f"({exc})"
                ) from None
            self._cache[key] = metrics

    # --- digest-level API ---------------------------------------------------

    def get(self, digest: str, scheme: str, seed: int) -> Optional[SolutionMetrics]:
        """The cached metrics for one cell, or ``None``."""
        return self._cache.get((digest, scheme, seed))

    def record(
        self, digest: str, scheme: str, seed: int, metrics: SolutionMetrics
    ) -> None:
        """Durably append one completed cell (flush + fsync)."""
        line = json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "code": code_fingerprint(),
                "digest": digest,
                "scheme": scheme,
                "seed": seed,
                "metrics": dataclasses.asdict(metrics),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._cache[(digest, scheme, seed)] = metrics

    # --- SeedJournal protocol (used by repro.sim.runner) --------------------

    def lookup_seed(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        seed: int,
    ) -> Optional[List[SolutionMetrics]]:
        """Per-scheme metrics for a completed seed, or ``None`` if any
        scheme's cell is missing."""
        digest = sweep_digest(config, schedulers)
        out: List[SolutionMetrics] = []
        for scheduler in schedulers:
            metrics = self.get(digest, scheduler.name, seed)
            if metrics is None:
                return None
            out.append(metrics)
        return out

    def record_seed(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        seed: int,
        metrics: Sequence[SolutionMetrics],
    ) -> None:
        """Record every scheme's metrics for one completed seed."""
        digest = sweep_digest(config, schedulers)
        for scheduler, entry in zip(schedulers, metrics):
            self.record(digest, scheduler.name, seed, entry)
