"""Extension experiment — sensitivity to the result-return (downlink) size.

The core model drops the downlink leg "due to the small amount of output
data" (Sec. III-A-2).  This experiment sweeps the output-to-input ratio
and schedules with the downlink-aware evaluator, reporting how the
achievable utility and the offload count erode as results get bulkier —
i.e. where the paper's simplification stops being harmless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.report import ExperimentOutput, format_stat
from repro.extensions.downlink import DownlinkAwareEvaluator, DownlinkModel
from repro.sim.config import SimulationConfig
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario
from repro.sim.stats import summarize


@dataclass(frozen=True)
class ExtDownlinkSettings:
    """Settings for the downlink-sensitivity experiment."""

    output_fractions: Sequence[float] = (0.01, 0.1, 0.5, 1.0, 2.0)
    n_users: int = 20
    workload_megacycles: float = 2000.0
    bs_tx_power_dbm: float = 46.0
    chain_length: int = 30
    min_temperature: float = 1e-4
    n_seeds: int = 5

    @classmethod
    def quick(cls) -> "ExtDownlinkSettings":
        return cls(
            output_fractions=(0.01, 2.0),
            n_users=10,
            n_seeds=2,
            min_temperature=1e-2,
        )


def run(settings: ExtDownlinkSettings = ExtDownlinkSettings()) -> ExperimentOutput:
    """Utility and offload count vs the output-to-input size ratio."""
    schedule = AnnealingSchedule(
        chain_length=settings.chain_length,
        min_temperature=settings.min_temperature,
    )
    seeds = default_seeds(settings.n_seeds)

    headers = ["output/input", "utility", "offloaded users"]
    rows: List[List[str]] = []
    raw: dict = {
        "output_fractions": list(settings.output_fractions),
        "utility": [],
        "offloaded": [],
    }
    for fraction in settings.output_fractions:
        model = DownlinkModel(
            bs_tx_power_dbm=settings.bs_tx_power_dbm,
            output_fraction=fraction,
        )
        scheduler = TsajsScheduler(
            schedule=schedule,
            evaluator_factory=lambda s, model=model: DownlinkAwareEvaluator(s, model),
        )
        utilities = []
        offloaded = []
        for seed in seeds:
            scenario = Scenario.build(
                SimulationConfig(
                    n_users=settings.n_users,
                    workload_megacycles=settings.workload_megacycles,
                ),
                seed=seed,
            )
            result = scheduler.schedule(scenario, child_rng(seed, 100))
            utilities.append(result.utility)
            offloaded.append(float(result.decision.n_offloaded()))
        utility_stat = summarize(utilities)
        offload_stat = summarize(offloaded)
        raw["utility"].append(utility_stat)
        raw["offloaded"].append(offload_stat)
        rows.append(
            [
                f"{fraction:.2f}",
                format_stat(utility_stat),
                format_stat(offload_stat, precision=1),
            ]
        )

    return ExperimentOutput(
        experiment_id="ext_downlink",
        title="Extension - downlink-aware scheduling vs output size",
        headers=headers,
        rows=rows,
        raw=raw,
    )
