"""Fig. 4 — system utility versus the number of users.

Six panels: workloads w in {1000, 2000, 3000} Megacycles crossed with
annealer chain lengths L in {10, 30}, each sweeping the user count on the
default 9-cell / 3-sub-band network.

Expected shape: utility first rises with the user base, then saturates or
declines once users contend for the S*N = 27 slots and the per-user
bandwidth; TSAJS stays on top, and with L = 30 it keeps growing where the
baselines flatten ("the TSAJS strategy still achieves continuous growth in
system utility, thanks to its ability to explore better solutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import default_seeds, standard_schedulers
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes


@dataclass(frozen=True)
class Fig4Settings:
    """Sweep settings; defaults follow the paper's six panels."""

    user_counts: Sequence[int] = (10, 30, 50, 70, 90)
    workloads_megacycles: Sequence[float] = (1000.0, 2000.0, 3000.0)
    chain_lengths: Sequence[int] = (10, 30)
    n_seeds: int = 5
    min_temperature: float = 1e-9

    @classmethod
    def quick(cls) -> "Fig4Settings":
        return cls(
            user_counts=(10, 30),
            workloads_megacycles=(1000.0,),
            chain_lengths=(10,),
            n_seeds=2,
            min_temperature=1e-2,
        )


def run(settings: Fig4Settings = Fig4Settings()) -> ExperimentOutput:
    """Average system utility per scheme over user-count sweeps."""
    seeds = default_seeds(settings.n_seeds)
    headers = ["w [Mc]", "L", "users"]
    rows: List[List[str]] = []
    raw: dict = {"panels": []}

    names = None
    for workload in settings.workloads_megacycles:
        for chain_length in settings.chain_lengths:
            schedulers = standard_schedulers(
                chain_length=chain_length,
                min_temperature=settings.min_temperature,
            )
            if names is None:
                names = [s.name for s in schedulers]
                headers = headers + names
            panel = {
                "workload": workload,
                "chain_length": chain_length,
                "user_counts": list(settings.user_counts),
                "series": {n: [] for n in names},
            }
            for n_users in settings.user_counts:
                config = SimulationConfig(
                    n_users=n_users, workload_megacycles=workload
                )
                result = run_schemes(config, schedulers, seeds)
                row = [f"{workload:.0f}", str(chain_length), str(n_users)]
                for name in names:
                    stat = result.utility_summary(name)
                    row.append(format_stat(stat, precision=3))
                    panel["series"][name].append(stat)
                rows.append(row)
            raw["panels"].append(panel)

    return ExperimentOutput(
        experiment_id="fig4",
        title="Fig. 4 - Average system utility vs user count (S=9, N=3)",
        headers=headers,
        rows=rows,
        raw=raw,
    )
