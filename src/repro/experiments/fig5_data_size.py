"""Fig. 5 — system utility versus the task input size.

Sweeps the task input data size ``d_u`` around the paper's default of
420 KB on the default network.

Expected shape: "as the task input size gradually increases, the average
system utility of various schemes exhibits a decreasing trend" — the
upload cost grows linearly with ``d_u`` while the offload gain is fixed,
so larger inputs erode the benefit for every scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import default_seeds, standard_schedulers
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes


@dataclass(frozen=True)
class Fig5Settings:
    """Sweep settings for the data-size figure."""

    data_sizes_kb: Sequence[float] = (100.0, 250.0, 420.0, 600.0, 800.0, 1000.0)
    n_users: int = 30
    workload_megacycles: float = 1000.0
    chain_length: int = 30
    n_seeds: int = 5
    min_temperature: float = 1e-9

    @classmethod
    def quick(cls) -> "Fig5Settings":
        return cls(
            data_sizes_kb=(100.0, 1000.0),
            n_users=15,
            n_seeds=2,
            min_temperature=1e-2,
        )


def run(settings: Fig5Settings = Fig5Settings()) -> ExperimentOutput:
    """Average system utility per scheme over the data-size sweep."""
    schedulers = standard_schedulers(
        chain_length=settings.chain_length,
        min_temperature=settings.min_temperature,
    )
    names = [s.name for s in schedulers]
    seeds = default_seeds(settings.n_seeds)

    headers = ["d_u [KB]"] + names
    rows: List[List[str]] = []
    raw = {"data_sizes_kb": list(settings.data_sizes_kb), "series": {n: [] for n in names}}
    for size_kb in settings.data_sizes_kb:
        config = SimulationConfig(
            n_users=settings.n_users,
            workload_megacycles=settings.workload_megacycles,
            input_kb=size_kb,
        )
        result = run_schemes(config, schedulers, seeds)
        row = [f"{size_kb:.0f}"]
        for name in names:
            stat = result.utility_summary(name)
            row.append(format_stat(stat, precision=3))
            raw["series"][name].append(stat)
        rows.append(row)

    return ExperimentOutput(
        experiment_id="fig5",
        title="Fig. 5 - Average system utility vs task data size",
        headers=headers,
        rows=rows,
        raw=raw,
    )
