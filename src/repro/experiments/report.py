"""Tabular output for experiment drivers.

The paper reports its evaluation as figures; the reproduction renders the
same series as ASCII tables — one row per x-axis point, one column per
scheme — so the trends ("who wins, by roughly what factor, where the
crossovers fall") can be read directly from a terminal or a benchmark log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.sim.stats import SummaryStats


@dataclass
class ExperimentOutput:
    """Structured result of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Stable id, e.g. ``"fig3"``.
    title:
        Human-readable description (paper figure reference).
    headers:
        Column names for the rendered table.
    rows:
        Pre-formatted table cells, one list per row.
    raw:
        Machine-readable results keyed by series name — what tests and
        EXPERIMENTS.md assertions consume.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[str]]
    raw: Dict[str, Any] = field(default_factory=dict)


def format_stat(stat: SummaryStats, precision: int = 4) -> str:
    """``mean ± halfwidth`` with the paper's 95 % CI convention."""
    return f"{stat.mean:.{precision}f} ±{stat.ci_halfwidth:.{precision}f}"


def format_float(value: float, precision: int = 4) -> str:
    return f"{value:.{precision}f}"


def render_text(output: ExperimentOutput) -> str:
    """Render an :class:`ExperimentOutput` as an aligned ASCII table."""
    table: List[Sequence[str]] = [output.headers, *output.rows]
    widths = [
        max(len(str(row[col])) for row in table)
        for col in range(len(output.headers))
    ]
    lines = [output.title, "=" * len(output.title)]
    header = "  ".join(
        str(cell).ljust(width) for cell, width in zip(output.headers, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in output.rows:
        lines.append(
            "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)
