"""Fig. 3 — suboptimality of TSAJS on the small network.

"We conducted experiments in a smaller network environment consisting of
U = 6 users evenly distributed within the coverage of S = 4 cells, each
equipped with N = 2 sub-bands.  With user task loads w_u set at 1000,
2000, 3000, and 4000 Megacycles respectively, we calculated the
corresponding average system utility for each scheme and provided the 95%
confidence interval."

Expected shape: TSAJS almost matches the exhaustive optimum and beats
hJTORA / LocalSearch / Greedy by small margins (the paper reports ~0.9 %,
1.49 % and 4.14 % average improvements); utility grows with the workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import default_seeds, standard_schedulers
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import small_network_config
from repro.sim.runner import run_schemes


@dataclass(frozen=True)
class Fig3Settings:
    """Sweep settings; defaults follow the paper."""

    workloads_megacycles: Sequence[float] = (1000.0, 2000.0, 3000.0, 4000.0)
    n_seeds: int = 10
    include_exhaustive: bool = True
    chain_length: int = 30
    min_temperature: float = 1e-9

    @classmethod
    def quick(cls) -> "Fig3Settings":
        """Reduced preset for CI / benchmarking runs."""
        return cls(
            workloads_megacycles=(1000.0, 4000.0),
            n_seeds=2,
            min_temperature=1e-2,
        )


def run(settings: Fig3Settings = Fig3Settings()) -> ExperimentOutput:
    """Average system utility per scheme over the workload sweep."""
    schedulers = standard_schedulers(
        chain_length=settings.chain_length,
        min_temperature=settings.min_temperature,
        include_exhaustive=settings.include_exhaustive,
    )
    names = [s.name for s in schedulers]
    seeds = default_seeds(settings.n_seeds)

    headers = ["workload [Mc]"] + names
    rows: List[List[str]] = []
    raw = {"workloads": list(settings.workloads_megacycles), "series": {n: [] for n in names}}
    for workload in settings.workloads_megacycles:
        config = small_network_config(workload_megacycles=workload)
        result = run_schemes(config, schedulers, seeds)
        row = [f"{workload:.0f}"]
        for name in names:
            stat = result.utility_summary(name)
            row.append(format_stat(stat))
            raw["series"][name].append(stat)
        rows.append(row)

    return ExperimentOutput(
        experiment_id="fig3",
        title=(
            "Fig. 3 - Average system utility, small network "
            "(U=6, S=4, N=2), 95% CI"
        ),
        headers=headers,
        rows=rows,
        raw=raw,
    )
