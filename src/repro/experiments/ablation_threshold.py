"""Ablation — does the threshold trigger earn its keep?

TSAJS's distinguishing feature over vanilla simulated annealing is the
two-rate cooling: slow (alpha_1 = 0.97) normally, fast (alpha_2 = 0.90)
once ``maxCount = 1.75 L`` worsened solutions have been accepted.  This
ablation runs three variants at the same stopping temperature:

* **TTSA** — the paper's schedule;
* **Vanilla-slow** — always alpha_1 (never triggers; higher quality
  ceiling but strictly more iterations);
* **Vanilla-fast** — always alpha_2 (cheapest, weakest exploration).

Reported: mean utility and mean objective-evaluation count.  The expected
outcome is TTSA matching Vanilla-slow's utility at a fraction of the
iterations, and beating Vanilla-fast's utility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes
from repro.sim.stats import summarize

#: A threshold factor so large the fast rate never engages.
_NEVER_TRIGGER = 1e18


class _NamedTsajs(TsajsScheduler):
    """TSAJS variant with an explicit display name (for the runner)."""

    def __init__(self, name: str, schedule: AnnealingSchedule) -> None:
        super().__init__(schedule=schedule)
        self.name = name


@dataclass(frozen=True)
class AblationThresholdSettings:
    """Settings for the threshold-trigger ablation."""

    n_users: int = 30
    workload_megacycles: float = 2000.0
    chain_length: int = 30
    min_temperature: float = 1e-9
    n_seeds: int = 5

    @classmethod
    def quick(cls) -> "AblationThresholdSettings":
        return cls(n_users=15, n_seeds=2, min_temperature=1e-2)


def run(
    settings: AblationThresholdSettings = AblationThresholdSettings(),
) -> ExperimentOutput:
    """Compare TTSA against single-rate annealing schedules."""
    base = dict(
        chain_length=settings.chain_length,
        min_temperature=settings.min_temperature,
    )
    schedulers = [
        _NamedTsajs("TTSA", AnnealingSchedule(**base)),
        _NamedTsajs(
            "Vanilla-slow",
            AnnealingSchedule(threshold_factor=_NEVER_TRIGGER, **base),
        ),
        _NamedTsajs(
            "Vanilla-fast",
            AnnealingSchedule(alpha_slow=0.90, alpha_fast=0.90, **base),
        ),
    ]
    config = SimulationConfig(
        n_users=settings.n_users,
        workload_megacycles=settings.workload_megacycles,
    )
    result = run_schemes(config, schedulers, default_seeds(settings.n_seeds))

    headers = ["variant", "utility", "evaluations"]
    rows: List[List[str]] = []
    raw: dict = {"series": {}}
    for scheduler in schedulers:
        utility = result.utility_summary(scheduler.name)
        evals = summarize(
            [float(m.evaluations) for m in result.metrics[scheduler.name]]
        )
        raw["series"][scheduler.name] = {"utility": utility, "evaluations": evals}
        rows.append(
            [scheduler.name, format_stat(utility), format_stat(evals, precision=0)]
        )

    return ExperimentOutput(
        experiment_id="ablation_threshold",
        title="Ablation - threshold-triggered vs single-rate cooling",
        headers=headers,
        rows=rows,
        raw=raw,
    )
