"""Extension experiment — episodic operation under server outages.

Runs the slot-based operational wrapper (`repro.sim.episodes`) for
several schedulers across a sweep of per-slot server-outage
probabilities, reporting the mean per-slot utility.  The question: how
gracefully does each scheme degrade when infrastructure faults shrink
the usable server set?  TSAJS and hJTORA re-optimise around dead
machines; Greedy's fixed signal-strength rule cannot distinguish a
strong-channel dead server from a live one until the utility check
rejects the placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines import GreedyScheduler, HJtoraScheduler
from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import Scheduler, TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.episodes import EpisodeConfig, run_episode
from repro.sim.stats import summarize


@dataclass(frozen=True)
class ExtEpisodesSettings:
    """Settings for the episodic-outage experiment."""

    outage_probabilities: Sequence[float] = (0.0, 0.1, 0.25, 0.5)
    pool_size: int = 20
    n_slots: int = 10
    n_servers: int = 4
    n_subbands: int = 3
    activity_probability: float = 0.7
    chain_length: int = 30
    min_temperature: float = 1e-3
    n_seeds: int = 3

    @classmethod
    def quick(cls) -> "ExtEpisodesSettings":
        return cls(
            outage_probabilities=(0.0, 0.5),
            pool_size=10,
            n_slots=4,
            n_seeds=2,
            min_temperature=1e-1,
        )


def _schedulers(settings: ExtEpisodesSettings) -> List[Scheduler]:
    return [
        TsajsScheduler(
            schedule=AnnealingSchedule(
                chain_length=settings.chain_length,
                min_temperature=settings.min_temperature,
            )
        ),
        HJtoraScheduler(),
        GreedyScheduler(),
    ]


def run(settings: ExtEpisodesSettings = ExtEpisodesSettings()) -> ExperimentOutput:
    """Mean per-slot utility per scheme across outage probabilities."""
    seeds = default_seeds(settings.n_seeds)
    scheduler_names = [s.name for s in _schedulers(settings)]

    headers = ["outage prob"] + [f"{name} J/slot" for name in scheduler_names]
    rows: List[List[str]] = []
    raw: dict = {
        "outage_probabilities": list(settings.outage_probabilities),
        "series": {name: [] for name in scheduler_names},
    }
    for outage in settings.outage_probabilities:
        config = EpisodeConfig(
            base=SimulationConfig(
                n_users=0,
                n_servers=settings.n_servers,
                n_subbands=settings.n_subbands,
            ),
            pool_size=settings.pool_size,
            n_slots=settings.n_slots,
            activity_probability=settings.activity_probability,
            server_outage_probability=outage,
        )
        row = [f"{outage:.2f}"]
        for scheduler in _schedulers(settings):
            means = [
                run_episode(config, scheduler, seed=seed).utility_summary().mean
                for seed in seeds
            ]
            stat = summarize(means)
            raw["series"][scheduler.name].append(stat)
            row.append(format_stat(stat, precision=3))
        rows.append(row)

    return ExperimentOutput(
        experiment_id="ext_episodes",
        title="Extension - episodic operation under server outages",
        headers=headers,
        rows=rows,
        raw=raw,
    )
