"""Content-addressed, crash-safe cache of per-seed sweep results.

Where :class:`~repro.experiments.persistence.SweepJournal` is an
append-only log bound to one file, the :class:`ResultCache` is a
*directory* of independent entries, one per computed cell, addressed by
what was computed rather than when:

    key = sha256(canonical JSON of scenario-config fingerprint,
                 scheme fingerprint, seed, code fingerprint)

The code fingerprint (:func:`~repro.experiments.persistence.code_fingerprint`,
a digest of the equation/algorithm registries and lint rule set) is part
of the address, so results computed by a build implementing different
formulas simply never collide with the current build's — stale entries
are unreachable rather than dangerous.

Entries are written atomically (tmp + fsync + rename via
:mod:`repro.atomicio`) with an embedded payload checksum.  A torn or
bit-flipped entry is detected at read time, moved to a ``corrupt/``
sidecar directory (evidence is never deleted) and transparently
recomputed.  ``tsajs run --cache DIR`` therefore resumes any previously
computed cell across runs, machines sharing the directory, and code
revisions — with byte-identical rendered output and RNG ledgers between
cold and warm runs, which ``tests/test_result_cache.py`` pins.

The cache satisfies the runner's
:class:`~repro.sim.runner.SeedJournal` protocol, so it plugs into
:func:`~repro.sim.runner.run_schemes` anywhere a journal does.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.atomicio import (
    atomic_write_json,
    payload_checksum,
    sha256_hex,
)
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.experiments.persistence import (
    _fingerprint,
    _metrics_from_dict,
    code_fingerprint,
)
from repro.obs.recorder import get_recorder
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SolutionMetrics

__all__ = ["ResultCache", "cell_key", "code_fingerprint"]

#: Version stamped into every cache entry.
CACHE_FORMAT_VERSION = 1


def cell_key(
    config: SimulationConfig,
    scheduler: Scheduler,
    seed: int,
    code: Optional[str] = None,
) -> str:
    """Content address of one (config, scheme, seed, build) cell.

    Full (untruncated) SHA-256 hex of the canonical-JSON cell identity.
    ``code`` defaults to the current build's
    :func:`~repro.experiments.persistence.code_fingerprint`.
    """
    payload = {
        "config": _fingerprint(config),
        "scheduler": _fingerprint(scheduler),
        "seed": seed,
        "code": code if code is not None else code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return sha256_hex(canonical.encode("utf-8"))


class ResultCache:
    """Directory-backed content-addressed store of per-cell metrics.

    Layout: ``root/<key[:2]>/<key>.json`` (two-level sharding keeps any
    one directory small on large sweeps) plus ``root/corrupt/`` holding
    quarantined entries.  Entries are immutable: a key fully determines
    its content, so concurrent writers racing on the same key atomically
    replace one valid entry with an identical one.
    """

    def __init__(self, root: Union[str, Path], resume: bool = True) -> None:
        """``resume=False`` makes every lookup a miss (``--no-resume``):
        the sweep recomputes everything and overwrites the entries, which
        is non-destructive — unlike truncating a journal file — because
        entries are content-addressed and immutable."""
        self.root = Path(root)
        self.resume = resume
        self.root.mkdir(parents=True, exist_ok=True)

    # --- key/path plumbing --------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _corrupt_dir(self) -> Path:
        return self.root / "corrupt"

    def __len__(self) -> int:
        """Number of (valid-looking) entry files currently stored."""
        count = 0
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == "corrupt":
                continue
            count += len([p for p in sorted(shard.iterdir()) if p.suffix == ".json"])
        return count

    # --- single-cell API ----------------------------------------------------

    def get(self, key: str) -> Optional[SolutionMetrics]:
        """The cached metrics under ``key``, or ``None``.

        A present-but-unreadable entry (torn write, bit rot, checksum
        mismatch) is quarantined to ``corrupt/`` and reported as a miss,
        so the caller recomputes it — corruption costs wall time, never
        correctness.
        """
        path = self._entry_path(key)
        if not path.exists():
            return None
        rec = get_recorder()
        try:
            metrics = self._read_entry(path, key)
        except ConfigurationError as exc:
            self._quarantine(path)
            if rec.enabled:
                rec.event("cache.entry_quarantined", key=key, error=str(exc))
                rec.count("cache.quarantined")
            return None
        return metrics

    def put(self, key: str, metrics: SolutionMetrics) -> None:
        """Durably store one cell's metrics (atomic, checksummed)."""
        payload_metrics = dataclasses.asdict(metrics)
        atomic_write_json(
            self._entry_path(key),
            {
                "format_version": CACHE_FORMAT_VERSION,
                "key": key,
                "metrics": payload_metrics,
                "checksum": payload_checksum(payload_metrics),
            },
        )
        rec = get_recorder()
        if rec.enabled:
            rec.count("cache.writes")

    def _read_entry(self, path: Path, key: str) -> SolutionMetrics:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"unreadable cache entry {path.name}: {exc}"
            )
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"cache entry {path.name} must hold a JSON object, "
                f"got {type(payload).__name__}"
            )
        version = payload.get("format_version")
        if version != CACHE_FORMAT_VERSION:
            raise ConfigurationError(
                f"cache entry {path.name} has format_version {version!r}, "
                f"expected {CACHE_FORMAT_VERSION}"
            )
        if payload.get("key") != key:
            raise ConfigurationError(
                f"cache entry {path.name} claims key {payload.get('key')!r}"
            )
        metrics_field = payload.get("metrics")
        if payload.get("checksum") != payload_checksum(metrics_field):
            raise ConfigurationError(
                f"cache entry {path.name} failed its integrity check "
                "(torn write or corrupted storage)"
            )
        if not isinstance(metrics_field, dict):
            raise ConfigurationError(
                f"cache entry {path.name} metrics must be an object"
            )
        return _metrics_from_dict(metrics_field)

    def _quarantine(self, path: Path) -> None:
        """Move a bad entry into ``corrupt/``, keeping every specimen."""
        corrupt = self._corrupt_dir()
        corrupt.mkdir(parents=True, exist_ok=True)
        destination = corrupt / path.name
        suffix = 0
        while destination.exists():
            suffix += 1
            destination = corrupt / f"{path.name}.{suffix}"
        try:
            os.replace(path, destination)
        except OSError:
            # Lost a race with another process quarantining the same
            # entry; the live path is gone either way.
            pass

    def corrupt_entries(self) -> List[Path]:
        """Quarantined entry files (diagnostics; sorted for determinism)."""
        corrupt = self._corrupt_dir()
        if not corrupt.is_dir():
            return []
        return sorted(corrupt.iterdir())

    # --- SeedJournal protocol (used by repro.sim.runner) --------------------

    def lookup_seed(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        seed: int,
    ) -> Optional[List[SolutionMetrics]]:
        """Per-scheme metrics for a completed seed, or ``None`` if any
        scheme's cell is missing (partial hits stay misses so the seed's
        work unit recomputes as a whole, exactly like a journal miss)."""
        rec = get_recorder()
        if not self.resume:
            if rec.enabled:
                rec.count("cache.misses")
            return None
        out: List[SolutionMetrics] = []
        for scheduler in schedulers:
            metrics = self.get(cell_key(config, scheduler, seed))
            if metrics is None:
                if rec.enabled:
                    rec.count("cache.misses")
                return None
            out.append(metrics)
        if rec.enabled:
            rec.count("cache.hits")
        return out

    def record_seed(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        seed: int,
        metrics: Sequence[SolutionMetrics],
    ) -> None:
        """Store every scheme's metrics for one completed seed."""
        for scheduler, entry in zip(schedulers, metrics):
            self.put(cell_key(config, scheduler, seed), entry)

    # --- maintenance --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Cheap occupancy summary (entry and quarantine counts)."""
        return {
            "root": str(self.root),
            "entries": len(self),
            "corrupt": len(self.corrupt_entries()),
        }
