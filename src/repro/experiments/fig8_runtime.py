"""Fig. 8 — average computation time versus the number of sub-channels.

Two panels, chain lengths L in {10, 50}, same sub-channel sweep as Fig. 7
but reporting each scheme's scheduling wall-clock time.

Expected shape: "with the increase in the number of sub-channels, the
average computation time also extends, attributed to the expansion of the
search scope.  Notably, the computation time of the hJTORA scheme
increases more significantly, while the average computation time of the
LocalSearch and Greedy schemes remains relatively stable."  hJTORA's
steepest-ascent rounds each scan all U*S*N single-user moves, so its cost
scales directly with N; LocalSearch and Greedy use a fixed search budget.

The wall times plotted here originate in the schedulers themselves, which
time their runs with :class:`repro.obs.clock.Stopwatch` (the repo-wide
clock seam) rather than ad-hoc ``time.perf_counter()`` calls; this module
only aggregates them.  Under ``tsajs run --telemetry`` each sweep point
additionally opens an ``experiment.point`` span, so a trace shows where a
slow sweep spends its time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import default_seeds, standard_schedulers
from repro.experiments.report import ExperimentOutput, format_stat
from repro.obs.recorder import get_recorder
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes


@dataclass(frozen=True)
class Fig8Settings:
    """Sweep settings for the computation-time figure."""

    subchannel_counts: Sequence[int] = (1, 2, 3, 5, 10, 20, 30, 50)
    chain_lengths: Sequence[int] = (10, 50)
    n_users: int = 50
    workload_megacycles: float = 1000.0
    n_seeds: int = 3
    min_temperature: float = 1e-9

    @classmethod
    def quick(cls) -> "Fig8Settings":
        return cls(
            subchannel_counts=(2, 10),
            chain_lengths=(10,),
            n_users=20,
            n_seeds=2,
            min_temperature=1e-2,
        )


def run(settings: Fig8Settings = Fig8Settings()) -> ExperimentOutput:
    """Average scheduling wall time per scheme over the sub-channel sweep."""
    seeds = default_seeds(settings.n_seeds)
    rec = get_recorder()
    headers: List[str] = ["L", "N"]
    rows: List[List[str]] = []
    raw: dict = {"panels": []}

    names = None
    for chain_length in settings.chain_lengths:
        schedulers = standard_schedulers(
            chain_length=chain_length,
            min_temperature=settings.min_temperature,
        )
        if names is None:
            names = [s.name for s in schedulers]
            headers = headers + [f"{n} [s]" for n in names]
        panel = {
            "chain_length": chain_length,
            "subchannel_counts": list(settings.subchannel_counts),
            "series": {n: [] for n in names},
        }
        for n_subbands in settings.subchannel_counts:
            config = SimulationConfig(
                n_users=settings.n_users,
                n_subbands=n_subbands,
                workload_megacycles=settings.workload_megacycles,
            )
            with rec.span(
                "experiment.point",
                experiment="fig8",
                chain_length=chain_length,
                n_subbands=n_subbands,
            ):
                result = run_schemes(config, schedulers, seeds)
            row = [str(chain_length), str(n_subbands)]
            for name in names:
                stat = result.wall_time_summary(name)
                row.append(format_stat(stat, precision=4))
                panel["series"][name].append(stat)
            rows.append(row)
        raw["panels"].append(panel)

    return ExperimentOutput(
        experiment_id="fig8",
        title="Fig. 8 - Average computation time vs number of sub-channels",
        headers=headers,
        rows=rows,
        raw=raw,
    )
