"""Ablation — cooling-rate sweep (alpha_1 x alpha_2).

Sweeps the slow and fast cooling rates around the paper's (0.97, 0.90)
choice and reports utility and evaluation count for each pair, exposing
the quality/cost trade-off the constants encode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes
from repro.sim.stats import summarize


class _NamedTsajs(TsajsScheduler):
    """TSAJS variant with an explicit display name (for the runner)."""

    def __init__(self, name: str, schedule: AnnealingSchedule) -> None:
        super().__init__(schedule=schedule)
        self.name = name


@dataclass(frozen=True)
class AblationCoolingSettings:
    """Settings for the cooling-rate ablation."""

    alpha_pairs: Sequence[Tuple[float, float]] = (
        (0.90, 0.80),
        (0.95, 0.85),
        (0.97, 0.90),  # paper
        (0.99, 0.95),
    )
    n_users: int = 30
    workload_megacycles: float = 2000.0
    chain_length: int = 30
    min_temperature: float = 1e-9
    n_seeds: int = 5

    @classmethod
    def quick(cls) -> "AblationCoolingSettings":
        return cls(
            alpha_pairs=((0.90, 0.80), (0.97, 0.90)),
            n_users=15,
            n_seeds=2,
            min_temperature=1e-2,
        )


def run(
    settings: AblationCoolingSettings = AblationCoolingSettings(),
) -> ExperimentOutput:
    """Sweep (alpha_slow, alpha_fast) pairs for TSAJS."""
    schedulers = [
        _NamedTsajs(
            f"a1={slow:.2f}/a2={fast:.2f}",
            AnnealingSchedule(
                alpha_slow=slow,
                alpha_fast=fast,
                chain_length=settings.chain_length,
                min_temperature=settings.min_temperature,
            ),
        )
        for slow, fast in settings.alpha_pairs
    ]
    config = SimulationConfig(
        n_users=settings.n_users,
        workload_megacycles=settings.workload_megacycles,
    )
    result = run_schemes(config, schedulers, default_seeds(settings.n_seeds))

    headers = ["alphas", "utility", "evaluations"]
    rows: List[List[str]] = []
    raw: dict = {"series": {}}
    for scheduler in schedulers:
        utility = result.utility_summary(scheduler.name)
        evals = summarize(
            [float(m.evaluations) for m in result.metrics[scheduler.name]]
        )
        raw["series"][scheduler.name] = {"utility": utility, "evaluations": evals}
        rows.append(
            [scheduler.name, format_stat(utility), format_stat(evals, precision=0)]
        )

    return ExperimentOutput(
        experiment_id="ablation_cooling",
        title="Ablation - cooling-rate sweep (alpha_slow / alpha_fast)",
        headers=headers,
        rows=rows,
        raw=raw,
    )
