"""Fig. 9 — impact of user preferences on energy and delay.

Sweeps the time-preference weight ``beta_time`` from 0.05 to 0.95 (with
``beta_energy = 1 - beta_time``) for three user scales and reports the
average per-user energy consumption (panel a) and computation delay
(panel b) achieved by TSAJS.

Expected shape: "as the value of beta_time gradually increased, users
tended to prioritize time efficiency, leading to a significant reduction
in average time consumption.  However, this temporal optimization ...
came at the expense of increased energy consumption."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import default_seeds, make_tsajs
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes
from repro.sim.stats import summarize


@dataclass(frozen=True)
class Fig9Settings:
    """Sweep settings for the preference figure."""

    beta_time_values: Sequence[float] = (0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95)
    user_counts: Sequence[int] = (30, 60, 90)
    workload_megacycles: float = 1000.0
    chain_length: int = 30
    n_seeds: int = 5
    min_temperature: float = 1e-9

    @classmethod
    def quick(cls) -> "Fig9Settings":
        return cls(
            beta_time_values=(0.05, 0.95),
            user_counts=(30,),
            n_seeds=2,
            min_temperature=1e-2,
        )


def run(settings: Fig9Settings = Fig9Settings()) -> ExperimentOutput:
    """Average user energy and delay under TSAJS over the beta sweep."""
    scheduler = make_tsajs(settings.chain_length, settings.min_temperature)
    seeds = default_seeds(settings.n_seeds)

    headers = ["users", "beta_time", "avg energy [J]", "avg delay [s]"]
    rows: List[List[str]] = []
    raw: dict = {"panels": []}
    for n_users in settings.user_counts:
        panel = {
            "n_users": n_users,
            "beta_time_values": list(settings.beta_time_values),
            "energy": [],
            "delay": [],
        }
        for beta_time in settings.beta_time_values:
            config = SimulationConfig(
                n_users=n_users,
                workload_megacycles=settings.workload_megacycles,
                beta_time=beta_time,
            )
            result = run_schemes(config, [scheduler], seeds)
            energy_stat = summarize(result.mean_energies(scheduler.name))
            delay_stat = summarize(result.mean_times(scheduler.name))
            panel["energy"].append(energy_stat)
            panel["delay"].append(delay_stat)
            rows.append(
                [
                    str(n_users),
                    f"{beta_time:.2f}",
                    format_stat(energy_stat, precision=4),
                    format_stat(delay_stat, precision=4),
                ]
            )
        raw["panels"].append(panel)

    return ExperimentOutput(
        experiment_id="fig9",
        title="Fig. 9 - Impact of user preferences (TSAJS)",
        headers=headers,
        rows=rows,
        raw=raw,
    )
