"""Registry mapping experiment ids to their drivers.

Each entry couples the full (paper-scale) settings with a quick preset so
both the CLI (``tsajs run fig3``) and the benchmark suite can launch any
experiment by id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.experiments import (
    ablation_budget,
    ablation_cooling,
    ablation_neighborhood,
    ablation_threshold,
    ext_downlink,
    ext_episodes,
    ext_fading,
    ext_faults,
    ext_metaheuristics,
    ext_partial,
    ext_power_control,
    ext_sharding,
    fig3_suboptimality,
    fig4_user_scale,
    fig5_data_size,
    fig6_workload,
    fig7_subchannels,
    fig8_runtime,
    fig9_preferences,
)
from repro.experiments.report import ExperimentOutput


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable experiment: id, description and two entry points."""

    experiment_id: str
    description: str
    run_full: Callable[[], ExperimentOutput]
    run_quick: Callable[[], ExperimentOutput]


def _spec(experiment_id: str, description: str, module) -> ExperimentSpec:
    settings_cls = getattr(
        module,
        next(
            name
            for name in dir(module)
            if name.endswith("Settings") and not name.startswith("_")
        ),
    )
    return ExperimentSpec(
        experiment_id=experiment_id,
        description=description,
        run_full=lambda: module.run(settings_cls()),
        run_quick=lambda: module.run(settings_cls.quick()),
    )


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        _spec(
            "fig3",
            "Suboptimality vs exhaustive optimum (small network)",
            fig3_suboptimality,
        ),
        _spec("fig4", "System utility vs user count", fig4_user_scale),
        _spec("fig5", "System utility vs task data size", fig5_data_size),
        _spec("fig6", "System utility vs task workload", fig6_workload),
        _spec("fig7", "System utility vs sub-channel count", fig7_subchannels),
        _spec("fig8", "Computation time vs sub-channel count", fig8_runtime),
        _spec("fig9", "User-preference trade-off (energy vs delay)", fig9_preferences),
        _spec(
            "ablation_threshold",
            "Threshold-triggered vs single-rate cooling",
            ablation_threshold,
        ),
        _spec(
            "ablation_neighborhood",
            "Algorithm 2 move-probability mix",
            ablation_neighborhood,
        ),
        _spec(
            "ablation_cooling",
            "Cooling-rate sweep",
            ablation_cooling,
        ),
        _spec(
            "ablation_budget",
            "Utility vs annealing budget (T_min sweep)",
            ablation_budget,
        ),
        _spec(
            "ext_power_control",
            "Extension: utility gain from uplink power control",
            ext_power_control,
        ),
        _spec(
            "ext_downlink",
            "Extension: downlink-aware scheduling vs output size",
            ext_downlink,
        ),
        _spec(
            "ext_metaheuristics",
            "Extension: TSAJS vs genetic-algorithm search",
            ext_metaheuristics,
        ),
        _spec(
            "ext_partial",
            "Extension: atomic vs bit-level partial offloading",
            ext_partial,
        ),
        _spec(
            "ext_fading",
            "Extension: robustness of mean-channel plans to fast fading",
            ext_fading,
        ),
        _spec(
            "ext_episodes",
            "Extension: episodic operation under server outages",
            ext_episodes,
        ),
        _spec(
            "ext_faults",
            "Extension: graceful degradation under injected faults",
            ext_faults,
        ),
        _spec(
            "ext_sharding",
            "Extension: sharded-vs-global utility gap vs cluster radius",
            ext_sharding,
        ),
    )
}


def list_experiments() -> List[str]:
    """All registered experiment ids, figure experiments first."""
    return list(EXPERIMENTS.keys())


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up a registered experiment by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(list_experiments())}"
        ) from None
