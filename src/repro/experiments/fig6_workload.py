"""Fig. 6 — system utility versus task workload at fixed user counts.

Two panels, U = 50 and U = 90, sweeping the computational workload
``w_u`` on the default network.

Expected shape: "the average system utility of all schemes increases
continuously with the increase in task workload" — heavier tasks make
local execution slower/costlier while the upload cost stays fixed, so the
relative offloading gain grows for every scheme, with TSAJS on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import default_seeds, standard_schedulers
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes


@dataclass(frozen=True)
class Fig6Settings:
    """Sweep settings for the workload figure."""

    user_counts: Sequence[int] = (50, 90)
    workloads_megacycles: Sequence[float] = (500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0)
    chain_length: int = 30
    n_seeds: int = 5
    min_temperature: float = 1e-9

    @classmethod
    def quick(cls) -> "Fig6Settings":
        return cls(
            user_counts=(50,),
            workloads_megacycles=(500.0, 3000.0),
            n_seeds=2,
            min_temperature=1e-2,
        )


def run(settings: Fig6Settings = Fig6Settings()) -> ExperimentOutput:
    """Average system utility per scheme over workload sweeps."""
    schedulers = standard_schedulers(
        chain_length=settings.chain_length,
        min_temperature=settings.min_temperature,
    )
    names = [s.name for s in schedulers]
    seeds = default_seeds(settings.n_seeds)

    headers = ["users", "w [Mc]"] + names
    rows: List[List[str]] = []
    raw: dict = {"panels": []}
    for n_users in settings.user_counts:
        panel = {
            "n_users": n_users,
            "workloads": list(settings.workloads_megacycles),
            "series": {n: [] for n in names},
        }
        for workload in settings.workloads_megacycles:
            config = SimulationConfig(
                n_users=n_users, workload_megacycles=workload
            )
            result = run_schemes(config, schedulers, seeds)
            row = [str(n_users), f"{workload:.0f}"]
            for name in names:
                stat = result.utility_summary(name)
                row.append(format_stat(stat, precision=3))
                panel["series"][name].append(stat)
            rows.append(row)
        raw["panels"].append(panel)

    return ExperimentOutput(
        experiment_id="fig6",
        title="Fig. 6 - Average system utility vs task workload (fixed users)",
        headers=headers,
        rows=rows,
        raw=raw,
    )
