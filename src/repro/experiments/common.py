"""Shared helpers for the experiment drivers.

All figures compare the same scheme set (TSAJS, hJTORA, LocalSearch,
Greedy — plus Exhaustive on the small network), built here with one knob
for the annealer's chain length ``L`` (the paper sweeps L in Figs. 4, 7
and 8) and one for the stopping temperature (used by the ``quick()``
presets so CI does not pay the full 1e-9 cool-down on every point).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines import (
    ExhaustiveScheduler,
    GreedyScheduler,
    HJtoraScheduler,
    LocalSearchScheduler,
)
from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import Scheduler, TsajsScheduler

#: Scheme display order used by every comparison figure.
SCHEME_ORDER = ("Exhaustive", "TSAJS", "hJTORA", "LocalSearch", "Greedy")


def make_tsajs(
    chain_length: int = 30,
    min_temperature: float = 1e-9,
    use_delta: bool = False,
) -> TsajsScheduler:
    """A TSAJS instance with the paper's schedule except ``L``/``T_min``.

    ``use_delta=True`` scores moves with the incremental evaluator; the
    results are bit-for-bit the same, only faster.
    """
    return TsajsScheduler(
        schedule=AnnealingSchedule(
            chain_length=chain_length, min_temperature=min_temperature
        ),
        use_delta=use_delta,
    )


def standard_schedulers(
    chain_length: int = 30,
    min_temperature: float = 1e-9,
    include_exhaustive: bool = False,
    local_search_iterations: int = 5000,
    use_delta: bool = False,
) -> List[Scheduler]:
    """The paper's comparison set, in :data:`SCHEME_ORDER`."""
    schedulers: List[Scheduler] = []
    if include_exhaustive:
        schedulers.append(ExhaustiveScheduler())
    schedulers.extend(
        [
            make_tsajs(chain_length, min_temperature, use_delta=use_delta),
            HJtoraScheduler(),
            LocalSearchScheduler(max_iterations=local_search_iterations),
            GreedyScheduler(),
        ]
    )
    return schedulers


def default_seeds(n_seeds: int, base: int = 2025) -> List[int]:
    """Deterministic seed list shared by all drivers."""
    return [base + i for i in range(n_seeds)]


def scheme_names(schedulers: Sequence[Scheduler]) -> List[str]:
    return [s.name for s in schedulers]
