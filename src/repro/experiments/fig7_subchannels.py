"""Fig. 7 — system utility versus the number of sub-channels.

Two panels, chain lengths L in {30, 50}, sweeping the sub-band count N on
the default 9-cell network with a fixed total bandwidth B = 20 MHz.

Expected shape: "As the number of sub-channels increases, the average
system utility demonstrates a trend of first increasing and then
decreasing" — more sub-bands admit more concurrent offloaders, but since
``W = B / N`` shrinks, each user's rate falls and "excessive sub-channels
may lead to channel idleness".  TSAJS leads, especially at large N where
the search space rewards its deeper exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.experiments.common import default_seeds, standard_schedulers
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes


@dataclass(frozen=True)
class Fig7Settings:
    """Sweep settings for the sub-channel utility figure."""

    subchannel_counts: Sequence[int] = (1, 2, 3, 5, 10, 20, 30, 50)
    chain_lengths: Sequence[int] = (30, 50)
    n_users: int = 50
    workload_megacycles: float = 1000.0
    n_seeds: int = 5
    min_temperature: float = 1e-9

    @classmethod
    def quick(cls) -> "Fig7Settings":
        return cls(
            subchannel_counts=(2, 10),
            chain_lengths=(30,),
            n_users=20,
            n_seeds=2,
            min_temperature=1e-2,
        )


def run(settings: Fig7Settings = Fig7Settings()) -> ExperimentOutput:
    """Average system utility per scheme over the sub-channel sweep."""
    seeds = default_seeds(settings.n_seeds)
    headers: List[str] = ["L", "N"]
    rows: List[List[str]] = []
    raw: dict = {"panels": []}

    names = None
    for chain_length in settings.chain_lengths:
        schedulers = standard_schedulers(
            chain_length=chain_length,
            min_temperature=settings.min_temperature,
        )
        if names is None:
            names = [s.name for s in schedulers]
            headers = headers + names
        panel = {
            "chain_length": chain_length,
            "subchannel_counts": list(settings.subchannel_counts),
            "series": {n: [] for n in names},
        }
        for n_subbands in settings.subchannel_counts:
            config = SimulationConfig(
                n_users=settings.n_users,
                n_subbands=n_subbands,
                workload_megacycles=settings.workload_megacycles,
            )
            result = run_schemes(config, schedulers, seeds)
            row = [str(chain_length), str(n_subbands)]
            for name in names:
                stat = result.utility_summary(name)
                row.append(format_stat(stat, precision=3))
                panel["series"][name].append(stat)
            rows.append(row)
        raw["panels"].append(panel)

    return ExperimentOutput(
        experiment_id="fig7",
        title="Fig. 7 - Average system utility vs number of sub-channels",
        headers=headers,
        rows=rows,
        raw=raw,
    )
