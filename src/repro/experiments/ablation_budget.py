"""Ablation — utility as a function of the annealing budget.

TSAJS's headline claim is near-optimal utility "within polynomial time".
This ablation makes the quality/budget curve explicit: the stopping
temperature ``T_min`` is swept over decades (each decade multiplies the
temperature-level count by a constant), and the table reports the mean
utility and mean objective-evaluation count at each budget — showing
where the returns of a longer anneal vanish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes
from repro.sim.stats import summarize


class _NamedTsajs(TsajsScheduler):
    """TSAJS variant with an explicit display name (for the runner)."""

    def __init__(self, name: str, schedule: AnnealingSchedule) -> None:
        super().__init__(schedule=schedule)
        self.name = name


@dataclass(frozen=True)
class AblationBudgetSettings:
    """Settings for the budget ablation."""

    min_temperatures: Sequence[float] = (1e-1, 1e-2, 1e-4, 1e-6, 1e-9)
    n_users: int = 30
    workload_megacycles: float = 2000.0
    chain_length: int = 30
    n_seeds: int = 5

    @classmethod
    def quick(cls) -> "AblationBudgetSettings":
        return cls(min_temperatures=(1e-1, 1e-3), n_users=15, n_seeds=2)


def run(
    settings: AblationBudgetSettings = AblationBudgetSettings(),
) -> ExperimentOutput:
    """Sweep the stopping temperature; report utility and search cost."""
    schedulers = [
        _NamedTsajs(
            f"Tmin={t_min:.0e}",
            AnnealingSchedule(
                chain_length=settings.chain_length, min_temperature=t_min
            ),
        )
        for t_min in settings.min_temperatures
    ]
    config = SimulationConfig(
        n_users=settings.n_users,
        workload_megacycles=settings.workload_megacycles,
    )
    result = run_schemes(config, schedulers, default_seeds(settings.n_seeds))

    headers = ["T_min", "utility", "evaluations"]
    rows: List[List[str]] = []
    raw: dict = {"min_temperatures": list(settings.min_temperatures), "series": {}}
    for scheduler in schedulers:
        utility = result.utility_summary(scheduler.name)
        evals = summarize(
            [float(m.evaluations) for m in result.metrics[scheduler.name]]
        )
        raw["series"][scheduler.name] = {"utility": utility, "evaluations": evals}
        rows.append(
            [scheduler.name, format_stat(utility), format_stat(evals, precision=0)]
        )

    return ExperimentOutput(
        experiment_id="ablation_budget",
        title="Ablation - utility vs annealing budget (T_min sweep)",
        headers=headers,
        rows=rows,
        raw=raw,
    )
