"""Extension experiment — what does task atomicity cost?

The paper's tasks are non-divisible; related work (ref. [30]) partitions
them at the bit level.  For each workload this experiment schedules with
TSAJS, then relaxes the atomic constraint via the closed-form partial-
offloading optimum (:mod:`repro.extensions.partial`) on the same slot
assignment, reporting the utility of both models and the mean optimal
offload fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.report import ExperimentOutput, format_stat
from repro.extensions.partial import optimal_fractions
from repro.sim.config import SimulationConfig
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario
from repro.sim.stats import summarize


@dataclass(frozen=True)
class ExtPartialSettings:
    """Settings for the partial-offloading experiment."""

    workloads_megacycles: Sequence[float] = (500.0, 1000.0, 2000.0, 4000.0)
    n_users: int = 20
    chain_length: int = 30
    min_temperature: float = 1e-4
    n_seeds: int = 5

    @classmethod
    def quick(cls) -> "ExtPartialSettings":
        return cls(
            workloads_megacycles=(500.0, 4000.0),
            n_users=10,
            n_seeds=2,
            min_temperature=1e-2,
        )


def run(settings: ExtPartialSettings = ExtPartialSettings()) -> ExperimentOutput:
    """Atomic vs partial utility (and mean rho*) per workload."""
    scheduler = TsajsScheduler(
        schedule=AnnealingSchedule(
            chain_length=settings.chain_length,
            min_temperature=settings.min_temperature,
        )
    )
    seeds = default_seeds(settings.n_seeds)

    headers = ["w [Mc]", "atomic (paper)", "partial", "gain %", "mean rho*"]
    rows: List[List[str]] = []
    raw: dict = {"workloads": list(settings.workloads_megacycles), "series": {}}
    for workload in settings.workloads_megacycles:
        atomic_values = []
        partial_values = []
        mean_fractions = []
        for seed in seeds:
            scenario = Scenario.build(
                SimulationConfig(
                    n_users=settings.n_users, workload_megacycles=workload
                ),
                seed=seed,
            )
            schedule = scheduler.schedule(scenario, child_rng(seed, 100))
            relaxed = optimal_fractions(
                scenario, schedule.decision, schedule.allocation
            )
            atomic_values.append(relaxed.full_offload_utility)
            partial_values.append(relaxed.system_utility)
            offloaded = schedule.decision.offloaded_users()
            if offloaded.size:
                mean_fractions.append(float(relaxed.fractions[offloaded].mean()))
        atomic_stat = summarize(atomic_values)
        partial_stat = summarize(partial_values)
        fraction_stat = summarize(mean_fractions if mean_fractions else [0.0])
        gain = (
            100.0 * (partial_stat.mean - atomic_stat.mean) / abs(atomic_stat.mean)
            if atomic_stat.mean
            else 0.0
        )
        raw["series"][workload] = {
            "atomic": atomic_stat,
            "partial": partial_stat,
            "mean_fraction": fraction_stat,
            "gain_percent": gain,
        }
        rows.append(
            [
                f"{workload:.0f}",
                format_stat(atomic_stat),
                format_stat(partial_stat),
                f"{gain:+.2f}",
                format_stat(fraction_stat, precision=3),
            ]
        )

    return ExperimentOutput(
        experiment_id="ext_partial",
        title="Extension - atomic (paper) vs bit-level partial offloading",
        headers=headers,
        rows=rows,
        raw=raw,
    )
