"""Extension experiment — TSAJS versus the GA metaheuristic family.

The paper's related work cites genetic-algorithm approaches (ref. [33])
as the other main metaheuristic applied to computation offloading but
never compares against one.  This experiment fills that gap: TSAJS and
an elitist tournament GA solve the same instances, and the table reports
mean utility and the objective evaluations each search spends — the
fair-budget picture behind "TSAJS finds near-optimal solutions within
polynomial time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines.genetic import GeneticScheduler
from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes
from repro.sim.stats import summarize


@dataclass(frozen=True)
class ExtMetaheuristicsSettings:
    """Settings for the metaheuristic comparison."""

    user_counts: Sequence[int] = (10, 30, 50)
    workload_megacycles: float = 2000.0
    chain_length: int = 30
    min_temperature: float = 1e-4
    ga_population: int = 40
    ga_generations: int = 200
    n_seeds: int = 5

    @classmethod
    def quick(cls) -> "ExtMetaheuristicsSettings":
        return cls(
            user_counts=(10,),
            n_seeds=2,
            min_temperature=1e-2,
            ga_generations=30,
        )


def run(
    settings: ExtMetaheuristicsSettings = ExtMetaheuristicsSettings(),
) -> ExperimentOutput:
    """Mean utility and search cost of TSAJS vs GA per user count."""
    schedulers = [
        TsajsScheduler(
            schedule=AnnealingSchedule(
                chain_length=settings.chain_length,
                min_temperature=settings.min_temperature,
            )
        ),
        GeneticScheduler(
            population_size=settings.ga_population,
            generations=settings.ga_generations,
        ),
    ]
    seeds = default_seeds(settings.n_seeds)

    headers = ["users", "TSAJS", "GA", "TSAJS evals", "GA evals"]
    rows: List[List[str]] = []
    raw: dict = {"user_counts": list(settings.user_counts), "series": {}}
    for n_users in settings.user_counts:
        config = SimulationConfig(
            n_users=n_users,
            workload_megacycles=settings.workload_megacycles,
        )
        result = run_schemes(config, schedulers, seeds)
        tsajs_utility = result.utility_summary("TSAJS")
        ga_utility = result.utility_summary("GA")
        tsajs_evals = summarize(
            [float(m.evaluations) for m in result.metrics["TSAJS"]]
        )
        ga_evals = summarize([float(m.evaluations) for m in result.metrics["GA"]])
        raw["series"][n_users] = {
            "TSAJS": {"utility": tsajs_utility, "evaluations": tsajs_evals},
            "GA": {"utility": ga_utility, "evaluations": ga_evals},
        }
        rows.append(
            [
                str(n_users),
                format_stat(tsajs_utility),
                format_stat(ga_utility),
                format_stat(tsajs_evals, precision=0),
                format_stat(ga_evals, precision=0),
            ]
        )

    return ExperimentOutput(
        experiment_id="ext_metaheuristics",
        title="Extension - TSAJS vs genetic algorithm (equal objective)",
        headers=headers,
        rows=rows,
        raw=raw,
    )
