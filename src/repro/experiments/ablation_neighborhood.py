"""Ablation — sensitivity to Algorithm 2's move-probability mix.

The paper fixes the neighbourhood branch thresholds at 0.05 (toggle),
0.20 (swap) and 0.75 (server-move vs channel-move) without justification.
This ablation re-runs TSAJS with the mix distorted:

* **paper** — 5 % toggle, 15 % swap, 55 % server move, 25 % channel move;
* **no-swap** — swap mass folded into the move branches;
* **no-toggle** — toggle mass folded into swap (offload set can then only
  shrink/grow via displacement);
* **uniform** — all four move kinds equally likely.

Reported: mean utility per variant on the default network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.annealing import AnnealingSchedule
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.scheduler import TsajsScheduler
from repro.experiments.common import default_seeds
from repro.experiments.report import ExperimentOutput, format_stat
from repro.sim.config import SimulationConfig
from repro.sim.runner import run_schemes


class _NamedTsajs(TsajsScheduler):
    """TSAJS variant with an explicit display name (for the runner)."""

    def __init__(
        self,
        name: str,
        neighborhood: NeighborhoodSampler,
        schedule: AnnealingSchedule,
    ) -> None:
        super().__init__(schedule=schedule, neighborhood=neighborhood)
        self.name = name


#: The ablated neighbourhood mixes (threshold triples).
NEIGHBORHOOD_VARIANTS: Dict[str, NeighborhoodSampler] = {
    "paper": NeighborhoodSampler(),
    "no-swap": NeighborhoodSampler(toggle_below=0.05, swap_below=0.05),
    "no-toggle": NeighborhoodSampler(toggle_below=0.0, swap_below=0.20),
    "uniform": NeighborhoodSampler(
        toggle_below=0.25, swap_below=0.50, server_move_below=0.75
    ),
}


@dataclass(frozen=True)
class AblationNeighborhoodSettings:
    """Settings for the neighbourhood-mix ablation."""

    n_users: int = 30
    workload_megacycles: float = 2000.0
    chain_length: int = 30
    min_temperature: float = 1e-9
    n_seeds: int = 5

    @classmethod
    def quick(cls) -> "AblationNeighborhoodSettings":
        return cls(n_users=15, n_seeds=2, min_temperature=1e-2)


def run(
    settings: AblationNeighborhoodSettings = AblationNeighborhoodSettings(),
) -> ExperimentOutput:
    """Compare TSAJS under different neighbourhood move mixes."""
    schedule = AnnealingSchedule(
        chain_length=settings.chain_length,
        min_temperature=settings.min_temperature,
    )
    schedulers = [
        _NamedTsajs(name, sampler, schedule)
        for name, sampler in NEIGHBORHOOD_VARIANTS.items()
    ]
    config = SimulationConfig(
        n_users=settings.n_users,
        workload_megacycles=settings.workload_megacycles,
    )
    result = run_schemes(config, schedulers, default_seeds(settings.n_seeds))

    headers = ["variant", "utility"]
    rows: List[List[str]] = []
    raw: dict = {"series": {}}
    for scheduler in schedulers:
        utility = result.utility_summary(scheduler.name)
        raw["series"][scheduler.name] = utility
        rows.append([scheduler.name, format_stat(utility)])

    return ExperimentOutput(
        experiment_id="ablation_neighborhood",
        title="Ablation - Algorithm 2 move-probability mix",
        headers=headers,
        rows=rows,
        raw=raw,
    )
