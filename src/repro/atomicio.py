"""Crash-safe filesystem primitives shared by caches, queues and reports.

Every artifact this project persists — cache entries, queue task files,
experiment tables, JSON outputs — goes through the helpers here instead
of plain ``write_text`` / ``open(..., "w")``.  The write protocol is the
classic atomic-replace sequence:

1. write the full payload to a uniquely-named temporary file *in the
   destination directory* (same filesystem, so the final rename cannot
   degrade to a copy);
2. flush and ``fsync`` the temporary file so the bytes are durable;
3. ``os.replace`` it onto the destination name (atomic on POSIX and on
   NTFS), then best-effort ``fsync`` the directory so the rename itself
   survives a power cut.

A reader therefore sees either the complete previous version or the
complete new version — never a torn half-write.  The checksum helpers
add end-to-end integrity on top: a payload that *was* torn or bit-flipped
by the storage layer is detected at read time instead of being decoded
into silently-wrong numbers.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Union

__all__ = [
    "AtomicLineWriter",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "sha256_hex",
    "payload_checksum",
]

#: Process-local counter making concurrent temp names unique within a PID.
_TMP_COUNTER = 0


def _temp_path(path: Path) -> Path:
    """A unique temporary sibling of ``path`` (same directory/filesystem)."""
    global _TMP_COUNTER
    _TMP_COUNTER += 1
    return path.parent / f".{path.name}.{os.getpid()}.{_TMP_COUNTER}.tmp"


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory entry table after a rename.

    Some filesystems (and all of Windows) refuse directory fds; losing
    the *rename* (not the data) in a crash there is an accepted gap, so
    the failure is ignored rather than propagated.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Durably replace ``path`` with ``data`` (tmp + fsync + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _temp_path(path)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        # The temp file is this process's private garbage; removing it on
        # *any* unwind (including KeyboardInterrupt) keeps directories
        # clean without masking the original error.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> None:
    """Durably replace ``path`` with ``text`` (tmp + fsync + rename)."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: Union[str, Path],
    payload: Any,
    indent: Union[int, None] = None,
    sort_keys: bool = True,
) -> None:
    """Durably replace ``path`` with ``payload`` rendered as JSON."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    atomic_write_bytes(path, (text + "\n").encode("utf-8"))


class AtomicLineWriter:
    """Streaming line sink with the same atomic-replace contract.

    Lines accumulate in a uniquely-named temporary sibling of the
    destination; :meth:`close` fsyncs and renames it into place, so a
    reader never observes a torn file — only the complete document or
    nothing.  :meth:`abort` (or an exception inside the ``with`` block)
    discards the temporary file instead, leaving any previous version of
    the destination untouched.  This is the sanctioned way to stream
    JSONL (trace shards, journals) from code that lint rule R008 bars
    from calling ``open(..., "w")`` directly.
    """

    def __init__(self, path: Union[str, Path], encoding: str = "utf-8") -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tmp = _temp_path(self.path)
        self._handle: Any = open(self._tmp, "w", encoding=encoding)
        self._closed = False

    def write_line(self, line: str) -> None:
        """Append one line (a trailing newline is added)."""
        if self._closed:
            raise ValueError(f"writer for {self.path} is already closed")
        self._handle.write(line + "\n")

    def abort(self) -> None:
        """Discard everything written; the destination is left untouched."""
        if self._closed:
            return
        self._closed = True
        self._handle.close()
        try:
            os.unlink(self._tmp)
        except OSError:
            pass

    def close(self) -> None:
        """Fsync and atomically rename the accumulated lines into place."""
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            os.replace(self._tmp, self.path)
        except BaseException:
            try:
                os.unlink(self._tmp)
            except OSError:
                pass
            raise
        _fsync_directory(self.path.parent)

    def __enter__(self) -> "AtomicLineWriter":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def sha256_hex(data: bytes) -> str:
    """Full hex SHA-256 of ``data``."""
    return hashlib.sha256(data).hexdigest()


def payload_checksum(payload: Any) -> str:
    """Canonical-JSON SHA-256 of a JSON-compatible payload.

    The canonical form (sorted keys, no whitespace) makes the checksum a
    pure function of the payload's *values*, so a round-tripped entry
    verifies regardless of how its file was formatted.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return sha256_hex(canonical.encode("utf-8"))
