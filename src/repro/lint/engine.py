"""File collection, parsing, rule execution and suppression filtering."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: Anything Path() accepts.
PathInput = Union[str, "os.PathLike[str]"]

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import all_rules, get_rule
from repro.lint.rules_base import FileContext, Rule
from repro.lint.suppressions import SuppressionIndex

#: Pseudo-rule id attached to files that fail to parse.  Not suppressible
#: (a broken file can't carry a trustworthy suppression comment).
PARSE_ERROR = "E000"


@dataclass
class Project:
    """Everything the project-wide rules see: all parsed files, in order."""

    contexts: List[FileContext] = field(default_factory=list)
    #: Cache slot for the whole-project flow analysis (built lazily by
    #: ``repro.lint.flow.analyze_project`` so the four flow rules share
    #: one symbol-table/call-graph/taint pass per invocation).  Typed
    #: ``Any`` to keep the engine importable without the flow package.
    flow_cache: Optional[Any] = None

    def find_module(self, rel: str) -> Optional[FileContext]:
        """The context whose package-relative path matches, if scanned."""
        for ctx in self.contexts:
            if ctx.is_module(rel):
                return ctx
        return None


@dataclass
class LintResult:
    """Outcome of one lint run."""

    diagnostics: List[Diagnostic]
    files_checked: int
    suppressed: int
    #: Rule ids that ran, in execution order (schema v2 reports them).
    rule_ids: List[str] = field(default_factory=list)
    #: Wall-clock seconds spent building the whole-project flow
    #: analysis, or ``None`` when no flow rule ran.
    flow_build_seconds: Optional[float] = None

    @property
    def exit_code(self) -> int:
        return 1 if self.diagnostics else 0


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand targets to a sorted, deduplicated list of ``*.py`` files.

    The walk order is pinned to the *resolved* path, not the argument
    order, so finding output is byte-stable no matter how the shell
    expanded a glob (``src/repro/{sim,core}`` vs ``src/repro/{core,sim}``
    produce identical reports).
    """
    by_resolved: Dict[Path, Path] = {}
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = path.rglob("*.py")
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            by_resolved.setdefault(candidate.resolve(), candidate)
    return [by_resolved[key] for key in sorted(by_resolved)]


def _module_parts(path: Path, root: Path) -> Tuple[str, ...]:
    parts = path.resolve().parts
    if "repro" in parts:
        index = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        return parts[index:]
    try:
        return path.resolve().relative_to(root.resolve()).parts
    except ValueError:
        return (path.name,)


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse(path: Path, root: Path) -> Tuple[Optional[FileContext], Optional[Diagnostic]]:
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, Diagnostic(display, 1, 0, PARSE_ERROR, f"unreadable file: {exc}")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, Diagnostic(
            display, exc.lineno or 1, exc.offset or 0, PARSE_ERROR,
            f"syntax error: {exc.msg}",
        )
    ctx = FileContext(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        suppressions=SuppressionIndex.from_source(source),
        module=_module_parts(path, root),
    )
    return ctx, None


def lint_paths(
    paths: Sequence[PathInput],
    rule_ids: Optional[Sequence[str]] = None,
    root: Optional[PathInput] = None,
) -> LintResult:
    """Lint files/directories and return sorted, suppression-filtered findings.

    Parameters
    ----------
    paths:
        Files or directories (recursed for ``*.py``).
    rule_ids:
        Optional subset of rule ids to run (default: all registered).
    root:
        Base used to classify files that do not live under a ``repro``
        package directory; defaults to the current working directory.
    """
    base = Path(root) if root is not None else Path.cwd()
    rules: List[Rule]
    if rule_ids is None:
        rules = all_rules()
    else:
        rules = [get_rule(rule_id) for rule_id in rule_ids]

    project = Project()
    raw: List[Diagnostic] = []
    files = _collect_files([Path(p) for p in paths])
    for path in files:
        ctx, error = _parse(path, base)
        if error is not None:
            raw.append(error)
        if ctx is not None:
            project.contexts.append(ctx)

    for ctx in project.contexts:
        for rule in rules:
            raw.extend(rule.check_file(ctx))
    for rule in rules:
        raw.extend(rule.check_project(project))

    by_display = {ctx.display_path: ctx for ctx in project.contexts}
    kept: List[Diagnostic] = []
    suppressed = 0
    for diag in raw:
        ctx = by_display.get(diag.path)
        if (
            ctx is not None
            and diag.rule_id != PARSE_ERROR
            and ctx.suppressions.is_suppressed(diag.rule_id, diag.line)
        ):
            suppressed += 1
            continue
        kept.append(diag)
    kept.sort()
    return LintResult(
        diagnostics=kept,
        files_checked=len(files),
        suppressed=suppressed,
        rule_ids=[rule.rule_id for rule in rules],
        flow_build_seconds=getattr(project.flow_cache, "build_seconds", None),
    )
