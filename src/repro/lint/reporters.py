"""Text and JSON rendering of a :class:`~repro.lint.engine.LintResult`."""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.lint.engine import LintResult

#: Schema version of the JSON report; bump on breaking shape changes.
JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines = [diag.render() for diag in result.diagnostics]
    noun = "finding" if len(result.diagnostics) == 1 else "findings"
    summary = (
        f"{len(result.diagnostics)} {noun} in {result.files_checked} "
        f"file(s) ({result.suppressed} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable schema, sorted findings)."""
    payload: Dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "findings": [diag.to_dict() for diag in result.diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
