"""Text, JSON and SARIF rendering of a :class:`~repro.lint.engine.LintResult`."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.engine import PARSE_ERROR, LintResult

#: Schema version of the JSON report; bump on breaking shape changes.
#: v2 added the ``rules`` key (ids that ran); the v1 keys are unchanged,
#: so v1 consumers keep working field-for-field.
JSON_SCHEMA_VERSION = 2

#: SARIF version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """Human-readable report: one finding per line plus a summary."""
    lines = [diag.render() for diag in result.diagnostics]
    noun = "finding" if len(result.diagnostics) == 1 else "findings"
    summary = (
        f"{len(result.diagnostics)} {noun} in {result.files_checked} "
        f"file(s) ({result.suppressed} suppressed)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable schema, sorted findings)."""
    payload: Dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "rules": list(result.rule_ids),
        "findings": [diag.to_dict() for diag in result.diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rule_metadata(result: LintResult) -> List[Dict[str, Any]]:
    """``tool.driver.rules`` entries for every rule that ran (plus E000)."""
    from repro.lint.registry import get_rule

    entries: List[Dict[str, Any]] = []
    for rule_id in result.rule_ids:
        try:
            rule = get_rule(rule_id)
        except KeyError:  # pragma: no cover - ids come from the registry
            continue
        entries.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    if any(diag.rule_id == PARSE_ERROR for diag in result.diagnostics):
        entries.append(
            {
                "id": PARSE_ERROR,
                "shortDescription": {"text": "file failed to parse"},
                "fullDescription": {
                    "text": (
                        "The file could not be read or parsed; none of "
                        "the rules ran on it."
                    )
                },
                "defaultConfiguration": {"level": "error"},
            }
        )
    return entries


def render_sarif(result: LintResult) -> str:
    """SARIF v2.1.0 report (GitHub code-scanning compatible).

    Columns are emitted 1-based per the SARIF spec (the engine's
    diagnostics are 0-based, matching CPython's ``col_offset``).
    """
    rules = _sarif_rule_metadata(result)
    index_of = {entry["id"]: position for position, entry in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for diag in result.diagnostics:
        entry: Dict[str, Any] = {
            "ruleId": diag.rule_id,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col + 1,
                        },
                    }
                }
            ],
        }
        if diag.rule_id in index_of:
            entry["ruleIndex"] = index_of[diag.rule_id]
        results.append(entry)
    payload: Dict[str, Any] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
