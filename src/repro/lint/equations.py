"""Checked-in registry of the paper's equations and algorithms.

This is the source of truth R004 validates docstring citations against.
Keys are canonical citation ids — ``"Eq. 22"`` or ``"Alg. 1"`` — produced
by :func:`parse_citations` from the free-form references that appear in
docstrings (``Eq. (3)-(4)``, ``Algorithm 2``, ``Alg. 1 line 3``, ...).

Two contracts are enforced:

* every citation parsed out of a ``repro/core`` or ``repro/net``
  docstring must name a registered equation (no citing equations the
  paper does not define — the classic reproduction-drift failure);
* every function listed in :data:`REQUIRED_CITATIONS` must exist and
  carry its required citations, so the equation-to-code mapping survives
  refactors.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

#: Equation number -> one-line description (the paper's Sec. III-IV).
EQUATIONS: Dict[str, str] = {
    "Eq. 1": "local execution time t_u^local = c_u / f_u^local",
    "Eq. 2": "local execution energy E_u^local = kappa (f_u^local)^2 c_u",
    "Eq. 3": "uplink SINR gamma_us^j with inter-cell interference",
    "Eq. 4": "achievable uplink rate R_us^j = W log2(1 + gamma)",
    "Eq. 5": "upload time t_us^up = d_u / R_us^j",
    "Eq. 6": "upload energy E_us^up = p_u t_us^up",
    "Eq. 7": "edge execution time t_us^exe = c_u / f_us",
    "Eq. 8": "offload completion time t_us = t_us^up + t_us^exe",
    "Eq. 9": "offload energy E_us = E_us^up",
    "Eq. 10": "per-user offloading utility J_u (weighted savings)",
    "Eq. 11": "system utility J(X, F) = sum_u lam_u J_u",
    "Eq. 12": "the joint JTORA MINLP",
    "Eq. 12b": "binary offloading indicators x_usj",
    "Eq. 12c": "each user holds at most one (server, sub-band) slot",
    "Eq. 12d": "each (server, sub-band) slot serves at most one user",
    "Eq. 12e": "positive CPU share for every attached user",
    "Eq. 12f": "per-server CPU capacity budget",
    "Eq. 16": "utility rewritten with the constant gain term",
    "Eq. 17": "per-user communication-cost coefficient phi_u",
    "Eq. 18": "per-user energy-cost coefficient psi_u",
    "Eq. 19": "J = gain - Gamma(X) - Lambda(X, F) decomposition",
    "Eq. 20": "the CRA sub-problem min_F Lambda(X, F)",
    "Eq. 20a": "the CRA objective sum_s sum_u eta_u / f_us",
    "Eq. 21": "diagonal positive Hessian (CRA convexity)",
    "Eq. 22": "KKT closed-form optimum f*_us = f_s sqrt(eta_u)/sum sqrt(eta_v)",
    "Eq. 23": "optimal computation cost Lambda(X, F*)",
    "Eq. 24": "optimal-value objective J*(X) of the TTSA search",
}

#: Algorithm number -> description (the paper's pseudocode blocks).
ALGORITHMS: Dict[str, str] = {
    "Alg. 1": "TSAJS: threshold-triggered simulated annealing control loop",
    "Alg. 2": "GetNeighborhood: the four-branch move generator",
}

#: Every registered citation id.
KNOWN_CITATIONS: Dict[str, str] = {**EQUATIONS, **ALGORITHMS}

#: module -> {qualified function name -> citations its docstring must carry}.
#: This is the machine-checked equation-to-code map; extend it when new
#: model math lands in ``core/`` or ``net/``.
REQUIRED_CITATIONS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "repro/core/allocation.py": {
        "kkt_allocation": ("Eq. 22",),
        "optimal_allocation_cost": ("Eq. 23",),
        "allocation_cost": ("Eq. 20a",),
    },
    "repro/core/objective.py": {
        "ObjectiveEvaluator.evaluate_assignment": ("Eq. 24",),
        "ObjectiveEvaluator.evaluate": ("Eq. 24",),
        "ObjectiveEvaluator.breakdown": ("Eq. 11",),
    },
    "repro/core/delta.py": {
        "DeltaEvaluator.evaluate_assignment": ("Eq. 24",),
        "DeltaEvaluator.evaluate_move": ("Eq. 24",),
    },
    "repro/core/annealing.py": {
        "ThresholdTriggeredAnnealer.run": ("Alg. 1",),
    },
    "repro/core/scheduler.py": {
        "TsajsScheduler.schedule": ("Alg. 1",),
    },
    "repro/core/neighborhood.py": {
        "NeighborhoodSampler.propose": ("Alg. 2",),
        "NeighborhoodSampler.propose_move": ("Alg. 2",),
    },
    "repro/net/sinr.py": {
        "compute_link_stats": ("Eq. 3", "Eq. 4"),
        "compute_rates": ("Eq. 4",),
    },
}

_EQ_PATTERN = re.compile(
    r"\bEqs?\.?\s*\(?(\d+[a-f]?)\)?(?:\s*[-–]\s*\(?(\d+[a-f]?)\)?)?"
)
_ALG_PATTERN = re.compile(r"\b(?:Algorithm|Alg\.?)\s*(\d+)")


def _expand(start: str, end: str) -> List[str]:
    if start.isdigit() and end.isdigit():
        low, high = int(start), int(end)
        if low < high <= low + 50:
            return [str(n) for n in range(low, high + 1)]
    return [start, end]


def parse_citations(text: str) -> List[str]:
    """Canonical citation ids found in free-form docstring text.

    ``"Eq. (3)-(4)"`` yields ``["Eq. 3", "Eq. 4"]``; ``"Alg. 1 line 3"``
    yields ``["Alg. 1"]``.  Unrecognisable fragments are simply skipped —
    the rule validates what it can parse, it does not guess.
    """
    found: List[str] = []
    for match in _EQ_PATTERN.finditer(text):
        start, end = match.group(1), match.group(2)
        numbers = [start] if end is None else _expand(start, end)
        found.extend(f"Eq. {number}" for number in numbers)
    found.extend(f"Alg. {match.group(1)}" for match in _ALG_PATTERN.finditer(text))
    return found
