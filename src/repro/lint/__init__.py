"""repro.lint — project-specific static analysis for the TSAJS reproduction.

The delta-evaluation fast path (:mod:`repro.core.delta`) is only correct
under invariants the language cannot express: identical float accumulation
order, fully seeded randomness, deterministic iteration, and a faithful
equation-to-code mapping against the paper.  This package enforces those
contracts at commit time with AST-based rules:

======  ==============================================================
R001    no unseeded/global randomness outside ``repro/sim/rng.py``
R002    determinism hazards in delta-contract modules (``core/``, ``net/``)
R003    unit discipline — telecom magic constants must route via ``units.py``
R004    paper traceability — model math must cite a registered equation
R005    float accumulation order — no Python ``sum()`` in ``core/``
R006    config drift — every ``SimulationConfig`` field consumed + documented
======  ==============================================================

Run ``python -m repro.lint src/`` (or ``tsajs lint``).  Suppress a finding
with an inline comment: ``# repro-lint: disable=R003`` (same line, or a
standalone comment on the line above).  See ``docs/linting.md``.
"""

from __future__ import annotations

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import LintResult, Project, lint_paths
from repro.lint.registry import all_rules, get_rule, register
from repro.lint.rules_base import Rule

__all__ = [
    "Diagnostic",
    "LintResult",
    "Project",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "register",
]
