"""File/line-anchored lint diagnostics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding, sortable into a stable (path, line, col, rule) order."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The one-line human-readable form used by the text reporter."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-reporter representation (stable schema, version 1)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
