"""Rule base class and the per-file analysis context."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.suppressions import SuppressionIndex

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.lint.engine import Project


@dataclass
class FileContext:
    """One parsed source file plus the metadata rules need to scope checks.

    ``module`` holds the package-relative path parts starting at the
    ``repro`` package directory (``("repro", "core", "delta.py")``); for
    files outside a ``repro`` directory it holds the path relative to the
    scanned root, so fixture trees behave like the real package when they
    mirror its layout.
    """

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    module: Tuple[str, ...]

    @property
    def module_rel(self) -> str:
        """``"repro/core/delta.py"``-style key used by scoping and registries."""
        return "/".join(self.module)

    def in_subpackage(self, *names: str) -> bool:
        """Whether the file lives under ``repro/<name>/`` for any name."""
        return (
            len(self.module) >= 3
            and self.module[0] == "repro"
            and self.module[1] in names
        )

    def is_module(self, rel: str) -> bool:
        """Exact match against a ``"repro/sim/rng.py"``-style key."""
        return self.module_rel == rel

    def diagnostic(
        self, rule_id: str, node: ast.AST, message: str
    ) -> Diagnostic:
        """A diagnostic anchored at ``node``'s position in this file."""
        return Diagnostic(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=rule_id,
            message=message,
        )

    def diagnostic_at(
        self, rule_id: str, line: int, message: str, col: int = 0
    ) -> Diagnostic:
        """A diagnostic anchored at an explicit line (no AST node in hand)."""
        return Diagnostic(
            path=self.display_path,
            line=line,
            col=col,
            rule_id=rule_id,
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and override :meth:`check_file`
    (run once per file) and/or :meth:`check_project` (run once per lint
    invocation with the whole file set — for cross-file contracts like
    R006's config-drift check).
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Diagnostic]:
        return ()

    def check_project(self, project: "Project") -> Iterable[Diagnostic]:
        return ()

    # Convenience for subclasses.
    def _walk_calls(self, tree: ast.Module) -> Iterator[ast.Call]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield node
