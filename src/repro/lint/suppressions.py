"""Per-rule suppression comments: ``# repro-lint: disable=R001[,R002]``.

A suppression comment at the end of a code line silences the named rules
on that line.  A comment that *is* the whole line silences them on the
comment line and on the next line, so block-unfriendly statements can be
annotated from above::

    # repro-lint: disable=R003 — display-only scaling, not a unit conversion
    mbps = rate / 1e6

Suppressions are rule-scoped on purpose: there is no blanket "disable
everything here" form, so every silenced finding names what it silences.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Set

_DIRECTIVE = re.compile(r"repro-lint:\s*disable=([A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)")


class SuppressionIndex:
    """Maps line numbers to the set of rule ids suppressed there."""

    def __init__(self, by_line: Dict[int, Set[str]]) -> None:
        self._by_line = {line: frozenset(rules) for line, rules in by_line.items()}

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Scan comment tokens; never raises (a token error yields no-ops)."""
        by_line: Dict[int, Set[str]] = {}
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return cls(by_line)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")}
            line, col = token.start
            by_line.setdefault(line, set()).update(rules)
            standalone = source.splitlines()[line - 1][:col].strip() == ""
            if standalone:
                by_line.setdefault(line + 1, set()).update(rules)
        return cls(by_line)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules: FrozenSet[str] = self._by_line.get(line, frozenset())
        return rule_id in rules

    def __len__(self) -> int:
        return len(self._by_line)
