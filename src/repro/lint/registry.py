"""Rule registry: rules self-register via the :func:`register` decorator."""

from __future__ import annotations

from typing import Dict, List, Type, TypeVar

from repro.lint.rules_base import Rule

_REGISTRY: Dict[str, Type[Rule]] = {}

R = TypeVar("R", bound=Type[Rule])


def register(cls: R) -> R:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} must set rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def _load_builtin_rules() -> None:
    # Importing the package triggers every rule module's register() call.
    import repro.lint.rules  # noqa: F401


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by id (raises ``KeyError`` if unknown)."""
    _load_builtin_rules()
    return _REGISTRY[rule_id]()
