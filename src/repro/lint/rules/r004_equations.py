"""R004 — paper traceability for the model math in ``core/`` and ``net/``.

Every equation reference written in a docstring must name an equation
the paper actually defines (validated against the checked-in registry in
:mod:`repro.lint.equations`), and the functions that *implement* model
math must say which equation they implement.  The second half is a
project-wide contract: :data:`~repro.lint.equations.REQUIRED_CITATIONS`
maps modules to the functions that must cite, so a refactor that drops a
docstring — or renames a function out from under its citation — fails
the lint run instead of silently orphaning the paper mapping.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import iter_docstrings, qualified_functions
from repro.lint.diagnostics import Diagnostic
from repro.lint.equations import (
    KNOWN_CITATIONS,
    REQUIRED_CITATIONS,
    parse_citations,
)
from repro.lint.registry import register
from repro.lint.rules_base import FileContext, Rule

if False:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.lint.engine import Project


@register
class EquationTraceabilityRule(Rule):
    rule_id = "R004"
    title = "docstring citations must match the paper-equation registry"
    rationale = (
        "Citing an equation the paper does not define, or shipping model "
        "math without its Eq./Algorithm reference, breaks the audited "
        "code-to-paper mapping the reproduction is graded on."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_subpackage("core", "net"):
            return
        for node, doc, line in iter_docstrings(ctx.tree):
            if not doc:
                continue
            for citation in parse_citations(doc):
                if citation not in KNOWN_CITATIONS:
                    yield ctx.diagnostic_at(
                        self.rule_id,
                        line,
                        f"docstring cites '{citation}', which is not in "
                        "the paper-equation registry "
                        "(repro/lint/equations.py)",
                    )

    def check_project(self, project: "Project") -> Iterator[Diagnostic]:
        for module_rel, required in sorted(REQUIRED_CITATIONS.items()):
            ctx = project.find_module(module_rel)
            if ctx is None:
                # Module not part of this lint invocation; the meta-test
                # lints all of src/, which covers the full registry.
                continue
            functions = dict(qualified_functions(ctx.tree))
            for qualname, citations in sorted(required.items()):
                node = functions.get(qualname)
                if node is None:
                    yield ctx.diagnostic_at(
                        self.rule_id,
                        1,
                        f"registered function '{qualname}' is missing; "
                        "update REQUIRED_CITATIONS in "
                        "repro/lint/equations.py if it was renamed",
                    )
                    continue
                doc = ast.get_docstring(node, clean=False) or ""
                present = set(parse_citations(doc))
                for citation in citations:
                    if citation not in present:
                        yield ctx.diagnostic(
                            self.rule_id,
                            node,
                            f"'{qualname}' implements "
                            f"{KNOWN_CITATIONS[citation]} but its "
                            f"docstring does not cite '{citation}'",
                        )
