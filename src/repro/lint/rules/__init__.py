"""Built-in rule modules.

Importing this package registers every rule with the global registry;
each module calls :func:`repro.lint.registry.register` at import time.

R001-R008 are per-file AST rules; R009-R012 are flow rules built on the
whole-project analysis in :mod:`repro.lint.flow`.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401
    r001_seeded_rng,
    r002_determinism,
    r003_units,
    r004_equations,
    r005_accumulation,
    r006_config_drift,
    r007_exceptions,
    r008_telemetry,
    r009_rng_aliasing,
    r010_pool_capture,
    r011_unordered_reduction,
    r012_telemetry_purity,
)

__all__ = [
    "r001_seeded_rng",
    "r002_determinism",
    "r003_units",
    "r004_equations",
    "r005_accumulation",
    "r006_config_drift",
    "r007_exceptions",
    "r008_telemetry",
    "r009_rng_aliasing",
    "r010_pool_capture",
    "r011_unordered_reduction",
    "r012_telemetry_purity",
]
