"""Built-in rule modules.

Importing this package registers every rule with the global registry;
each module calls :func:`repro.lint.registry.register` at import time.
"""

from __future__ import annotations

from repro.lint.rules import (  # noqa: F401
    r001_seeded_rng,
    r002_determinism,
    r003_units,
    r004_equations,
    r005_accumulation,
    r006_config_drift,
    r007_exceptions,
    r008_telemetry,
)

__all__ = [
    "r001_seeded_rng",
    "r002_determinism",
    "r003_units",
    "r004_equations",
    "r005_accumulation",
    "r006_config_drift",
    "r007_exceptions",
    "r008_telemetry",
]
