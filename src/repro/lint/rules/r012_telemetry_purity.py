"""R012 — telemetry emission must be pure (no draws, no mutation).

The observability contract (docs/observability.md, enforced per-file by
R008) is that recording *observes* the run: enabling tracing must not
change a single bit of any trajectory.  Two inter-procedural leaks can
break that even when every file looks clean in isolation:

1. an emission argument that *computes* its value by drawing from an
   RNG (``rec.event("x", jitter=rng.random())``) — the draw happens
   only on the traced run, desynchronising every later draw;
2. an emission argument that calls a mutating evaluator method
   (``rec.gauge_set("obj", evaluator.evaluate(...))`` where ``evaluate``
   restages internal arrays) — traced runs mutate state untraced runs
   do not;
3. an RNG draw guarded by a recorder enable flag
   (``if rec.enabled: x = rng.random()``) — the flow layer tracks
   ``rec.enabled`` / ``rec.iteration_detail`` reads as boolean taint
   through assignments (``tracing = rec.enabled``), so draws under any
   derived guard are caught too.

The flow layer supplies both sides: ``RECORDER`` taint identifies the
emission receivers (``get_recorder()`` results and ``Recorder``-
annotated parameters, through locals and re-assignments), and ``RNG``
taint identifies the streams.  Precomputing the value on both paths and
emitting the precomputed name is always clean.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import Project
from repro.lint.flow import analyze_project
from repro.lint.flow.taint import ENABLED_FLAG, FunctionTaint, TaintAnalysis
from repro.lint.registry import register
from repro.lint.rules_base import Rule

#: Evaluator methods that mutate internal state when called.
MUTATING_EVALUATOR_METHODS = {
    "evaluate",
    "evaluate_move",
    "evaluate_batch",
    "commit",
    "rebuild",
    "stage",
    "apply",
}


@register
class TelemetryPurityRule(Rule):
    rule_id = "R012"
    title = "telemetry emission paths must not draw RNG or mutate state"
    rationale = (
        "Tracing must be bitwise-invisible: an RNG draw or evaluator "
        "mutation inside an emission argument (or under a recorder "
        "enable flag) runs only on traced runs and diverges every "
        "subsequent draw — precompute on both paths and emit the value."
    )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        analysis = analyze_project(project)
        taint = analysis.taint
        for qualified in sorted(taint.functions):
            fnt = taint.functions[qualified]
            yield from self._check_emission_args(taint, fnt)
            yield from self._check_guarded_draws(taint, fnt)

    # ------------------------------------------------------------------

    def _check_emission_args(
        self, taint: TaintAnalysis, fnt: FunctionTaint
    ) -> Iterator[Diagnostic]:
        for record in fnt.calls:
            call = record.node
            if not taint.is_emission(fnt, call):
                continue
            for arg in self._argument_exprs(call):
                for inner in ast.walk(arg):
                    if not isinstance(inner, ast.Call):
                        continue
                    if taint.is_rng_draw(fnt, inner):
                        yield fnt.info.ctx.diagnostic(
                            self.rule_id,
                            inner,
                            "RNG draw inside a telemetry emission "
                            "argument; the draw happens only when "
                            "tracing, desynchronising the stream — "
                            "precompute the value on both paths",
                        )
                    elif (
                        isinstance(inner.func, ast.Attribute)
                        and inner.func.attr in MUTATING_EVALUATOR_METHODS
                    ):
                        yield fnt.info.ctx.diagnostic(
                            self.rule_id,
                            inner,
                            f"call to mutating method "
                            f"'.{inner.func.attr}()' inside a telemetry "
                            "emission argument; traced runs would mutate "
                            "state untraced runs do not — emit a "
                            "precomputed value",
                        )

    def _check_guarded_draws(
        self, taint: TaintAnalysis, fnt: FunctionTaint
    ) -> Iterator[Diagnostic]:
        for node in fnt.cfg.statements():
            stmt = node.stmt
            if not isinstance(stmt, ast.If):
                continue
            if ENABLED_FLAG not in taint.kinds_of(fnt, stmt.test):
                continue
            for body_stmt in stmt.body:
                for inner in ast.walk(body_stmt):
                    if isinstance(inner, ast.Call) and taint.is_rng_draw(
                        fnt, inner
                    ):
                        yield fnt.info.ctx.diagnostic(
                            self.rule_id,
                            inner,
                            "RNG draw guarded by a recorder enable flag; "
                            "the draw happens only when tracing is on, "
                            "so traced and untraced runs diverge — move "
                            "the draw outside the guard",
                        )

    @staticmethod
    def _argument_exprs(call: ast.Call) -> List[ast.expr]:
        return list(call.args) + [kw.value for kw in call.keywords]
