"""R002 — determinism hazards in the hot algorithmic packages.

``repro/core`` and ``repro/net`` carry a bitwise-equality contract: the
DeltaEvaluator must reproduce the ObjectiveEvaluator's trajectories
bit-for-bit, and golden trajectories are pinned across machines.  The
sweep executors (``repro/sim/executors/``) and the result cache
(``repro/experiments/cache.py``) carry the distributed half of the same
contract — every backend and a warm cache must reproduce the serial run
byte-for-byte — so they are held to the same rules.  Three constructs
break that quietly:

* iterating a ``set`` — Python sets hash-order their elements, and the
  order varies with insertion history and ``PYTHONHASHSEED``; any
  float accumulation driven by such a loop is run-order dependent.
  Wrap the iterable in ``sorted(...)``.
* wall-clock reads (``time.time``, ``datetime.now``, ...) feeding
  algorithm state.  ``time.perf_counter`` is exempt: the codebase uses
  it for telemetry only, never for decisions.
* environment reads (``os.environ``, ``os.getenv``) — hidden inputs
  that do not appear in ``SimulationConfig`` or the result provenance.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.astutil import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import register
from repro.lint.rules_base import FileContext, Rule

_WALL_CLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "datetime", "now"),
    ("datetime", "datetime", "utcnow"),
    ("datetime", "datetime", "today"),
    ("datetime", "date", "today"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("date", "today"),
}


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name == ("set",) or name == ("frozenset",)
    return False


def _set_names(scope: ast.AST) -> Set[str]:
    """Names assigned a set literal/call/comprehension inside ``scope``."""
    names: Set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_set_expr(node.value) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@register
class DeterminismRule(Rule):
    rule_id = "R002"
    title = "no determinism hazards in core/, net/, executors and cache"
    rationale = (
        "Hash-ordered set iteration, wall-clock reads and environment "
        "lookups make trajectories machine-dependent, violating the "
        "bitwise delta/objective equivalence contract (and the "
        "backend/cache byte-identity contract); sort iterables and "
        "thread explicit config instead."
    )

    def _in_scope(self, ctx: FileContext) -> bool:
        return (
            ctx.in_subpackage("core", "net")
            or ctx.module_rel.startswith("repro/sim/executors/")
            or ctx.is_module("repro/experiments/cache.py")
        )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not self._in_scope(ctx):
            return
        yield from self._check_set_iteration(ctx)
        yield from self._check_wall_clock(ctx)
        yield from self._check_environ(ctx)

    def _check_set_iteration(self, ctx: FileContext) -> Iterator[Diagnostic]:
        seen: Set[int] = set()
        for scope in _scopes(ctx.tree):
            local_sets = _set_names(scope)
            for node in ast.walk(scope):
                if not isinstance(node, (ast.For, ast.comprehension)):
                    continue
                if id(node) in seen:
                    continue
                target = node.iter
                hazardous = _is_set_expr(target) or (
                    isinstance(target, ast.Name) and target.id in local_sets
                )
                if hazardous:
                    seen.add(id(node))
                    anchor = node if isinstance(node, ast.For) else target
                    yield ctx.diagnostic(
                        self.rule_id,
                        anchor,
                        "iteration over a set is hash-ordered and varies "
                        "across runs; wrap the iterable in sorted(...)",
                    )

    def _check_wall_clock(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for call in self._walk_calls(ctx.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            if name in _WALL_CLOCK:
                yield ctx.diagnostic(
                    self.rule_id,
                    call,
                    f"wall-clock call '{'.'.join(name)}()' injects "
                    "machine-local time into algorithm code; only "
                    "time.perf_counter() telemetry is allowed here",
                )

    def _check_environ(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "environ":
                base = dotted_name(node.value)
                if base == ("os",):
                    yield ctx.diagnostic(
                        self.rule_id,
                        node,
                        "os.environ read in algorithm code is a hidden "
                        "input; thread it through SimulationConfig",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name == ("os", "getenv"):
                    yield ctx.diagnostic(
                        self.rule_id,
                        node,
                        "os.getenv read in algorithm code is a hidden "
                        "input; thread it through SimulationConfig",
                    )
