"""R011 — float reductions must not consume unordered iterables.

Floating-point addition is not associative: summing the same values in
a different order changes the last bits, and the golden-trajectory and
resume-equality suites compare *bits*.  R005 already bans scalar
accumulation inside ``core/``; this rule closes the gap everywhere else
by following *where the iterable came from*.  The flow layer taints
inherently unordered producers —

* ``set``/``frozenset`` displays, constructors and comprehensions,
* ``concurrent.futures.as_completed`` (completion order is scheduling),
* ``os.listdir`` / ``os.scandir`` / ``glob`` / ``Path.iterdir``
  (directory order is filesystem-dependent),

— and tracks the taint through assignments, ``list()``/``enumerate()``
wrappers and comprehensions (which all *preserve* the unordered order);
``sorted(...)`` cleanses it.  The rule fires on:

1. a reduction call (``sum``, ``math.fsum``, ``np.sum``/``mean``/
   ``std``/``var``/``prod``/``median``, ``np.add.reduce``) whose
   argument carries the unordered taint;
2. an arithmetic accumulation (``total += ...`` / ``total *= ...``)
   inside a ``for`` loop iterating an unordered-tainted expression —
   the parallel-gather idiom ``for fut in as_completed(...): s += ...``.

Fix by pinning the order first: ``sorted(...)`` with a total key, or
gather parallel results into an index-addressed list and reduce that.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import Project
from repro.lint.flow import analyze_project
from repro.lint.flow.taint import UNORDERED, FunctionTaint, TaintAnalysis
from repro.lint.registry import register
from repro.lint.rules_base import Rule

#: Resolved dotted targets of order-sensitive reduction callables.
REDUCTIONS = {
    ("sum",),
    ("math", "fsum"),
    ("fsum",),
    ("np", "sum"),
    ("np", "mean"),
    ("np", "std"),
    ("np", "var"),
    ("np", "prod"),
    ("np", "median"),
    ("np", "average"),
    ("numpy", "sum"),
    ("numpy", "mean"),
    ("numpy", "std"),
    ("numpy", "var"),
    ("numpy", "prod"),
    ("numpy", "median"),
    ("numpy", "average"),
    ("np", "add", "reduce"),
    ("numpy", "add", "reduce"),
}


@register
class UnorderedReductionRule(Rule):
    rule_id = "R011"
    title = "pin iteration order before float reductions"
    rationale = (
        "Float addition is not associative, so reducing a set / "
        "as_completed / directory-listing iterable produces order-"
        "dependent bits; sort (with a total key) or gather into an "
        "index-addressed list first."
    )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        analysis = analyze_project(project)
        taint = analysis.taint
        for qualified in sorted(taint.functions):
            fnt = taint.functions[qualified]
            yield from self._check_reduction_calls(taint, fnt)
            yield from self._check_loop_accumulation(taint, fnt)

    # ------------------------------------------------------------------

    def _check_reduction_calls(
        self, taint: TaintAnalysis, fnt: FunctionTaint
    ) -> Iterator[Diagnostic]:
        for record in fnt.calls:
            call = record.node
            name = dotted_name(call.func)
            if name not in REDUCTIONS or not call.args:
                continue
            if UNORDERED in taint.kinds_of(fnt, call.args[0]):
                pretty = ".".join(name)
                yield fnt.info.ctx.diagnostic(
                    self.rule_id,
                    call,
                    f"{pretty}() reduces an unordered iterable; float "
                    "accumulation order would depend on hash/scheduling/"
                    "filesystem order — sort the operands (total key) "
                    "or gather into an index-addressed array first",
                )

    def _check_loop_accumulation(
        self, taint: TaintAnalysis, fnt: FunctionTaint
    ) -> Iterator[Diagnostic]:
        for node in fnt.cfg.statements():
            stmt = node.stmt
            if not isinstance(stmt, (ast.For, ast.AsyncFor)):
                continue
            if UNORDERED not in taint.kinds_of(fnt, stmt.iter):
                continue
            for accumulation in self._arith_augassigns(stmt):
                yield fnt.info.ctx.diagnostic(
                    self.rule_id,
                    accumulation,
                    "arithmetic accumulation inside a loop over an "
                    "unordered iterable (set/as_completed/directory "
                    "listing); iteration order is not pinned, so the "
                    "accumulated bits are not reproducible — sort the "
                    "iterable or store per-index results and reduce",
                )

    @staticmethod
    def _arith_augassigns(loop: ast.stmt) -> Iterator[ast.AugAssign]:
        body = getattr(loop, "body", [])
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    yield node
