"""R006 — every ``SimulationConfig`` field must be consumed and documented.

A config field nobody reads is worse than dead code: experiments sweep
it, papers report it, and it silently changes nothing.  This project
rule parses the dataclass fields out of ``repro/sim/config.py``, then
requires each field to be

* **consumed** — read as an attribute somewhere in the scanned tree
  (outside ``config.py``'s own plumbing, and not via bare ``self.X``,
  which would let an unrelated same-named attribute mask the drift).
  The config class's derived accessors count as aliases: if downstream
  code reads ``config.tx_power_watts``, the ``tx_power_dbm`` field that
  property converts is consumed through it — resolved transitively, so
  an accessor chain nobody reads still flags its underlying fields; and
* **documented** — mentioned in ``docs/api.md`` next to the repo root.

Diagnostics anchor at the field's declaration line in ``config.py``.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, Optional, Set

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import register
from repro.lint.rules_base import FileContext, Rule

if False:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.lint.engine import Project

CONFIG_MODULE = "repro/sim/config.py"
CONFIG_CLASS = "SimulationConfig"

#: Methods on the config class itself whose reads are plumbing, not
#: consumption (validation and copying touch every field by design).
_PLUMBING_METHODS = {"__post_init__", "replace", "validate"}


def _config_fields(tree: ast.Module) -> Dict[str, int]:
    """Field name -> declaration line for the config dataclass."""
    fields: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    fields[item.target.id] = item.lineno
    return fields


def _attribute_reads(ctx: FileContext, skip_plumbing: bool) -> Set[str]:
    """Attribute names read in this file, minus bare ``self.X`` access."""
    skip_nodes: Set[int] = set()
    if skip_plumbing:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) and (
                node.name in _PLUMBING_METHODS
            ):
                for child in ast.walk(node):
                    skip_nodes.add(id(child))
    reads: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if id(node) in skip_nodes:
            continue
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                continue
            reads.add(node.attr)
    return reads


def _member_self_reads(tree: ast.Module) -> Dict[str, Set[str]]:
    """Config-class member name -> ``self.X`` attribute names it reads.

    These are the derived-accessor aliases (``tx_power_watts`` reads
    ``self.tx_power_dbm``); plumbing methods are excluded.
    """
    members: Dict[str, Set[str]] = {}
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS):
            continue
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name in _PLUMBING_METHODS:
                continue
            reads: Set[str] = set()
            for child in ast.walk(item):
                if (
                    isinstance(child, ast.Attribute)
                    and isinstance(child.value, ast.Name)
                    and child.value.id == "self"
                ):
                    reads.add(child.attr)
            members[item.name] = reads
    return members


def _close_over_aliases(
    consumed: Set[str], members: Dict[str, Set[str]]
) -> Set[str]:
    """Fixpoint: reads made by a consumed accessor are themselves consumed."""
    closed = set(consumed)
    changed = True
    while changed:
        changed = False
        for name, reads in members.items():
            if name in closed and not reads <= closed:
                closed |= reads
                changed = True
    return closed


def _find_docs(config_path: Path) -> Optional[Path]:
    for parent in config_path.resolve().parents:
        candidate = parent / "docs" / "api.md"
        if candidate.is_file():
            return candidate
    return None


@register
class ConfigDriftRule(Rule):
    rule_id = "R006"
    title = "SimulationConfig fields must be consumed and documented"
    rationale = (
        "An unread or undocumented config field silently no-ops every "
        "experiment that sweeps it; wire the field into the simulation "
        "and document it in docs/api.md, or delete it."
    )

    def check_project(self, project: "Project") -> Iterator[Diagnostic]:
        config_ctx = project.find_module(CONFIG_MODULE)
        if config_ctx is None:
            return
        fields = _config_fields(config_ctx.tree)
        if not fields:
            return

        consumed: Set[str] = set()
        for ctx in project.contexts:
            consumed |= _attribute_reads(
                ctx, skip_plumbing=ctx is config_ctx
            )
        consumed = _close_over_aliases(
            consumed, _member_self_reads(config_ctx.tree)
        )

        docs_path = _find_docs(config_ctx.path)
        docs_text = (
            docs_path.read_text(encoding="utf-8") if docs_path else ""
        )

        for name, line in sorted(fields.items()):
            if name not in consumed:
                yield config_ctx.diagnostic_at(
                    self.rule_id,
                    line,
                    f"config field '{name}' is never read outside "
                    "config plumbing; wire it in or delete it",
                )
            if docs_path is not None and name not in docs_text:
                yield config_ctx.diagnostic_at(
                    self.rule_id,
                    line,
                    f"config field '{name}' is not documented in "
                    f"{docs_path.name} (docs/api.md)",
                )
