"""R008 — telemetry discipline: time/print go through ``repro.obs``.

``repro/core``, ``repro/sim`` and ``repro/experiments`` must not read
clocks or write to stdout directly:

* **Timing** belongs to the :mod:`repro.obs.clock` seam.  Ad-hoc
  ``time.perf_counter()`` pairs cannot be injected with a deterministic
  :class:`~repro.obs.clock.TickClock` in tests, and scattered
  ``time.sleep`` calls (retry backoff) dodge the same seam.  Use
  :class:`~repro.obs.clock.Stopwatch` and
  :func:`~repro.obs.clock.sleep`.
* **Output** belongs to the recorder.  A ``print()`` buried in
  algorithm or runner code interleaves with the CLI's rendering, is
  invisible to trace consumers, and breaks machine-readable output
  modes.  Emit a :meth:`~repro.obs.recorder.Recorder.event` (or return
  the data) instead; user-facing printing lives in ``repro/cli.py`` and
  the report renderers.

The rule flags ``import time`` / ``from time import ...`` and any
``time.*`` or ``print`` call in the scoped packages.  ``repro/obs``
itself is out of scope — it is the one place allowed to touch
:mod:`time`.
"""

from __future__ import annotations

from typing import Iterator

import ast

from repro.lint.astutil import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import register
from repro.lint.rules_base import FileContext, Rule


@register
class TelemetryDisciplineRule(Rule):
    rule_id = "R008"
    title = "time/print in core, sim and experiments go through repro.obs"
    rationale = (
        "Direct time.* calls bypass the injectable clock seam (so tests "
        "cannot make timing deterministic) and print() bypasses the "
        "recorder (so traces and machine-readable output miss it); use "
        "repro.obs.clock.Stopwatch / sleep and recorder events instead."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_subpackage("core", "sim", "experiments"):
            return
        yield from self._check_imports(ctx)
        yield from self._check_calls(ctx)

    def _check_imports(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time" or alias.name.startswith("time."):
                        yield ctx.diagnostic(
                            self.rule_id,
                            node,
                            "direct 'import time' bypasses the repro.obs "
                            "clock seam; use repro.obs.clock (Stopwatch, "
                            "sleep, monotonic) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    yield ctx.diagnostic(
                        self.rule_id,
                        node,
                        "direct 'from time import ...' bypasses the "
                        "repro.obs clock seam; use repro.obs.clock "
                        "(Stopwatch, sleep, monotonic) instead",
                    )

    def _check_calls(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for call in self._walk_calls(ctx.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            if len(name) >= 2 and name[0] == "time":
                yield ctx.diagnostic(
                    self.rule_id,
                    call,
                    f"'{'.'.join(name)}()' reads the clock directly; go "
                    "through repro.obs.clock so tests can inject a "
                    "deterministic TickClock",
                )
            elif name == ("print",):
                yield ctx.diagnostic(
                    self.rule_id,
                    call,
                    "print() in algorithm/runner code bypasses the "
                    "recorder; emit a recorder event or return the data "
                    "(printing belongs to the CLI layer)",
                )
