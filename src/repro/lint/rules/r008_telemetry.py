"""R008 — telemetry discipline: time/print go through ``repro.obs``.

``repro/core``, ``repro/sim`` and ``repro/experiments`` must not read
clocks or write to stdout directly:

* **Timing** belongs to the :mod:`repro.obs.clock` seam.  Ad-hoc
  ``time.perf_counter()`` pairs cannot be injected with a deterministic
  :class:`~repro.obs.clock.TickClock` in tests, and scattered
  ``time.sleep`` calls (retry backoff) dodge the same seam.  Use
  :class:`~repro.obs.clock.Stopwatch` and
  :func:`~repro.obs.clock.sleep`.
* **Output** belongs to the recorder.  A ``print()`` buried in
  algorithm or runner code interleaves with the CLI's rendering, is
  invisible to trace consumers, and breaks machine-readable output
  modes.  Emit a :meth:`~repro.obs.recorder.Recorder.event` (or return
  the data) instead; user-facing printing lives in ``repro/cli.py`` and
  the report renderers.

The rule flags ``import time`` / ``from time import ...`` and any
``time.*`` or ``print`` call in the scoped packages.  ``repro/obs``
itself is out of scope for the timing checks — it is the one place
allowed to touch :mod:`time`.

A third check covers **telemetry file writes**: inside ``repro/obs``
and ``repro/sim/executors`` — the packages that publish trace shards,
merged traces, and queue protocol files other processes read
concurrently — a direct ``open(..., "w")`` (or ``.write_text()`` /
``.write_bytes()``) produces files that can be observed half-written.
Everything these packages write must go through :mod:`repro.atomicio`
(``atomic_write_text`` / ``atomic_write_json`` /
:class:`~repro.atomicio.AtomicLineWriter`), which publishes via
temp-file + rename so readers only ever see complete files.  Read-mode
``open`` calls are untouched, and :mod:`repro.atomicio` itself is out
of scope (it is the sanctioned implementation).
"""

from __future__ import annotations

from typing import Iterator

import ast

from repro.lint.astutil import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import register
from repro.lint.rules_base import FileContext, Rule


@register
class TelemetryDisciplineRule(Rule):
    rule_id = "R008"
    title = "time/print/file-writes in scoped packages go through repro.obs"
    rationale = (
        "Direct time.* calls bypass the injectable clock seam (so tests "
        "cannot make timing deterministic), print() bypasses the "
        "recorder (so traces and machine-readable output miss it), and "
        "direct open()-for-write in the telemetry/executor packages "
        "publishes files other processes can observe half-written; use "
        "repro.obs.clock.Stopwatch / sleep, recorder events, and "
        "repro.atomicio writers instead."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.in_subpackage("core", "sim", "experiments"):
            yield from self._check_imports(ctx)
            yield from self._check_calls(ctx)
        if self._in_write_scope(ctx):
            yield from self._check_writes(ctx)

    @staticmethod
    def _in_write_scope(ctx: FileContext) -> bool:
        """Packages whose on-disk output other processes read concurrently."""
        if ctx.in_subpackage("obs"):
            return True
        return len(ctx.module) >= 4 and ctx.module[:3] == (
            "repro",
            "sim",
            "executors",
        )

    def _check_imports(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time" or alias.name.startswith("time."):
                        yield ctx.diagnostic(
                            self.rule_id,
                            node,
                            "direct 'import time' bypasses the repro.obs "
                            "clock seam; use repro.obs.clock (Stopwatch, "
                            "sleep, monotonic) instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    yield ctx.diagnostic(
                        self.rule_id,
                        node,
                        "direct 'from time import ...' bypasses the "
                        "repro.obs clock seam; use repro.obs.clock "
                        "(Stopwatch, sleep, monotonic) instead",
                    )

    def _check_calls(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for call in self._walk_calls(ctx.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            if len(name) >= 2 and name[0] == "time":
                yield ctx.diagnostic(
                    self.rule_id,
                    call,
                    f"'{'.'.join(name)}()' reads the clock directly; go "
                    "through repro.obs.clock so tests can inject a "
                    "deterministic TickClock",
                )
            elif name == ("print",):
                yield ctx.diagnostic(
                    self.rule_id,
                    call,
                    "print() in algorithm/runner code bypasses the "
                    "recorder; emit a recorder event or return the data "
                    "(printing belongs to the CLI layer)",
                )

    def _check_writes(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for call in self._walk_calls(ctx.tree):
            name = dotted_name(call.func)
            if name == ("open",) and self._open_mode_writes(call):
                yield ctx.diagnostic(
                    self.rule_id,
                    call,
                    "open() for writing in a telemetry/executor package "
                    "can be observed half-written by concurrent readers; "
                    "publish atomically via repro.atomicio "
                    "(atomic_write_* or AtomicLineWriter)",
                )
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in ("write_text", "write_bytes")
            ):
                yield ctx.diagnostic(
                    self.rule_id,
                    call,
                    f".{call.func.attr}() in a telemetry/executor package "
                    "can be observed half-written by concurrent readers; "
                    "publish atomically via repro.atomicio "
                    "(atomic_write_* or AtomicLineWriter)",
                )

    @staticmethod
    def _open_mode_writes(call: ast.Call) -> bool:
        """Whether an ``open()`` call's mode argument is a write mode.

        Only literal modes are judged (a computed mode cannot be checked
        statically); a missing mode is read-only by default.
        """
        mode_node: object = None
        if len(call.args) >= 2:
            mode_node = call.args[1]
        else:
            for keyword in call.keywords:
                if keyword.arg == "mode":
                    mode_node = keyword.value
                    break
        if not isinstance(mode_node, ast.Constant):
            return False
        mode = mode_node.value
        if not isinstance(mode, str):
            return False
        return any(flag in mode for flag in ("w", "a", "x", "+"))
