"""R007 — no bare ``except:`` and no silently-swallowed exceptions.

The resilient experiment harness deliberately catches broad exception
classes — but it always *records* them (a failure entry, a retry, a log
line).  Two patterns defeat that discipline and hide real failures:

* ``except:`` — also traps ``KeyboardInterrupt`` / ``SystemExit``, so a
  Ctrl-C mid-sweep can be eaten by a loop that was meant to survive a
  flaky worker;
* a handler for ``Exception`` / ``BaseException`` (or a bare handler)
  whose body is only ``pass`` / ``...`` — the crash evaporates without a
  failure record, and a sweep "succeeds" with silently-missing seeds.

Narrow handlers (``except KeyError: pass``) stay legal: ignoring one
specific, anticipated condition is a decision, not a hole.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import register
from repro.lint.rules_base import FileContext, Rule

#: Exception names whose silent swallowing hides arbitrary failures.
_BROAD_NAMES = {("Exception",), ("BaseException",)}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except Exception`` and ``except BaseException``.

    Tuples count when any member is broad (``except (ValueError,
    Exception)`` swallows everything the broad member does).
    """
    if handler.type is None:
        return True
    candidates = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for candidate in candidates:
        if dotted_name(candidate) in _BROAD_NAMES:
            return True
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing but ``pass`` / ``...``."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            # Docstrings and bare `...` are still "doing nothing".
            continue
        return False
    return True


@register
class ExceptionHygieneRule(Rule):
    rule_id = "R007"
    title = "no bare except and no silently-swallowed broad exceptions"
    rationale = (
        "A bare except traps KeyboardInterrupt/SystemExit, and a broad "
        "handler that only passes erases failures without a record — "
        "both turn crashed seeds into silently-missing data in a sweep."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    "bare 'except:' also catches KeyboardInterrupt and "
                    "SystemExit; name the exception class (at most "
                    "'except Exception')",
                )
            elif _is_broad(node) and _swallows(node):
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    "broad exception handler silently swallows the error; "
                    "record it (failure entry, log, re-raise) or narrow "
                    "the exception class",
                )
