"""R003 — telecom unit conversions belong in ``repro/units.py``.

The paper mixes dB/dBm link budgets, kilobyte task sizes, megacycle
workloads and GHz CPU frequencies.  Every silent re-derivation of a
conversion factor (``10 ** (x / 10)``, ``8 * 1024``, ``* 1e6``,
``* 1e9``) is a chance to disagree with the checked, tested helpers —
the classic source of order-of-magnitude reproduction bugs.  This rule
flags the factors themselves so all conversions route through
``dbm_to_watts`` / ``db_to_linear`` / ``kb_to_bits`` /
``megacycles_to_cycles`` / ``ghz_to_hz`` / ``mhz_to_hz``.

``repro/units.py`` (the sanctioned definitions) and ``repro/lint``
(which must mention the factors to detect them) are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import register
from repro.lint.rules_base import FileContext, Rule

_DB_BASE = (10, 10.0)
_DB_DIVISOR = (10, 10.0)
_KB_FACTOR = (8192, 8192.0)
_MEGA = 1e6
_GIGA = 1e9


def _const_value(node: ast.expr) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None


def _is_db_power(node: ast.BinOp) -> bool:
    """``10 ** (x / 10)`` — the dB-to-linear idiom in any spelling."""
    if not isinstance(node.op, ast.Pow):
        return False
    base = _const_value(node.left)
    if base is None or base not in _DB_BASE:
        return False
    exponent = node.right
    if isinstance(exponent, ast.BinOp) and isinstance(exponent.op, ast.Div):
        divisor = _const_value(exponent.right)
        return divisor is not None and divisor in _DB_DIVISOR
    return False


def _is_kb_product(node: ast.BinOp) -> bool:
    """``8 * 1024`` in either order."""
    if not isinstance(node.op, ast.Mult):
        return False
    left, right = _const_value(node.left), _const_value(node.right)
    return {left, right} == {8.0, 1024.0}


@register
class UnitsRule(Rule):
    rule_id = "R003"
    title = "unit-conversion factors must come from repro.units"
    rationale = (
        "Inline dB/kB/mega/giga conversion factors drift from the "
        "tested helpers in repro/units.py and cause order-of-magnitude "
        "reproduction errors; call the named helper instead."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_module("repro/units.py") or ctx.in_subpackage("lint"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp):
                if _is_db_power(node):
                    yield ctx.diagnostic(
                        self.rule_id,
                        node,
                        "inline dB-to-linear conversion '10 ** (x / 10)'; "
                        "use repro.units.db_to_linear() or dbm_to_watts()",
                    )
                elif _is_kb_product(node):
                    yield ctx.diagnostic(
                        self.rule_id,
                        node,
                        "inline kilobyte factor '8 * 1024'; use "
                        "repro.units.kb_to_bits() or BITS_PER_KB",
                    )
                elif isinstance(node.op, (ast.Mult, ast.Div)):
                    yield from self._scale_factor(ctx, node)
            elif isinstance(node, ast.Constant):
                value = _const_value(node)
                if value is not None and value in _KB_FACTOR:
                    yield ctx.diagnostic(
                        self.rule_id,
                        node,
                        "magic constant 8192 (bits per kB); use "
                        "repro.units.kb_to_bits() or BITS_PER_KB",
                    )

    def _scale_factor(
        self, ctx: FileContext, node: ast.BinOp
    ) -> Iterator[Diagnostic]:
        for operand in (node.left, node.right):
            value = _const_value(operand)
            if value == _MEGA:
                yield ctx.diagnostic(
                    self.rule_id,
                    operand,
                    "magic scale factor 1e6; use repro.units."
                    "megacycles_to_cycles() or mhz_to_hz()",
                )
            elif value == _GIGA:
                yield ctx.diagnostic(
                    self.rule_id,
                    operand,
                    "magic scale factor 1e9; use repro.units.ghz_to_hz()",
                )
