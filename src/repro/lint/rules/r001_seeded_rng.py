"""R001 — all randomness must flow through ``repro.sim.rng``.

Two golden-trajectory guarantees depend on this: multi-seed sweeps are
reproducible bit-for-bit, and the delta/objective equivalence suite can
replay identical move streams.  Any RNG constructed outside
``repro/sim/rng.py`` — the stdlib ``random`` module, or direct
``numpy.random`` entry points — creates a stream the seed plumbing
cannot see.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.lint.astutil import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import register
from repro.lint.rules_base import FileContext, Rule

#: The one module allowed to talk to numpy's RNG machinery directly.
EXEMPT_MODULE = "repro/sim/rng.py"

#: ``numpy.random`` attributes that are bit-generator *classes*; wiring
#: one into a seeded ``Generator`` is exactly what ``rng.py`` exists to
#: do, so constructing them is not itself a finding.
_GENERATOR_CLASSES = {
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


def _module_aliases(tree: ast.Module) -> Tuple[Set[str], Set[str], Set[str]]:
    """Names bound to the ``random`` module, numpy, and ``random`` functions."""
    random_mods: Set[str] = set()
    numpy_mods: Set[str] = set()
    random_funcs: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    random_mods.add(alias.asname or "random")
                elif alias.name == "numpy":
                    numpy_mods.add(alias.asname or "numpy")
                elif alias.name == "numpy.random" and alias.asname:
                    # ``import numpy.random as npr`` binds the submodule.
                    random_mods.add(alias.asname)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                for alias in node.names:
                    random_funcs.add(alias.asname or alias.name)
            elif node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_mods.add(alias.asname or "random")
    return random_mods, numpy_mods, random_funcs


@register
class SeededRngRule(Rule):
    rule_id = "R001"
    title = "randomness must route through repro.sim.rng"
    rationale = (
        "RNG streams created outside repro/sim/rng.py escape the seed "
        "plumbing and silently break multi-seed reproducibility; use "
        "make_rng()/child_rng() and pass Generator objects down."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_module(EXEMPT_MODULE):
            return
        random_mods, numpy_mods, random_funcs = _module_aliases(ctx.tree)
        for call in self._walk_calls(ctx.tree):
            name = dotted_name(call.func)
            if name is None:
                continue
            finding = self._classify(name, random_mods, numpy_mods, random_funcs)
            if finding is not None:
                yield ctx.diagnostic(self.rule_id, call, finding)

    def _classify(
        self,
        name: Tuple[str, ...],
        random_mods: Set[str],
        numpy_mods: Set[str],
        random_funcs: Set[str],
    ) -> Optional[str]:
        dotted = ".".join(name)
        if name[0] in random_funcs and len(name) == 1:
            return (
                f"stdlib random function '{dotted}()' bypasses the seeded "
                "stream registry; use repro.sim.rng.make_rng()"
            )
        if len(name) >= 2 and name[0] in random_mods:
            attr = name[1]
            if attr in _GENERATOR_CLASSES:
                return None
            return (
                f"'{dotted}()' constructs an RNG stream outside "
                "repro/sim/rng.py; use make_rng()/child_rng() instead"
            )
        # ``np.random.default_rng()`` / ``numpy.random.shuffle`` ...
        if len(name) >= 3 and name[0] in numpy_mods and name[1] == "random":
            attr = name[2]
            if attr in _GENERATOR_CLASSES:
                return None
            return (
                f"'{dotted}()' constructs an RNG stream outside "
                "repro/sim/rng.py; use make_rng()/child_rng() instead"
            )
        return None
