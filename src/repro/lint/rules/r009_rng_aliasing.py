"""R009 — no RNG stream may reach two concurrently-executed call sites.

Every stream in the project is a ``numpy.random.Generator`` whose draw
sequence *is* the experiment: two consumers sharing one stream interleave
their draws, and the interleaving depends on execution order — which a
process pool, a thread pool, or even a refactor of loop order does not
pin.  The reproduction contract therefore requires one stream per
concurrent consumer, derived through ``child_rng``/``spawn``.

This rule is inter-procedural: it uses the flow layer's taint analysis
to follow Generators from ``make_rng()``/``child_rng()`` (and
``Generator``-annotated parameters) to *retaining sinks* — places that
park a long-lived reference to the stream:

* arguments of ``executor.submit(...)`` / ``executor.map(...)`` — each
  submission may run concurrently with the others;
* constructor calls whose ``__init__`` assigns the parameter onto
  ``self`` (the symbol table records which parameters each class
  retains) — the object outlives the call and replays the stream later.

It fires when:

1. a stream bound *outside* a loop reaches a retaining sink *inside*
   the loop (every iteration shares the one stream);
2. the same stream name reaches two or more distinct retaining sinks;
3. a closure (nested ``def`` or ``lambda``) capturing a tainted stream
   is handed to an executor — the workers would all replay the same
   captured Generator.

Deriving fresh streams is never flagged: ``rng.spawn(n)`` produces a
pool whose elements are independent, so ``streams[c]`` / unpacking /
iterating a pool taints each element as a *fresh* stream.  This is
exactly the parallel-tempering idiom (one spawned child per chain) and
the runner idiom (``child_rng(seed, stream)`` inside the worker).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import Project
from repro.lint.flow import analyze_project
from repro.lint.flow.taint import (
    EXECUTOR,
    RNG,
    CallRecord,
    FunctionTaint,
    TaintAnalysis,
)
from repro.lint.registry import register
from repro.lint.rules_base import Rule

#: Executor methods that schedule their callable for concurrent runs.
SUBMIT_METHODS = {"submit", "map", "apply_async", "map_async", "imap_unordered"}

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@register
class RngAliasingRule(Rule):
    rule_id = "R009"
    title = "one RNG stream per concurrent consumer"
    rationale = (
        "A Generator reaching two concurrently-executed call sites "
        "interleaves draws in scheduler-dependent order; derive a fresh "
        "stream per consumer with child_rng()/rng.spawn() instead."
    )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        analysis = analyze_project(project)
        taint = analysis.taint
        for qualified in sorted(taint.functions):
            fnt = taint.functions[qualified]
            yield from self._check_function(taint, fnt)

    # ------------------------------------------------------------------

    def _check_function(
        self, taint: TaintAnalysis, fnt: FunctionTaint
    ) -> Iterator[Diagnostic]:
        nested = _nested_defs(fnt.info.node)
        #: rng name -> statement indices of retaining sinks it reached.
        sink_stmts: Dict[str, Set[int]] = {}
        for record in fnt.calls:
            call = record.node
            tainted_args = self._retained_rng_args(taint, fnt, record)
            if tainted_args is None:
                continue
            for arg in tainted_args:
                if isinstance(arg, ast.Name):
                    yield from self._check_loop_sharing(taint, fnt, call, arg)
                    stmts = sink_stmts.setdefault(arg.id, set())
                    stmts.add(fnt.cfg.statement_index_of(call))
                    if len(stmts) == 2:
                        yield fnt.info.ctx.diagnostic(
                            self.rule_id,
                            call,
                            f"RNG stream '{arg.id}' reaches a second "
                            "retaining call site; each concurrent consumer "
                            "needs its own stream (child_rng()/rng.spawn())",
                        )
            yield from self._check_closure_submission(taint, fnt, call, nested)

    def _retained_rng_args(
        self, taint: TaintAnalysis, fnt: FunctionTaint, record: CallRecord
    ) -> Optional[List[ast.expr]]:
        """RNG-tainted argument expressions parked by this call, if any.

        Returns ``None`` when the call is not a retaining sink at all,
        and a (possibly empty) list of tainted args when it is.
        """
        call = record.node
        target = record.target
        # Executor submission: every argument is handed to a worker.
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SUBMIT_METHODS
            and EXECUTOR in taint.kinds_of(fnt, func.value)
        ):
            tainted = [
                arg
                for arg in list(call.args)
                + [kw.value for kw in call.keywords if kw.arg is not None]
                if RNG in taint.kinds_of(fnt, arg)
            ]
            return tainted
        # Constructor retention: only the parameters __init__ assigns
        # onto self park a reference.
        if target is not None:
            cls = taint.symbols.class_info(target)
            if cls is None and target.endswith(".__init__"):
                cls = taint.symbols.class_info(target[: -len(".__init__")])
            if cls is None:
                return None
            tainted = []
            for position, arg in enumerate(call.args):
                if position >= len(cls.init_params):
                    break
                if cls.init_params[position] in cls.retained_params and (
                    RNG in taint.kinds_of(fnt, arg)
                ):
                    tainted.append(arg)
            for keyword in call.keywords:
                if (
                    keyword.arg in cls.retained_params
                    and RNG in taint.kinds_of(fnt, keyword.value)
                ):
                    tainted.append(keyword.value)
            return tainted
        return None

    def _check_loop_sharing(
        self,
        taint: TaintAnalysis,
        fnt: FunctionTaint,
        call: ast.Call,
        arg: ast.Name,
    ) -> Iterator[Diagnostic]:
        use_depth = fnt.cfg.loop_depth_of(call)
        bind_depth = fnt.binding_depth.get(arg.id, 0)
        if use_depth > bind_depth:
            yield fnt.info.ctx.diagnostic(
                self.rule_id,
                call,
                f"RNG stream '{arg.id}' is bound outside this loop but "
                "retained inside it, so every iteration shares one "
                "stream; derive a per-iteration stream with "
                "child_rng()/rng.spawn() inside the loop",
            )

    def _check_closure_submission(
        self,
        taint: TaintAnalysis,
        fnt: FunctionTaint,
        call: ast.Call,
        nested: Dict[str, FunctionNode],
    ) -> Iterator[Diagnostic]:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in SUBMIT_METHODS
            and EXECUTOR in taint.kinds_of(fnt, func.value)
        ):
            return
        if not call.args:
            return
        callable_arg = call.args[0]
        body: Optional[ast.AST] = None
        label = ""
        if isinstance(callable_arg, ast.Lambda):
            body, label = callable_arg, "lambda"
        elif isinstance(callable_arg, ast.Name) and callable_arg.id in nested:
            body, label = nested[callable_arg.id], f"closure '{callable_arg.id}'"
        if body is None:
            return
        for free in _free_names(body):
            if RNG in fnt.names.get(free, set()):
                yield fnt.info.ctx.diagnostic(
                    self.rule_id,
                    call,
                    f"{label} submitted to the executor captures RNG "
                    f"stream '{free}'; workers would replay one shared "
                    "stream — pass a per-task seed/stream id and derive "
                    "the Generator inside the worker",
                )
                return


def _nested_defs(fn: FunctionNode) -> Dict[str, FunctionNode]:
    """Function defs nested directly inside ``fn``'s body tree."""
    found: Dict[str, FunctionNode] = {}
    for node in ast.walk(fn):
        if node is not fn and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            found[node.name] = node
    return found


def _free_names(fn: ast.AST) -> Set[str]:
    """Names read inside a def/lambda but never bound there."""
    bound: Set[str] = set()
    read: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            bound.add(arg.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                bound.add(node.id)
            else:
                read.add(node.id)
    return read - bound
