"""R005 — no scalar Python accumulation over floats in ``core/``.

The delta/objective bitwise-equality contract pins an exact floating-
point accumulation order: fixed-length masked arrays reduced with
``np.add.reduce`` / ``np.bincount`` in ascending user order.  Python's
builtin ``sum()`` (and ``math.fsum``, which compensates differently)
accumulate left-to-right over whatever iterable order they are handed,
so a refactor from vectorised to scalar summation changes results in
the last bits — exactly the drift the golden-trajectory suite exists to
catch.  Use ``np.sum`` / ``np.add.reduce`` over arrays instead.

BLAS-backed reductions — ``np.dot`` / ``np.matmul`` / ``np.einsum`` /
``np.inner`` and the ``@`` operator — are banned in ``core/`` for the
same reason from the other direction: their accumulation order is an
implementation detail of the linked BLAS (blocked, threaded, SIMD-width
dependent), so the same expression can produce different last bits
across machines.  The batch evaluator (``core/batch.py``) is exactly
where reaching for ``dot`` is tempting; its kernels must stay on
elementwise multiply plus ``np.add.reduce`` / ``np.add.at``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import register
from repro.lint.rules_base import FileContext, Rule


@register
class AccumulationRule(Rule):
    rule_id = "R005"
    title = "use batched numpy reductions in core/, not builtin sum()"
    rationale = (
        "Builtin sum()/math.fsum() accumulate in iterable order and "
        "break the bitwise delta/objective equivalence contract; reduce "
        "fixed-length arrays with np.sum/np.add.reduce instead."
    )

    def check_file(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_subpackage("core"):
            return
        for call in self._walk_calls(ctx.tree):
            name = dotted_name(call.func)
            if name == ("sum",):
                yield ctx.diagnostic(
                    self.rule_id,
                    call,
                    "builtin sum() accumulates in iterable order; use "
                    "np.sum/np.add.reduce over a fixed-length array to "
                    "preserve the bitwise accumulation contract",
                )
            elif name == ("math", "fsum") or name == ("fsum",):
                yield ctx.diagnostic(
                    self.rule_id,
                    call,
                    "math.fsum() uses compensated summation that differs "
                    "from the pinned np.add.reduce order; use np.sum "
                    "over a fixed-length array",
                )
            elif name is not None and len(name) == 2 and name[0] in (
                "np",
                "numpy",
            ) and name[1] in ("dot", "matmul", "einsum", "inner", "vdot"):
                yield ctx.diagnostic(
                    self.rule_id,
                    call,
                    f"np.{name[1]}() reduces in BLAS-defined order, which "
                    "is not bitwise-reproducible across builds; use an "
                    "elementwise product with np.add.reduce/np.add.at "
                    "(the pinned accumulation contract)",
                )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                yield ctx.diagnostic(
                    self.rule_id,
                    node,
                    "the @ operator reduces in BLAS-defined order, which "
                    "is not bitwise-reproducible across builds; use an "
                    "elementwise product with np.add.reduce/np.add.at "
                    "(the pinned accumulation contract)",
                )
