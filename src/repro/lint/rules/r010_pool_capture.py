"""R010 — no mutable shared state reachable from pool-submitted work.

A function handed to ``ProcessPoolExecutor.submit`` (or ``.map``) runs
in a worker process.  Any module-level mutable container it — or
anything it transitively calls — writes to is shared state in spirit:
under a thread pool or fork-start it literally races, and under spawn
it silently diverges per worker, so results depend on which worker ran
which task.  Either way the run is no longer a pure function of
``(scenario, seed, stream)`` and the crash-recovery journal can replay
to a different answer.

The rule is built on the flow layer: the call graph gives the set of
functions transitively reachable from each submitted callable, the
symbol table records which module-level names are bound to mutable
containers (dict/list/set displays or constructor calls), and the rule
flags:

* subscript/attribute stores on such a module-level binding
  (``_CACHE[key] = value``) inside reachable code;
* mutating method calls (``append``/``update``/``setdefault``/...) on
  such a binding;
* ``global X`` rebinding of a mutable module-level container;
* closures submitted to an executor that mutate a mutable container
  captured from the enclosing scope.

Read-only module constants (tunables like default worker counts) are
fine and not flagged — the hazard is mutation, not access.  Fix by
passing state in task arguments and returning results, or by keying
caches per-process and treating them as pure memoisation of
deterministic functions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple, Union

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import Project
from repro.lint.flow import analyze_project
from repro.lint.flow.symbols import _is_mutable_value
from repro.lint.flow.taint import EXECUTOR, FunctionTaint, TaintAnalysis
from repro.lint.registry import register
from repro.lint.rules_base import Rule
from repro.lint.rules.r009_rng_aliasing import (
    SUBMIT_METHODS,
    _free_names,
    _nested_defs,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names that mutate their receiver in place.
MUTATING_METHODS = {
    "append",
    "appendleft",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "discard",
    "clear",
    "sort",
    "reverse",
}


@register
class PoolCaptureRule(Rule):
    rule_id = "R010"
    title = "pool-submitted work must not mutate shared module state"
    rationale = (
        "Functions reachable from an executor submission run in workers; "
        "mutating module-level containers there makes results depend on "
        "task-to-worker placement and breaks journal replay — pass state "
        "through arguments and return values instead."
    )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        analysis = analyze_project(project)
        taint = analysis.taint
        #: Roots: qualified names of callables handed to an executor.
        roots: List[Tuple[str, FunctionTaint]] = []
        for qualified in sorted(taint.functions):
            fnt = taint.functions[qualified]
            for record in fnt.calls:
                submitted = self._submitted_callable(taint, fnt, record.node)
                if submitted is not None:
                    roots.append((submitted, fnt))
                yield from self._check_closure_mutation(taint, fnt, record.node)
        reachable: Set[str] = set()
        for submitted, _ in roots:
            reachable |= analysis.callgraph.transitive(submitted)
        for qualified in sorted(reachable):
            fnt = taint.functions.get(qualified)
            if fnt is None:
                continue
            yield from self._check_worker_body(taint, fnt)

    # ------------------------------------------------------------------

    def _submitted_callable(
        self, taint: TaintAnalysis, fnt: FunctionTaint, call: ast.Call
    ) -> Optional[str]:
        """Qualified project function submitted at this call site."""
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in SUBMIT_METHODS
            and EXECUTOR in taint.kinds_of(fnt, func.value)
        ):
            return None
        if not call.args:
            return None
        target = call.args[0]
        if isinstance(target, ast.Name):
            return taint.symbols.resolve(fnt.info.module, (target.id,))
        if isinstance(target, ast.Attribute):
            parts: List[str] = []
            node: ast.expr = target
            while isinstance(node, ast.Attribute):
                parts.append(node.attr)
                node = node.value
            if isinstance(node, ast.Name):
                parts.append(node.id)
                return taint.symbols.resolve(
                    fnt.info.module, tuple(reversed(parts))
                )
        return None

    def _check_worker_body(
        self, taint: TaintAnalysis, fnt: FunctionTaint
    ) -> Iterator[Diagnostic]:
        """Flag module-global mutations inside pool-reachable code."""
        module = taint.symbols.modules.get(fnt.info.module)
        if module is None:
            return
        mutable = set(module.mutable_globals)
        if not mutable:
            return
        locals_bound = _bound_names(fnt.info.node)
        shared = mutable - locals_bound
        declared_global = {
            name
            for stmt in ast.walk(fnt.info.node)
            if isinstance(stmt, ast.Global)
            for name in stmt.names
        }
        shared |= mutable & declared_global
        if not shared:
            return
        for node in ast.walk(fnt.info.node):
            name = _mutated_global(node, shared)
            if name is not None:
                yield fnt.info.ctx.diagnostic(
                    self.rule_id,
                    node,
                    f"'{fnt.info.local_name}' is reachable from an "
                    f"executor submission but mutates module-level "
                    f"container '{name}'; workers must not share mutable "
                    "state — pass it via task arguments/returns",
                )

    def _check_closure_mutation(
        self, taint: TaintAnalysis, fnt: FunctionTaint, call: ast.Call
    ) -> Iterator[Diagnostic]:
        """Closures submitted to an executor mutating captured containers."""
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in SUBMIT_METHODS
            and EXECUTOR in taint.kinds_of(fnt, func.value)
        ):
            return
        if not call.args:
            return
        target = call.args[0]
        nested = _nested_defs(fnt.info.node)
        body: Optional[ast.AST] = None
        label = ""
        if isinstance(target, ast.Lambda):
            body, label = target, "lambda"
        elif isinstance(target, ast.Name) and target.id in nested:
            body, label = nested[target.id], f"closure '{target.id}'"
        if body is None:
            return
        captured_mutables = self._enclosing_mutables(taint, fnt)
        free = _free_names(body)
        for node in ast.walk(body):
            name = _mutated_global(node, free & captured_mutables)
            if name is not None:
                yield fnt.info.ctx.diagnostic(
                    self.rule_id,
                    call,
                    f"{label} submitted to the executor mutates captured "
                    f"mutable '{name}'; worker-side mutation of enclosing "
                    "state is lost (spawn) or racy (threads) — return the "
                    "value instead",
                )
                return

    def _enclosing_mutables(
        self, taint: TaintAnalysis, fnt: FunctionTaint
    ) -> Set[str]:
        """Names bound to mutable containers in the enclosing scopes."""
        module = taint.symbols.modules.get(fnt.info.module)
        names: Set[str] = set(module.mutable_globals) if module else set()
        for stmt in ast.walk(fnt.info.node):
            if isinstance(stmt, ast.Assign) and _is_mutable_value(stmt.value):
                for assign_target in stmt.targets:
                    if isinstance(assign_target, ast.Name):
                        names.add(assign_target.id)
        return names


def _bound_names(fn: FunctionNode) -> Set[str]:
    """Names assigned (parameters included) anywhere in the function."""
    bound: Set[str] = set()
    args = fn.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
    return bound - declared_global


def _mutated_global(node: ast.AST, shared: Set[str]) -> Optional[str]:
    """The shared name this AST node mutates, if any."""
    if not shared:
        return None
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if (
                isinstance(target, (ast.Subscript, ast.Attribute))
                and isinstance(target.value, ast.Name)
                and target.value.id in shared
            ):
                return target.value.id
            if isinstance(target, ast.Name) and target.id in shared:
                # A plain rebinding only lands here when the name was
                # declared ``global`` (local stores are filtered out of
                # ``shared`` by the caller).
                return target.id
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in shared
        ):
            return func.value.id
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in shared
            ):
                return target.value.id
    return None
