"""Command-line entry point: ``python -m repro.lint`` / ``tsajs lint``.

Exit codes: 0 — clean; 1 — findings; 2 — usage error (unknown rule id).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules
from repro.lint.reporters import render_json, render_sarif, render_text


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint arguments (shared with the ``tsajs lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="R0xx[,R0yy]",
        help=(
            "rule id(s) to run; repeatable and comma-splittable, "
            "combined with --rules"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--timing",
        action="store_true",
        help=(
            "print flow-analysis build time to stderr (CI gates the "
            "whole-project pass under 10 s)"
        ),
    )


def build_parser(prog: str = "repro.lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Project-specific static analysis: determinism, unit "
            "discipline and paper-equation traceability."
        ),
    )
    add_arguments(parser)
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"      {rule.rationale}")
    return "\n".join(lines)


def run(args: argparse.Namespace, prog: str = "repro.lint") -> int:
    """Execute a parsed lint invocation (shared with ``tsajs lint``)."""
    if args.list_rules:
        print(_list_rules())
        return 0

    requested: List[str] = []
    if args.rules is not None:
        requested.extend(
            part.strip() for part in args.rules.split(",") if part.strip()
        )
    for chunk in getattr(args, "rule", None) or []:
        requested.extend(part.strip() for part in chunk.split(",") if part.strip())

    rule_ids: Optional[List[str]] = None
    if requested:
        # Deduplicate while keeping first-seen order.
        rule_ids = list(dict.fromkeys(requested))
        known = {rule.rule_id for rule in all_rules()}
        unknown = sorted(set(rule_ids) - known)
        if unknown:
            print(
                f"{prog}: unknown rule id(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2

    result = lint_paths(args.paths, rule_ids=rule_ids)
    if getattr(args, "timing", False):
        if result.flow_build_seconds is not None:
            print(
                f"{prog}: flow analysis built in "
                f"{result.flow_build_seconds:.3f}s "
                f"({result.files_checked} files)",
                file=sys.stderr,
            )
        else:
            print(f"{prog}: no flow rule ran", file=sys.stderr)
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return result.exit_code


def main(argv: Optional[Sequence[str]] = None, prog: str = "repro.lint") -> int:
    parser = build_parser(prog)
    return run(parser.parse_args(argv), prog)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
