"""Taint/dataflow walker over the project call graph.

Tracks six taint kinds through assignments, comprehensions, conditional
expressions, containers, calls and returns:

* ``RNG`` — a single ``numpy.random.Generator`` stream, seeded at
  ``make_rng()``/``child_rng()`` calls and ``Generator``-annotated (or
  ``rng``-named) parameters;
* ``RNG_POOL`` — a collection of *distinct* streams (the result of
  ``rng.spawn(n)`` or a list/comprehension of fresh generators);
  indexing or iterating a pool yields a fresh ``RNG``, which is why the
  parallel-tempering scheduler's ``streams[c]`` is not an aliasing
  violation while reusing one ``rng`` across chains is;
* ``EXECUTOR`` — a process/thread pool, seeded at
  ``ProcessPoolExecutor(...)`` constructions and ``Executor``-annotated
  parameters;
* ``RECORDER`` — the observability recorder (``get_recorder()`` /
  ``Recorder`` annotations);
* ``ENABLED_FLAG`` — a boolean derived from ``recorder.enabled`` /
  ``recorder.iteration_detail``; code guarded by such a flag runs only
  when tracing, so any RNG draw or evaluator mutation under it breaks
  traced==untraced bitwise identity;
* ``UNORDERED`` — an iterable with no deterministic order (set
  displays/constructors, ``as_completed``, ``os.listdir``, ``glob``,
  ``Path.iterdir``); ``sorted(...)`` cleanses it, ``list()`` and
  comprehensions preserve it.

The analysis is *flow-insensitive within a function* (a name carries the
union of every kind ever assigned to it) but *inter-procedural across
the project*: a fixpoint over the call graph propagates argument taint
into parameters, return taint back to call sites, and ``self.attr``
taint across the methods of a class.  Loop-carried sharing is detected
structurally: each name records the deepest loop level at which it is
bound, and the CFG-lite reports the loop depth of every use site.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.astutil import dotted_name
from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.cfg import FunctionCFG
from repro.lint.flow.symbols import FunctionInfo, SymbolTable

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# Taint kinds.
RNG = "rng"
RNG_POOL = "rng_pool"
EXECUTOR = "executor"
RECORDER = "recorder"
ENABLED_FLAG = "enabled_flag"
UNORDERED = "unordered"

#: Stream factories: the project's blessed helpers plus the raw numpy
#: constructor they wrap (so taint still seeds in fixture trees and in
#: code that has not been migrated to the helpers yet).
RNG_FACTORIES = {
    "repro.sim.rng.make_rng",
    "repro.sim.rng.child_rng",
    "numpy.random.default_rng",
    "numpy.random.Generator",
}

EXECUTOR_FACTORIES = {
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
}

RECORDER_FACTORIES = {"repro.obs.recorder.get_recorder"}

#: Callables returning inherently unordered iterables.
UNORDERED_FACTORIES = {
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
    "concurrent.futures.as_completed",
}

#: Method names yielding unordered iterables on any receiver.
_UNORDERED_METHODS = {"iterdir"}

#: Generator attributes that are *not* entropy draws.
NON_DRAW_RNG_ATTRS = {"spawn", "bit_generator"}

_GENERATOR_ANNOTATION = re.compile(r"\bGenerator\b")
_RECORDER_ANNOTATION = re.compile(r"\bRecorder\b")
_EXECUTOR_ANNOTATION = re.compile(r"\bExecutor\b")


@dataclass
class CallRecord:
    """One call site inside a function, with its resolution."""

    node: ast.Call
    #: Absolute dotted target, or ``None`` for unresolvable callees.
    target: Optional[str]


@dataclass
class FunctionTaint:
    """Per-function dataflow facts."""

    info: FunctionInfo
    cfg: FunctionCFG
    #: Union taint kinds per local name (parameters included).
    names: Dict[str, Set[str]] = field(default_factory=dict)
    #: Deepest loop level at which each name is (re)bound; a use at a
    #: strictly greater depth re-reads the *same* binding every
    #: iteration.
    binding_depth: Dict[str, int] = field(default_factory=dict)
    #: Union taint of every ``return`` expression.
    returns: Set[str] = field(default_factory=set)
    #: Resolved call sites, in source order.
    calls: List[CallRecord] = field(default_factory=list)

    def add_name(self, name: str, kinds: Set[str], depth: int) -> bool:
        """Merge kinds/depth for a binding; True when anything changed."""
        changed = False
        existing = self.names.setdefault(name, set())
        if not kinds <= existing:
            existing.update(kinds)
            changed = True
        previous = self.binding_depth.get(name)
        if previous is None or depth > previous:
            self.binding_depth[name] = depth
            changed = previous is None or bool(self.names[name])
        return changed


class TaintAnalysis:
    """Inter-procedural taint over every function in the project."""

    def __init__(self, symbols: SymbolTable, callgraph: CallGraph) -> None:
        self.symbols = symbols
        self.callgraph = callgraph
        self.functions: Dict[str, FunctionTaint] = {}
        #: Class attribute taint: ``"mod.Class" -> {"attr": kinds}``.
        self.class_attrs: Dict[str, Dict[str, Set[str]]] = {}
        #: Extra parameter kinds discovered at call sites.
        self._param_seeds: Dict[str, Dict[str, Set[str]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, symbols: SymbolTable, callgraph: CallGraph) -> "TaintAnalysis":
        analysis = cls(symbols, callgraph)
        infos = symbols.all_functions()
        for info in infos:
            analysis.functions[info.qualified] = FunctionTaint(
                info=info, cfg=FunctionCFG.build(info.node)
            )
        # Fixpoint: local passes interleaved with call-site/param,
        # return and self-attribute propagation until nothing changes
        # (bounded — the kind lattice is tiny, so this converges fast).
        for _ in range(8):
            changed = False
            for info in infos:
                if analysis._local_pass(analysis.functions[info.qualified]):
                    changed = True
            if analysis._propagate_call_sites():
                changed = True
            if not changed:
                break
        return analysis

    def _seed_params(self, fnt: FunctionTaint) -> None:
        args = fnt.info.node.args
        params = list(args.posonlyargs + args.args + args.kwonlyargs)
        for param in params:
            kinds: Set[str] = set()
            annotation = param.annotation
            if annotation is not None:
                try:
                    text = ast.unparse(annotation)
                except Exception:  # pragma: no cover - malformed annotation
                    text = ""
                if _GENERATOR_ANNOTATION.search(text):
                    kinds.add(RNG)
                if _RECORDER_ANNOTATION.search(text):
                    kinds.add(RECORDER)
                if _EXECUTOR_ANNOTATION.search(text):
                    kinds.add(EXECUTOR)
            elif param.arg == "rng" or param.arg.endswith("_rng"):
                # Unannotated but idiomatically named stream parameters.
                kinds.add(RNG)
            elif param.arg in ("executor", "pool"):
                kinds.add(EXECUTOR)
            kinds |= self._param_seeds.get(fnt.info.qualified, {}).get(
                param.arg, set()
            )
            if kinds:
                fnt.add_name(param.arg, kinds, depth=0)
            else:
                fnt.names.setdefault(param.arg, set())
                fnt.binding_depth.setdefault(param.arg, 0)

    def _local_pass(self, fnt: FunctionTaint) -> bool:
        """One statement sweep; returns True when facts changed."""
        before = (
            {k: set(v) for k, v in fnt.names.items()},
            set(fnt.returns),
        )
        fnt.calls = []
        self._seed_params(fnt)
        for node in fnt.cfg.statements():
            self._transfer(fnt, node.stmt, node.loop_depth)
        after = ({k: set(v) for k, v in fnt.names.items()}, set(fnt.returns))
        return before != after

    # ------------------------------------------------------------------
    # Statement transfer
    # ------------------------------------------------------------------

    def _transfer(self, fnt: FunctionTaint, stmt: ast.stmt, depth: int) -> None:
        for call in self._own_calls(stmt):
            target = self._resolve_call(fnt, call)
            fnt.calls.append(CallRecord(node=call, target=target))
        if isinstance(stmt, ast.Assign):
            kinds = self.kinds_of(fnt, stmt.value)
            for target in stmt.targets:
                self._bind_target(fnt, target, kinds, stmt.value, depth)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            kinds = self.kinds_of(fnt, stmt.value)
            self._bind_target(fnt, stmt.target, kinds, stmt.value, depth)
        elif isinstance(stmt, ast.AugAssign):
            kinds = self.kinds_of(fnt, stmt.value)
            if isinstance(stmt.target, ast.Name):
                fnt.add_name(stmt.target.id, kinds, depth)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_kinds = self.kinds_of(fnt, stmt.iter)
            element: Set[str] = set()
            if RNG_POOL in iter_kinds:
                element.add(RNG)
            if UNORDERED in iter_kinds:
                element.add(UNORDERED)
            # The loop target is rebound every iteration: bind at body
            # depth so pool elements count as fresh streams.
            self._bind_target(fnt, stmt.target, element, None, depth + 1)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    kinds = self.kinds_of(fnt, item.context_expr)
                    self._bind_target(
                        fnt, item.optional_vars, kinds, item.context_expr, depth
                    )
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            fnt.returns |= self.kinds_of(fnt, stmt.value)

    def _bind_target(
        self,
        fnt: FunctionTaint,
        target: ast.expr,
        kinds: Set[str],
        value: Optional[ast.expr],
        depth: int,
    ) -> None:
        if isinstance(target, ast.Name):
            fnt.add_name(target.id, kinds, depth)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Unpacking a pool (``a, b = rng.spawn(2)``) gives each
            # element a distinct stream.
            element = set(kinds)
            if RNG_POOL in element:
                element.discard(RNG_POOL)
                element.add(RNG)
            for elt in target.elts:
                self._bind_target(fnt, elt, element, None, depth)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and fnt.info.class_name is not None
        ):
            class_key = f"{fnt.info.module}.{fnt.info.class_name}"
            attrs = self.class_attrs.setdefault(class_key, {})
            attrs.setdefault(target.attr, set()).update(kinds)

    @staticmethod
    def _own_calls(stmt: ast.stmt) -> List[ast.Call]:
        """Call nodes inside this statement's expressions (not nested defs)."""
        calls: List[ast.Call] = []
        stack: List[ast.AST] = [stmt]
        first = True
        while stack:
            node = stack.pop()
            if not first and isinstance(node, ast.stmt):
                continue
            first = False
            if isinstance(node, ast.Call):
                calls.append(node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
        calls.reverse()
        return calls

    # ------------------------------------------------------------------
    # Expression taint
    # ------------------------------------------------------------------

    def kinds_of(self, fnt: FunctionTaint, expr: ast.expr) -> Set[str]:
        """Union taint kinds of one expression in this function."""
        if isinstance(expr, ast.Name):
            return set(fnt.names.get(expr.id, set()))
        if isinstance(expr, ast.Call):
            return self._call_kinds(fnt, expr)
        if isinstance(expr, ast.Attribute):
            base = self.kinds_of(fnt, expr.value)
            if RECORDER in base and expr.attr in ("enabled", "iteration_detail"):
                return {ENABLED_FLAG}
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and fnt.info.class_name is not None
            ):
                class_key = f"{fnt.info.module}.{fnt.info.class_name}"
                return set(self.class_attrs.get(class_key, {}).get(expr.attr, set()))
            return set()
        if isinstance(expr, ast.Subscript):
            base = self.kinds_of(fnt, expr.value)
            result: Set[str] = set()
            if RNG_POOL in base:
                result.add(RNG)
            if UNORDERED in base:
                result.add(UNORDERED)
            return result
        if isinstance(expr, (ast.Tuple, ast.List)):
            kinds: Set[str] = set()
            for elt in expr.elts:
                kinds |= self.kinds_of(fnt, elt)
            if RNG in kinds:
                # A container of streams is a pool, not a stream.
                kinds.discard(RNG)
                kinds.add(RNG_POOL)
            return kinds
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return {UNORDERED}
        if isinstance(expr, ast.DictComp):
            return (
                {UNORDERED}
                if UNORDERED in self.kinds_of(fnt, expr.generators[0].iter)
                else set()
            )
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            kinds = set()
            if UNORDERED in self.kinds_of(fnt, expr.generators[0].iter):
                kinds.add(UNORDERED)
            element = self._comprehension_element_kinds(fnt, expr)
            if RNG in element:
                kinds.add(RNG_POOL)
            return kinds
        if isinstance(expr, ast.IfExp):
            return self.kinds_of(fnt, expr.body) | self.kinds_of(fnt, expr.orelse)
        if isinstance(expr, ast.BoolOp):
            kinds = set()
            for value in expr.values:
                kinds |= self.kinds_of(fnt, value)
            return kinds
        if isinstance(expr, ast.BinOp):
            return self.kinds_of(fnt, expr.left) | self.kinds_of(fnt, expr.right)
        if isinstance(expr, ast.Starred):
            return self.kinds_of(fnt, expr.value)
        if isinstance(expr, ast.NamedExpr):
            return self.kinds_of(fnt, expr.value)
        if isinstance(expr, ast.Await):
            return self.kinds_of(fnt, expr.value)
        return set()

    def _comprehension_element_kinds(
        self, fnt: FunctionTaint, expr: Union[ast.ListComp, ast.GeneratorExp]
    ) -> Set[str]:
        """Taint of the produced elements (comprehension targets bound)."""
        scratch = FunctionTaint(info=fnt.info, cfg=fnt.cfg)
        scratch.names = {k: set(v) for k, v in fnt.names.items()}
        for generator in expr.generators:
            iter_kinds = self.kinds_of(fnt, generator.iter)
            element: Set[str] = set()
            if RNG_POOL in iter_kinds:
                element.add(RNG)
            if UNORDERED in iter_kinds:
                element.add(UNORDERED)
            self._bind_target(scratch, generator.target, element, None, 1)
        return self.kinds_of(scratch, expr.elt)

    def _call_kinds(self, fnt: FunctionTaint, call: ast.Call) -> Set[str]:
        target = self._resolve_call(fnt, call)
        if target in RNG_FACTORIES:
            return {RNG}
        if target in EXECUTOR_FACTORIES:
            return {EXECUTOR}
        if target in RECORDER_FACTORIES:
            return {RECORDER}
        if target in UNORDERED_FACTORIES:
            return {UNORDERED}
        name = dotted_name(call.func)
        if name == ("set",) or name == ("frozenset",):
            return {UNORDERED}
        if name == ("sorted",):
            # sorted() pins a deterministic order: cleanse UNORDERED.
            if call.args:
                return self.kinds_of(fnt, call.args[0]) - {UNORDERED}
            return set()
        if name in (("list",), ("tuple",), ("iter",), ("enumerate",), ("reversed",)):
            # Order-preserving wrappers keep the source's (non)ordering;
            # wrapping a pool keeps it a pool.
            if call.args:
                return self.kinds_of(fnt, call.args[0])
            return set()
        if isinstance(call.func, ast.Attribute):
            base = self.kinds_of(fnt, call.func.value)
            if RNG in base:
                if call.func.attr == "spawn":
                    return {RNG_POOL}
                return set()  # a draw: the result is data, not a stream
            if call.func.attr in _UNORDERED_METHODS:
                return {UNORDERED}
            if call.func.attr == "submit" and EXECUTOR in base:
                return set()
        if target is not None:
            callee = self.functions.get(target)
            if callee is not None:
                return set(callee.returns)
        return set()

    def _resolve_call(
        self, fnt: FunctionTaint, call: ast.Call
    ) -> Optional[str]:
        """Absolute dotted target of a call site (``self.m`` included)."""
        name = dotted_name(call.func)
        if name is None:
            return None
        if (
            name[0] == "self"
            and len(name) >= 2
            and fnt.info.class_name is not None
        ):
            return ".".join(
                (fnt.info.module, fnt.info.class_name) + name[1:]
            )
        return self.symbols.resolve(fnt.info.module, name)

    # ------------------------------------------------------------------
    # Inter-procedural propagation
    # ------------------------------------------------------------------

    def _propagate_call_sites(self) -> bool:
        """Push argument taint into callee parameters (one round)."""
        changed = False
        for qualified in sorted(self.functions):
            fnt = self.functions[qualified]
            for record in fnt.calls:
                if record.target is None:
                    continue
                callee, params, offset = self._callee_signature(record.target)
                if callee is None or params is None:
                    continue
                seeds = self._param_seeds.setdefault(callee, {})
                for position, arg in enumerate(record.node.args):
                    index = position + offset
                    if index >= len(params):
                        break
                    if self._seed_param(
                        seeds, params[index], self.kinds_of(fnt, arg)
                    ):
                        changed = True
                for keyword in record.node.keywords:
                    if keyword.arg is None:
                        continue
                    if keyword.arg in params and self._seed_param(
                        seeds, keyword.arg, self.kinds_of(fnt, keyword.value)
                    ):
                        changed = True
        return changed

    def _callee_signature(
        self, target: str
    ) -> Tuple[Optional[str], Optional[Sequence[str]], int]:
        """``(function qualname, parameter names, positional offset)``."""
        info = self.symbols.function(target)
        if info is not None:
            params = info.parameters()
            if info.is_method and params and params[0] == "self":
                return target, params[1:], 0
            return target, params, 0
        cls = self.symbols.class_info(target)
        if cls is not None:
            init = self.symbols.function(f"{target}.__init__")
            if init is not None:
                params = init.parameters()
                if params and params[0] == "self":
                    params = params[1:]
                return f"{target}.__init__", params, 0
            return None, None, 0
        return None, None, 0

    @staticmethod
    def _seed_param(
        seeds: Dict[str, Set[str]], param: str, kinds: Set[str]
    ) -> bool:
        relevant = kinds & {RNG, RNG_POOL, EXECUTOR, RECORDER, UNORDERED}
        if not relevant:
            return False
        existing = seeds.setdefault(param, set())
        if relevant <= existing:
            return False
        existing.update(relevant)
        return True

    # ------------------------------------------------------------------
    # Queries for the rules
    # ------------------------------------------------------------------

    def is_rng_draw(self, fnt: FunctionTaint, call: ast.Call) -> bool:
        """Whether a call consumes entropy from a tracked stream."""
        if not isinstance(call.func, ast.Attribute):
            return False
        if call.func.attr in NON_DRAW_RNG_ATTRS:
            return False
        return RNG in self.kinds_of(fnt, call.func.value)

    def is_emission(self, fnt: FunctionTaint, call: ast.Call) -> bool:
        """Whether a call emits telemetry through a recorder."""
        if not isinstance(call.func, ast.Attribute):
            return False
        if call.func.attr not in ("event", "span", "count", "observe", "gauge_set"):
            return False
        return RECORDER in self.kinds_of(fnt, call.func.value)
