"""Per-function CFG-lite: statement order, branch structure, loop depth.

The flow rules do not need a full control-flow graph with dominators —
they need three structural facts a plain ``ast.walk`` loses:

* **execution order** — which statement runs before which, so a rule can
  ask whether a binding happens before its use;
* **branch grouping** — which statements are alternatives (the arms of an
  ``if``/``try``) rather than a sequence;
* **loop depth** — whether an expression sits inside a loop body and
  therefore executes repeatedly.  This is the fact the RNG-aliasing rule
  is built on: submitting a stream created *outside* a loop from *inside*
  the loop shares one stream across every task, while deriving the
  stream inside the body creates a fresh one per iteration.

:class:`FunctionCFG` numbers the statements of one function in source
order, records each statement's loop depth and successor statements, and
exposes ``loop_depth_of`` for any descendant AST node (expressions
included).  Nested function and lambda bodies are *excluded* — they are
separate code units with their own CFG, and their bodies do not execute
where they are defined.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass
class CFGNode:
    """One statement of the function body."""

    index: int
    stmt: ast.stmt
    loop_depth: int
    #: Indices of statements that can execute immediately after this one
    #: (fall-through plus branch entries; loops edge back to themselves).
    successors: List[int] = field(default_factory=list)


class FunctionCFG:
    """CFG-lite over one function (or module) body."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        #: id(ast node) -> loop depth, for every descendant expression.
        self._depth_by_id: Dict[int, int] = {}
        #: id(ast node) -> owning statement index.
        self._stmt_by_id: Dict[int, int] = {}

    @classmethod
    def build(cls, fn: Union[FunctionNode, ast.Module]) -> "FunctionCFG":
        cfg = cls()
        cfg._walk_body(fn.body, loop_depth=0)
        cfg._link_successors()
        return cfg

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _walk_body(self, body: Sequence[ast.stmt], loop_depth: int) -> None:
        for stmt in body:
            node = CFGNode(index=len(self.nodes), stmt=stmt, loop_depth=loop_depth)
            self.nodes.append(node)
            self._index_expressions(stmt, node.index, loop_depth)
            inner_depth = loop_depth + (1 if isinstance(stmt, _LOOPS) else 0)
            for part in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, part, None)
                if nested:
                    self._walk_body(nested, inner_depth)
            for handler in getattr(stmt, "handlers", ()) or ():
                self._walk_body(handler.body, loop_depth)

    def _index_expressions(
        self, stmt: ast.stmt, index: int, loop_depth: int
    ) -> None:
        """Record depth/owner for the statement's own expressions.

        Stops at nested statements (they get their own CFG node) and at
        nested function/lambda bodies (separate code units).
        """
        stack: List[ast.AST] = [stmt]
        first = True
        while stack:
            node = stack.pop()
            if not first and isinstance(node, ast.stmt):
                continue
            first = False
            self._depth_by_id[id(node)] = loop_depth
            self._stmt_by_id[id(node)] = index
            if isinstance(node, _NESTED):
                # Index the def/lambda itself but not its body.
                continue
            for child in ast.iter_child_nodes(node):
                stack.append(child)

    def _link_successors(self) -> None:
        """Fall-through edges plus a back-edge for loop headers."""
        by_stmt = {id(node.stmt): node for node in self.nodes}
        for node in self.nodes:
            if node.index + 1 < len(self.nodes):
                node.successors.append(node.index + 1)
            if isinstance(node.stmt, _LOOPS):
                # The loop re-enters its own header after the body.
                node.successors.append(node.index)
            for part in ("body", "orelse", "finalbody"):
                nested = getattr(node.stmt, part, None)
                if nested:
                    entry = by_stmt.get(id(nested[0]))
                    if entry is not None and entry.index not in node.successors:
                        node.successors.append(entry.index)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def statements(self) -> Iterator[CFGNode]:
        """Statements in source (reverse-postorder-equivalent) order."""
        return iter(self.nodes)

    def loop_depth_of(self, node: ast.AST) -> int:
        """Loop depth of any indexed statement or expression (0 = none)."""
        return self._depth_by_id.get(id(node), 0)

    def statement_index_of(self, node: ast.AST) -> int:
        """Index of the statement owning ``node`` (-1 if unindexed)."""
        return self._stmt_by_id.get(id(node), -1)

    def in_loop(self, node: ast.AST) -> bool:
        return self.loop_depth_of(node) > 0
