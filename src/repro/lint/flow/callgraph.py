"""Project call graph resolved through the symbol table.

Edges connect *project* functions only — calls into numpy/stdlib are
recorded as unresolved and ignored.  Call sites are resolved the same
way the taint walker resolves them:

* plain names through the module's imports (including re-export hops),
* ``self.method(...)`` to the method of the enclosing class,
* ``Class(...)`` constructions to ``Class.__init__``.

The graph powers the pool-capture rule (R010): everything transitively
reachable from a function submitted to the process pool runs inside a
worker, so any module-global mutation found in that closure is
cross-process shared state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.lint.astutil import dotted_name
from repro.lint.flow.symbols import FunctionInfo, SymbolTable

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class CallSite:
    """One resolved call edge origin."""

    caller: str
    callee: str
    node: ast.Call


@dataclass
class CallGraph:
    """Caller → callee edges over the project's own functions."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    reverse: Dict[str, Set[str]] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)

    @classmethod
    def build(cls, symbols: SymbolTable) -> "CallGraph":
        graph = cls()
        for info in symbols.all_functions():
            graph.edges.setdefault(info.qualified, set())
            for call in cls._calls_in(info.node):
                callee = cls.resolve_call(symbols, info, call)
                if callee is None:
                    continue
                graph.add_edge(info.qualified, callee, call)
        return graph

    def add_edge(self, caller: str, callee: str, node: ast.Call) -> None:
        self.edges.setdefault(caller, set()).add(callee)
        self.reverse.setdefault(callee, set()).add(caller)
        self.sites.append(CallSite(caller=caller, callee=callee, node=node))

    @staticmethod
    def _calls_in(fn: FunctionNode) -> List[ast.Call]:
        """Every call in the function, nested defs/lambdas *included*.

        A closure defined inside ``f`` executes with ``f``'s bindings, so
        for reachability purposes its calls belong to ``f``.
        """
        return [node for node in ast.walk(fn) if isinstance(node, ast.Call)]

    @staticmethod
    def resolve_call(
        symbols: SymbolTable, caller: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        """Qualified name of the project function a call lands on."""
        name = dotted_name(call.func)
        if name is None:
            return None
        if name[0] == "self" and len(name) >= 2 and caller.class_name is not None:
            candidate = ".".join(
                (caller.module, caller.class_name) + name[1:]
            )
            if symbols.function(candidate) is not None:
                return candidate
            return None
        resolved = symbols.resolve(caller.module, name)
        if resolved is None:
            return None
        if symbols.function(resolved) is not None:
            return resolved
        if symbols.class_info(resolved) is not None:
            init = f"{resolved}.__init__"
            if symbols.function(init) is not None:
                return init
        return None

    def callees(self, qualified: str) -> Set[str]:
        return set(self.edges.get(qualified, set()))

    def callers(self, qualified: str) -> Set[str]:
        return set(self.reverse.get(qualified, set()))

    def transitive(self, qualified: str) -> Set[str]:
        """All functions reachable from ``qualified`` (itself included)."""
        seen: Set[str] = set()
        stack = [qualified]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen
