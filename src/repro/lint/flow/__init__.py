"""Whole-project dataflow analysis for the determinism lint rules.

The per-file AST rules (R001-R008) can only see one module at a time,
but the reproduction guarantees they protect — scalar==delta==batch
bitwise identity, byte-identical ``--resume``, RNG-rewind invisibility —
are *inter-procedural* properties: an RNG stream created in one module
is threaded through calls, closures and executor submissions defined in
others.  This package adds the project-wide view those properties need:

* :mod:`repro.lint.flow.symbols` — a cross-module symbol table mapping
  every import, module-level binding, function and class to its
  absolute dotted name;
* :mod:`repro.lint.flow.callgraph` — a call graph over the project's
  own functions (resolved through the symbol table, including
  ``self.method`` and ``Class.method`` calls);
* :mod:`repro.lint.flow.cfg` — a per-function CFG-lite giving statement
  order, branch structure and loop depth (a call site inside a loop
  executes many times — the difference between sharing one RNG stream
  and deriving a fresh one per task);
* :mod:`repro.lint.flow.taint` — the dataflow walker: it seeds taint at
  sources (``make_rng()``/``child_rng()`` calls, ``Generator``
  parameters, executor constructions, ``get_recorder()``, unordered
  iterables), propagates it through assignments, comprehensions,
  conditional expressions and — via a fixpoint over the call graph —
  through calls and returns.

The flow rules R009-R012 consume one shared :class:`FlowAnalysis` per
lint invocation (cached on the :class:`~repro.lint.engine.Project`), so
the whole-project pass is built exactly once however many rules run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

from repro.lint.flow.callgraph import CallGraph
from repro.lint.flow.symbols import SymbolTable
from repro.lint.flow.taint import FunctionTaint, TaintAnalysis

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.lint.engine import Project


@dataclass
class FlowAnalysis:
    """The shared whole-project analysis the flow rules consume."""

    symbols: SymbolTable
    callgraph: CallGraph
    taint: TaintAnalysis
    #: Wall-clock seconds spent building the analysis (symbol table +
    #: call graph + taint fixpoint); surfaced by ``repro.lint --timing``
    #: and gated < 10 s in CI.
    build_seconds: float = 0.0

    @property
    def functions(self) -> Dict[str, FunctionTaint]:
        """Per-function taint results keyed by qualified name."""
        return self.taint.functions


def analyze_project(project: "Project") -> FlowAnalysis:
    """Build (or reuse) the :class:`FlowAnalysis` for one lint run.

    The analysis is cached on the project object, so the four flow rules
    share a single symbol-table/call-graph/taint pass per invocation.
    """
    cached = project.flow_cache
    if isinstance(cached, FlowAnalysis):
        return cached
    # The build is timed with the stdlib clock on purpose: the lint
    # engine is tooling, not simulation code, so the repro.obs clock
    # seam (which exists to make *simulation* timing injectable) does
    # not apply here.
    import time

    start = time.perf_counter()
    symbols = SymbolTable.build(project)
    callgraph = CallGraph.build(symbols)
    taint = TaintAnalysis.build(symbols, callgraph)
    analysis = FlowAnalysis(symbols=symbols, callgraph=callgraph, taint=taint)
    analysis.build_seconds = time.perf_counter() - start
    project.flow_cache = analysis
    return analysis


__all__ = [
    "FlowAnalysis",
    "analyze_project",
    "CallGraph",
    "SymbolTable",
    "TaintAnalysis",
]
