"""Cross-module symbol table for the flow analysis.

Maps every scanned file to a dotted module name and records, per module:

* **imports** — local alias → absolute dotted target, covering
  ``import a.b``, ``import a.b as c``, ``from a.b import c as d`` and
  relative ``from . import x`` forms;
* **functions** — every module-level function and one-level method,
  keyed ``"func"`` / ``"Class.method"`` locally and
  ``"pkg.mod.Class.method"`` globally;
* **classes** — module-level class definitions, plus which of their
  ``__init__`` parameters are *retained* (assigned onto ``self``), which
  is how the aliasing rule knows that handing an RNG to a constructor
  parks a long-lived reference to the stream;
* **module-level bindings** — names assigned at module scope, with the
  subset bound to *mutable containers* (dict/list/set displays or
  constructor calls) that the pool-capture rule treats as shared state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.rules_base import FileContext

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.lint.engine import Project

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Calls and displays that build a mutable container.
_MUTABLE_CTORS = {"dict", "list", "set", "defaultdict", "deque", "Counter", "OrderedDict"}


def module_name(ctx: FileContext) -> str:
    """Dotted module name for a scanned file (``repro.core.delta``)."""
    parts = list(ctx.module)
    if not parts:
        return ctx.path.stem
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    if leaf == "__init__":
        parts = parts[:-1]
        return ".".join(parts) if parts else ctx.path.parent.name
    return ".".join(parts[:-1] + [leaf])


def _is_mutable_value(node: ast.expr) -> bool:
    """Whether a module-level binding's value is a mutable container."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CTORS
    return False


@dataclass
class FunctionInfo:
    """One project function (or method) and where it lives."""

    qualified: str
    module: str
    local_name: str
    node: FunctionNode
    ctx: FileContext
    #: Enclosing class name for methods, ``None`` for plain functions.
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def parameters(self) -> List[str]:
        """Positional + keyword parameter names (including ``self``)."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        return names


@dataclass
class ClassInfo:
    """One project class: its node plus constructor retention facts."""

    qualified: str
    module: str
    node: ast.ClassDef
    #: ``__init__`` parameters assigned onto ``self`` (long-lived refs).
    retained_params: Set[str] = field(default_factory=set)
    #: Positional order of ``__init__`` parameters after ``self``.
    init_params: List[str] = field(default_factory=list)


@dataclass
class ModuleSymbols:
    """Everything the analysis knows about one module."""

    name: str
    ctx: FileContext
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Every module-level binding: name -> assigned value node.
    bindings: Dict[str, ast.expr] = field(default_factory=dict)
    #: Module-level names bound to mutable containers.
    mutable_globals: Dict[str, ast.stmt] = field(default_factory=dict)


class SymbolTable:
    """The project-wide name-resolution layer the flow rules share."""

    def __init__(self, modules: Dict[str, ModuleSymbols]) -> None:
        self.modules = modules
        self._functions: Dict[str, FunctionInfo] = {}
        self._classes: Dict[str, ClassInfo] = {}
        for mod in modules.values():
            for info in mod.functions.values():
                self._functions[info.qualified] = info
            for cls in mod.classes.values():
                self._classes[cls.qualified] = cls

    @classmethod
    def build(cls, project: "Project") -> "SymbolTable":
        modules: Dict[str, ModuleSymbols] = {}
        for ctx in project.contexts:
            mod = cls._build_module(ctx)
            modules[mod.name] = mod
        return cls(modules)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def _build_module(cls, ctx: FileContext) -> ModuleSymbols:
        name = module_name(ctx)
        mod = ModuleSymbols(name=name, ctx=ctx)
        package = name.rsplit(".", 1)[0] if "." in name else name
        for node in ctx.tree.body:
            cls._scan_statement(mod, package, node)
        # Function-level imports (``from concurrent.futures import
        # ProcessPoolExecutor`` inside a helper) still resolve names used
        # in that function; fold them in without overriding module-level
        # bindings of the same alias.
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                cls._scan_import(mod, package, node, overwrite=False)
        return mod

    @classmethod
    def _scan_statement(
        cls, mod: ModuleSymbols, package: str, node: ast.stmt
    ) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            cls._scan_import(mod, package, node, overwrite=True)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(
                qualified=f"{mod.name}.{node.name}",
                module=mod.name,
                local_name=node.name,
                node=node,
                ctx=mod.ctx,
            )
            mod.functions[node.name] = info
            mod.bindings.setdefault(node.name, ast.Name(id=node.name))
        elif isinstance(node, ast.ClassDef):
            cls._scan_class(mod, node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            cls._scan_binding(mod, node)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and import fallbacks still bind names.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    cls._scan_statement(mod, package, child)

    @classmethod
    def _scan_import(
        cls,
        mod: ModuleSymbols,
        package: str,
        node: Union[ast.Import, ast.ImportFrom],
        overwrite: bool,
    ) -> None:
        def bind(alias_name: str, target: str) -> None:
            if overwrite:
                mod.imports[alias_name] = target
            else:
                mod.imports.setdefault(alias_name, target)

        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bind(alias.asname, alias.name)
                else:
                    head = alias.name.split(".")[0]
                    bind(head, head)
        else:
            base = cls._import_base(mod.name, package, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                bind(alias.asname or alias.name, target)

    @staticmethod
    def _import_base(
        module: str, package: str, node: ast.ImportFrom
    ) -> str:
        if node.level == 0:
            return node.module or ""
        # Relative import: walk ``level`` packages up from this module.
        parts = module.split(".")
        # ``from . import x`` in pkg/mod.py resolves against pkg.
        anchor = parts[: len(parts) - node.level]
        base = ".".join(anchor)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    @classmethod
    def _scan_class(cls, mod: ModuleSymbols, node: ast.ClassDef) -> None:
        info = ClassInfo(
            qualified=f"{mod.name}.{node.name}", module=mod.name, node=node
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    qualified=f"{mod.name}.{node.name}.{item.name}",
                    module=mod.name,
                    local_name=f"{node.name}.{item.name}",
                    node=item,
                    ctx=mod.ctx,
                    class_name=node.name,
                )
                mod.functions[method.local_name] = method
                if item.name == "__init__":
                    cls._scan_init_retention(info, item)
        # A dataclass without an explicit __init__ retains every field.
        if not info.init_params and cls._is_dataclass(node):
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    info.init_params.append(item.target.id)
                    info.retained_params.add(item.target.id)
        mod.classes[node.name] = info
        mod.bindings.setdefault(node.name, ast.Name(id=node.name))

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if isinstance(target, ast.Name) and target.id == "dataclass":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "dataclass":
                return True
        return False

    @staticmethod
    def _scan_init_retention(info: ClassInfo, init: FunctionNode) -> None:
        args = init.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        info.init_params = [p for p in params if p != "self"]
        for stmt in ast.walk(init):
            targets: Sequence[ast.expr] = ()
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            stored = {
                t.attr
                for t in targets
                if isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            }
            if not stored:
                continue
            for name_node in ast.walk(value):
                if (
                    isinstance(name_node, ast.Name)
                    and name_node.id in info.init_params
                ):
                    info.retained_params.add(name_node.id)

    @classmethod
    def _scan_binding(cls, mod: ModuleSymbols, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value = node.value
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign):
            if node.value is None or not isinstance(node.target, ast.Name):
                return
            value = node.value
            names = [node.target.id]
        else:
            return
        for bound in names:
            mod.bindings[bound] = value
            if _is_mutable_value(value):
                mod.mutable_globals[bound] = node

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve(
        self, module: str, parts: Tuple[str, ...]
    ) -> Optional[str]:
        """Absolute dotted target of a name used inside ``module``.

        ``("make_rng",)`` resolves through the module's imports to
        ``"repro.sim.rng.make_rng"``; ``("np", "random", "default_rng")``
        to ``"numpy.random.default_rng"``; a name defined in the module
        itself to ``"<module>.<name>"``.  Returns ``None`` for local
        variables and unknown names.
        """
        if not parts:
            return None
        mod = self.modules.get(module)
        if mod is None:
            return None
        head, rest = parts[0], parts[1:]
        if head in mod.imports:
            base = mod.imports[head]
            resolved = ".".join((base,) + rest) if rest else base
            return self._follow_reexport(resolved)
        if head in mod.functions or head in mod.classes or head in mod.bindings:
            return ".".join((module, head) + rest)
        return None

    def _follow_reexport(self, dotted: str) -> str:
        """Follow one level of ``from x import y`` re-export chains.

        ``repro.lint.all_rules`` (re-exported from ``repro.lint.registry``)
        resolves to the defining module so call-graph edges land on the
        real function.
        """
        for _ in range(4):
            if dotted in self._functions or dotted in self._classes:
                return dotted
            if "." not in dotted:
                return dotted
            mod_part, leaf = dotted.rsplit(".", 1)
            mod = self.modules.get(mod_part)
            if mod is None or leaf not in mod.imports:
                return dotted
            dotted = mod.imports[leaf]
        return dotted

    def function(self, qualified: str) -> Optional[FunctionInfo]:
        return self._functions.get(qualified)

    def class_info(self, qualified: str) -> Optional[ClassInfo]:
        return self._classes.get(qualified)

    def all_functions(self) -> List[FunctionInfo]:
        """Every project function, in deterministic qualified-name order."""
        return [self._functions[name] for name in sorted(self._functions)]
