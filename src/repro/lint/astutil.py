"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple


def dotted_name(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """``("np", "random", "default_rng")`` for a Name/Attribute chain.

    Returns ``None`` for anything that is not a pure dotted name (calls,
    subscripts, literals, ...).
    """
    parts = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return tuple(reversed(parts))


def iter_docstrings(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Optional[str], int]]:
    """Yield ``(node, docstring, line)`` for the module, classes and defs.

    ``line`` anchors diagnostics: the docstring's own first line when one
    exists, else the definition line.
    """
    nodes: Tuple[ast.AST, ...] = (tree,) + tuple(
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
    )
    for node in nodes:
        doc = ast.get_docstring(node, clean=False)
        if isinstance(node, ast.Module):
            line = 1
        else:
            line = node.lineno
        if doc is not None and getattr(node, "body", None):
            first = node.body[0]  # type: ignore[attr-defined]
            if isinstance(first, ast.Expr):
                line = first.lineno
        yield node, doc, line


def qualified_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Yield ``("Class.method" | "function", node)`` for module-level defs.

    Only one nesting level (methods of module-level classes) is resolved —
    enough for the equation-registry contract, which names public API.
    """
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    yield f"{node.name}.{item.name}", item
