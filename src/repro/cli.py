"""Command-line interface: ``tsajs``.

Sub-commands
------------

``tsajs list``
    List all registered experiments (paper figures + ablations).
``tsajs run <experiment-id> [--quick] [--workers N] [--out FILE]``
    Run one experiment and print (and optionally save) its table.
    ``--workers`` fans the seeds over worker processes (same results).
    ``--backend serial|pool|queue`` picks the sweep executor;
    ``--cache DIR`` reuses previously computed (scheme, seed) cells
    from a crash-safe content-addressed store (see ``docs/caching.md``).
``tsajs worker QUEUE_DIR [--drain]``
    Drain task files from a ``run --backend queue --queue-dir`` sweep;
    run any number of workers, on any machine sharing the directory.
``tsajs solve [--users U --servers S --subbands N --delta --batch ...]``
    Solve a single random instance with the selected schemes and print
    the utilities side by side — a one-command demo of the library.
    ``--delta`` switches TSAJS to the incremental evaluation path;
    ``--batch [--batch-size B]`` to the vectorized batch path (both are
    bit-identical to the scalar path).
``tsajs schemes``
    List the scheme names accepted by ``solve --schemes``.
``tsajs episode [--pool P --slots T --outage q ...]``
    Run the slot-based episodic simulation (activity, mobility churn,
    server-outage fault injection) and print the per-slot log.
``tsajs faults [--outage q --band-outage q --churn q --policy P ...]``
    Inject a seeded fault set into one scheduled instance and print how
    the degradation policy (local fallback or restricted re-scheduling)
    recovers: utility retention, fallback count, repair time.
``tsajs lint [PATHS ...] [--format text|json] [--rules R001,...]``
    Run the project's static-analysis rules (determinism, unit
    discipline, paper-equation traceability); exits 1 on findings.
``tsajs trace record --out FILE [instance options]``
    Solve one instance with tracing on and write the schema-v2 JSONL
    span/event trace (see ``docs/observability.md``).
``tsajs trace show FILE [--convergence]``
    Validate and summarise a recorded trace; ``--convergence`` rebuilds
    the annealer's convergence profile from its ``anneal.level`` events.
``tsajs obs merge|tree|critical-path|flame|export|sentinel ...``
    Distributed-trace analysis: merge worker shards into one span tree,
    render the tree / the critical path / folded flamegraph stacks,
    export a metrics snapshot as OpenMetrics text, or compare fresh
    BENCH_*.json results against the checked-in baselines.

Observability flags: ``solve --trace FILE`` records the solve,
``run --telemetry DIR`` writes ``trace.jsonl`` + ``metrics.json`` for a
whole experiment, and ``run --profile`` adds per-seed cProfile hotspot
sidecars.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

import numpy as np

from repro import __version__
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.report import render_text
from repro.lint import cli as lint
from repro.sim.config import SimulationConfig
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tsajs",
        description="TSAJS reproduction: multi-server joint task scheduling for MEC",
    )
    parser.add_argument("--version", action="version", version=f"tsajs {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=list_experiments())
    run_parser.add_argument(
        "--quick",
        action="store_true",
        help="use the reduced quick preset instead of paper-scale settings",
    )
    run_parser.add_argument(
        "--out", metavar="FILE", help="also write the rendered table to FILE"
    )
    run_parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the structured result (incl. raw stats) as JSON",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "fan multi-seed runs out over N worker processes "
            "(results are identical to --workers 1, just faster)"
        ),
    )
    run_parser.add_argument(
        "--backend",
        choices=["serial", "pool", "queue"],
        default=None,
        metavar="NAME",
        help=(
            "sweep execution backend: serial (in-process), pool "
            "(process pool, uses --workers), or queue (file-based work "
            "queue in --queue-dir drained by 'tsajs worker' processes); "
            "results are byte-identical on every backend"
        ),
    )
    run_parser.add_argument(
        "--queue-dir",
        metavar="DIR",
        help=(
            "work-queue directory for --backend queue; point any number "
            "of 'tsajs worker DIR' processes (on any machine sharing "
            "the directory) at it to help drain the sweep"
        ),
    )
    run_parser.add_argument(
        "--journal",
        metavar="FILE",
        help=(
            "checkpoint every completed (scheme, seed) cell to this "
            "JSON-lines file as it is computed (crash-safe)"
        ),
    )
    run_parser.add_argument(
        "--cache",
        metavar="DIR",
        help=(
            "content-addressed result cache: every computed (scheme, "
            "seed) cell is stored under a key derived from the config, "
            "scheme, seed and code fingerprint, written atomically with "
            "a checksum; later runs (any experiment, any machine "
            "sharing DIR) reuse matching cells and corrupt entries are "
            "quarantined and recomputed"
        ),
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "load the --journal file and re-run only the missing cells; "
            "results are byte-identical to an uninterrupted run "
            "(--cache resumes by default)"
        ),
    )
    run_parser.add_argument(
        "--no-resume",
        action="store_true",
        help=(
            "ignore previously persisted cells: truncate the --journal "
            "file / recompute despite --cache hits (use this after a "
            "stale-code-fingerprint error)"
        ),
    )
    run_parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retry crashed or hung seeds up to N times (exponential "
            "backoff; failed seeds are recorded, not fatal)"
        ),
    )
    run_parser.add_argument(
        "--seed-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "treat a seed exceeding this wall-clock budget as hung and "
            "retry it (parallel runs only)"
        ),
    )
    run_parser.add_argument(
        "--telemetry",
        metavar="DIR",
        help=(
            "record a schema-v2 span/event trace (trace.jsonl, plus "
            "per-worker trace-*.jsonl shards on parallel backends) and a "
            "metrics snapshot (metrics.json) into DIR"
        ),
    )
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "capture a cProfile hotspot summary per seed into the "
            "--telemetry directory (requires --telemetry)"
        ),
    )
    run_parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run the experiment twice serially under the determinism "
            "sanitizer and assert per-stream RNG ledgers and outputs "
            "are identical (incompatible with --journal/--workers)"
        ),
    )

    worker_parser = sub.add_parser(
        "worker",
        help="drain a work-queue directory (see tsajs run --backend queue)",
    )
    worker_parser.add_argument(
        "queue_dir", help="queue directory created by tsajs run --queue-dir"
    )
    worker_parser.add_argument(
        "--drain",
        action="store_true",
        help="exit once the task directory is empty instead of polling",
    )
    worker_parser.add_argument(
        "--poll",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="idle poll period",
    )
    worker_parser.add_argument(
        "--heartbeat",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="lease heartbeat period (coordinators expire silent leases)",
    )
    worker_parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        metavar="N",
        help="stop after processing N tasks",
    )

    solve_parser = sub.add_parser("solve", help="solve one random instance")
    solve_parser.add_argument("--users", type=int, default=20)
    solve_parser.add_argument("--servers", type=int, default=9)
    solve_parser.add_argument("--subbands", type=int, default=3)
    solve_parser.add_argument("--workload-mc", type=float, default=1000.0)
    solve_parser.add_argument("--input-kb", type=float, default=420.0)
    solve_parser.add_argument("--seed", type=int, default=0)
    solve_parser.add_argument(
        "--quick",
        action="store_true",
        help="stop the annealer early (T_min = 1e-2)",
    )
    solve_parser.add_argument(
        "--schemes",
        default="TSAJS,hJTORA,LocalSearch,Greedy",
        help=(
            "comma-separated scheme names to run "
            "(see `tsajs schemes` for the full list)"
        ),
    )
    solve_parser.add_argument(
        "--batch",
        action="store_true",
        help=(
            "score speculative move batches with the vectorized batch "
            "evaluator; bit-identical results, lower wall-clock time"
        ),
    )
    solve_parser.add_argument(
        "--batch-size",
        type=int,
        default=64,
        metavar="B",
        help="moves per vectorized round with --batch (default 64)",
    )
    solve_parser.add_argument(
        "--delta",
        action="store_true",
        help=(
            "score annealer moves with the incremental (delta) evaluator; "
            "bit-identical results, lower wall-clock time"
        ),
    )
    solve_parser.add_argument(
        "--shard",
        action="store_true",
        help=(
            "solve via spatial sharding: partition the topology into "
            "cell clusters, solve each independently, then reconcile "
            "boundary users (see docs/sharding.md)"
        ),
    )
    solve_parser.add_argument(
        "--cluster-radius",
        type=float,
        default=2.0,
        metavar="KM",
        help="grid-tile side for the station partition with --shard (km)",
    )
    solve_parser.add_argument(
        "--interference-radius",
        type=float,
        default=None,
        metavar="KM",
        help=(
            "far-field cutoff distance with --shard (km); defaults to "
            "the inter-site distance"
        ),
    )
    solve_parser.add_argument(
        "--reconcile-rounds",
        type=int,
        default=2,
        metavar="R",
        help="boundary-reconciliation fixed-point cap with --shard",
    )
    solve_parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record a schema-v2 span/event trace of the solve to FILE",
    )
    solve_parser.add_argument(
        "--trace-iterations",
        action="store_true",
        help=(
            "include one anneal.step event per proposal in the trace "
            "(orders of magnitude more lines; requires --trace)"
        ),
    )
    solve_parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "replay the solve under scalar, delta and batch evaluation "
            "with the determinism sanitizer and assert per-stream RNG "
            "ledgers and utilities are identical (overrides "
            "--delta/--batch; incompatible with --trace)"
        ),
    )

    sub.add_parser("schemes", help="list available scheduling schemes")

    trace_parser = sub.add_parser(
        "trace", help="record or inspect observability traces"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_record = trace_sub.add_parser(
        "record", help="solve one instance with tracing on"
    )
    trace_record.add_argument("--out", required=True, metavar="FILE")
    trace_record.add_argument("--users", type=int, default=20)
    trace_record.add_argument("--servers", type=int, default=9)
    trace_record.add_argument("--subbands", type=int, default=3)
    trace_record.add_argument("--seed", type=int, default=0)
    trace_record.add_argument("--schemes", default="TSAJS")
    trace_record.add_argument(
        "--quick",
        action="store_true",
        help="stop the annealer early (T_min = 1e-2)",
    )
    trace_record.add_argument(
        "--delta",
        action="store_true",
        help="use the incremental (delta) evaluator",
    )
    trace_record.add_argument(
        "--iterations",
        action="store_true",
        help="include per-proposal anneal.step events",
    )
    trace_show = trace_sub.add_parser(
        "show", help="validate and summarise a recorded trace"
    )
    trace_show.add_argument("file", metavar="FILE")
    trace_show.add_argument(
        "--convergence",
        action="store_true",
        help="rebuild the convergence profile from anneal.level events",
    )

    obs_parser = sub.add_parser(
        "obs", help="distributed-trace analysis and the perf sentinel"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    obs_merge = obs_sub.add_parser(
        "merge",
        help="merge worker trace shards into one schema-valid trace",
    )
    obs_merge.add_argument(
        "telemetry_dir", metavar="DIR", help="telemetry directory to merge"
    )
    obs_merge.add_argument(
        "--out",
        metavar="FILE",
        help="merged trace destination (default DIR/trace_merged.jsonl)",
    )

    for name, help_text in (
        ("tree", "render the span hierarchy with per-span self/total time"),
        ("critical-path", "render the longest root-to-leaf span chain"),
        ("flame", "emit folded-stack lines for flamegraph tooling"),
    ):
        analysis = obs_sub.add_parser(name, help=help_text)
        analysis.add_argument(
            "path",
            metavar="TRACE",
            help=(
                "a trace .jsonl file, or a telemetry directory "
                "(shards are merged in memory)"
            ),
        )
        if name == "tree":
            analysis.add_argument(
                "--max-depth",
                type=int,
                default=None,
                help="truncate the rendering below this depth",
            )

    obs_export = obs_sub.add_parser(
        "export", help="export a metrics snapshot for scraping"
    )
    obs_export.add_argument(
        "metrics_file", metavar="FILE", help="a metrics.json snapshot"
    )
    obs_export.add_argument(
        "--format",
        choices=["openmetrics"],
        default="openmetrics",
        help="output format (OpenMetrics text is the only one today)",
    )
    obs_export.add_argument(
        "--out", metavar="FILE", help="write to FILE instead of stdout"
    )

    obs_sentinel = obs_sub.add_parser(
        "sentinel",
        help=(
            "compare fresh BENCH_*.json results against checked-in "
            "baselines (exit 1 on regression)"
        ),
    )
    obs_sentinel.add_argument(
        "--current",
        metavar="DIR",
        default=".",
        help="directory holding the freshly produced BENCH files",
    )
    obs_sentinel.add_argument(
        "--baseline",
        metavar="DIR",
        default=".",
        help="directory holding the checked-in baseline BENCH files",
    )
    obs_sentinel.add_argument(
        "--files",
        metavar="NAME",
        nargs="+",
        default=None,
        help="BENCH file names to compare (default: all four)",
    )
    obs_sentinel.add_argument(
        "--json",
        metavar="FILE",
        help="also write the machine-readable verdict to FILE",
    )

    lint_parser = sub.add_parser(
        "lint", help="run the project-specific static-analysis rules"
    )
    lint.add_arguments(lint_parser)

    episode_parser = sub.add_parser(
        "episode", help="run a slot-based episodic simulation"
    )
    episode_parser.add_argument("--pool", type=int, default=20)
    episode_parser.add_argument("--slots", type=int, default=10)
    episode_parser.add_argument("--servers", type=int, default=9)
    episode_parser.add_argument("--subbands", type=int, default=3)
    episode_parser.add_argument("--activity", type=float, default=0.6)
    episode_parser.add_argument("--churn", type=float, default=0.05)
    episode_parser.add_argument("--outage", type=float, default=0.0)
    episode_parser.add_argument("--scheme", default="TSAJS")
    episode_parser.add_argument("--seed", type=int, default=0)
    episode_parser.add_argument(
        "--quick",
        action="store_true",
        help="stop the annealer early (T_min = 1e-2)",
    )

    faults_parser = sub.add_parser(
        "faults", help="inject faults into one instance and degrade gracefully"
    )
    faults_parser.add_argument("--users", type=int, default=20)
    faults_parser.add_argument("--servers", type=int, default=5)
    faults_parser.add_argument("--subbands", type=int, default=3)
    faults_parser.add_argument("--seed", type=int, default=0)
    faults_parser.add_argument(
        "--outage", type=float, default=0.2, help="per-server full-outage probability"
    )
    faults_parser.add_argument(
        "--degraded",
        type=float,
        default=0.0,
        help="per-server capacity-degradation probability",
    )
    faults_parser.add_argument(
        "--degraded-capacity",
        type=float,
        default=0.25,
        help="surviving capacity fraction of a degraded server",
    )
    faults_parser.add_argument(
        "--band-outage",
        type=float,
        default=0.0,
        help="per-(server, band) outage probability",
    )
    faults_parser.add_argument(
        "--churn",
        type=float,
        default=0.0,
        help="per-user task-withdrawal probability",
    )
    faults_parser.add_argument(
        "--policy",
        choices=["local_fallback", "reschedule", "both"],
        default="both",
        help="degradation policy to apply",
    )
    faults_parser.add_argument(
        "--quick",
        action="store_true",
        help="stop the annealer early (T_min = 1e-2)",
    )
    return parser


def _cmd_list() -> int:
    for experiment_id in list_experiments():
        spec = get_experiment(experiment_id)
        print(f"{experiment_id:24s} {spec.description}")
    return 0


def _cmd_run(
    experiment_id: str,
    quick: bool,
    out: Optional[str],
    json_out: Optional[str],
    workers: int = 1,
    journal_path: Optional[str] = None,
    resume: bool = False,
    retries: Optional[int] = None,
    seed_timeout: Optional[float] = None,
    telemetry: Optional[str] = None,
    profile: bool = False,
    sanitize: bool = False,
    backend: Optional[str] = None,
    queue_dir: Optional[str] = None,
    cache: Optional[str] = None,
    no_resume: bool = False,
) -> int:
    if resume and journal_path is None:
        print("error: --resume requires --journal FILE", file=sys.stderr)
        return 2
    if resume and no_resume:
        print(
            "error: --resume and --no-resume are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if no_resume and journal_path is None and cache is None:
        print(
            "error: --no-resume requires --journal FILE or --cache DIR",
            file=sys.stderr,
        )
        return 2
    if journal_path is not None and cache is not None:
        print(
            "error: --journal and --cache both install the seed "
            "checkpoint store; pick one",
            file=sys.stderr,
        )
        return 2
    if backend == "queue" and queue_dir is None:
        print(
            "error: --backend queue requires --queue-dir DIR",
            file=sys.stderr,
        )
        return 2
    if queue_dir is not None and backend != "queue":
        print(
            "error: --queue-dir only applies to --backend queue",
            file=sys.stderr,
        )
        return 2
    if sanitize:
        if (
            journal_path is not None
            or telemetry is not None
            or workers != 1
            or backend is not None
            or cache is not None
        ):
            print(
                "error: --sanitize replays the experiment serially and "
                "cannot be combined with --journal, --cache, --backend, "
                "--telemetry or --workers",
                file=sys.stderr,
            )
            return 2
        return _cmd_run_sanitized(experiment_id, quick, out, json_out)
    if profile and telemetry is None:
        print("error: --profile requires --telemetry DIR", file=sys.stderr)
        return 2
    if telemetry is not None:
        from pathlib import Path

        from repro.obs.profile import set_profiling
        from repro.obs.recorder import set_recorder
        from repro.obs.trace import TraceRecorder

        telemetry_dir = Path(telemetry)
        # trace_id + shard_dir opt this run into distributed tracing:
        # pool/queue workers receive a TraceContext and publish their
        # own trace-*.jsonl shards next to the coordinator's trace.
        recorder = TraceRecorder(
            telemetry_dir / "trace.jsonl",
            trace_id=f"run-{experiment_id}",
            shard_dir=telemetry_dir,
        )
        set_recorder(recorder)
        if profile:
            set_profiling(telemetry_dir)
        try:
            status = _cmd_run_body(
                experiment_id, quick, out, json_out, workers,
                journal_path, resume, retries, seed_timeout,
                backend, queue_dir, cache, no_resume,
            )
        finally:
            set_recorder(None)
            if profile:
                set_profiling(None)
            recorder.close()
        from repro.atomicio import atomic_write_json

        atomic_write_json(
            telemetry_dir / "metrics.json", recorder.snapshot(), indent=2
        )
        from repro.obs.dist import find_shards

        n_shards = len(find_shards(telemetry_dir))
        shard_note = (
            f", {n_shards} worker shards (merge with "
            f"'tsajs obs merge {telemetry_dir}')"
            if n_shards
            else ""
        )
        print(
            f"[telemetry: {recorder.n_records} trace records and a metrics "
            f"snapshot written to {telemetry_dir}{shard_note}]"
        )
        return status
    return _cmd_run_body(
        experiment_id, quick, out, json_out, workers,
        journal_path, resume, retries, seed_timeout,
        backend, queue_dir, cache, no_resume,
    )


def _cmd_run_sanitized(
    experiment_id: str,
    quick: bool,
    out: Optional[str],
    json_out: Optional[str],
) -> int:
    """Run the experiment twice serially and assert ledger/output equality.

    Serial on purpose: the sanitizer's stream observer is process-local,
    so pool workers would create unobserved streams.  Two full replays
    must agree draw-for-draw on every stream and byte-for-byte on the
    rendered table.
    """
    from repro.errors import DeterminismViolation
    from repro.sanitize import assert_ledgers_match, sanitized

    spec = get_experiment(experiment_id)
    snapshots = []
    texts = []
    output = None
    for _ in range(2):
        with sanitized() as sanitizer:
            output = spec.run_quick() if quick else spec.run_full()
        snapshots.append(sanitizer.snapshot())
        texts.append(render_text(output))
    try:
        assert_ledgers_match(
            snapshots[0],
            snapshots[1],
            compare_draws=True,
            context="serial run replay",
        )
    except DeterminismViolation as exc:
        print(f"SANITIZER FAILED: {exc}", file=sys.stderr)
        return 1
    if texts[0] != texts[1]:
        print(
            "SANITIZER FAILED: rendered outputs differ between replays",
            file=sys.stderr,
        )
        return 1
    print(texts[1])
    if out:
        from repro.atomicio import atomic_write_text

        atomic_write_text(out, texts[1] + "\n")
        print(f"\n[written to {out}]")
    if json_out and output is not None:
        from repro.experiments.persistence import save_output

        save_output(output, json_out)
        print(f"[structured result written to {json_out}]")
    print(
        f"[sanitize: {len(snapshots[0])} RNG stream ledgers identical "
        "across 2 serial replays]"
    )
    return 0


def _cmd_run_body(
    experiment_id: str,
    quick: bool,
    out: Optional[str],
    json_out: Optional[str],
    workers: int = 1,
    journal_path: Optional[str] = None,
    resume: bool = False,
    retries: Optional[int] = None,
    seed_timeout: Optional[float] = None,
    backend: Optional[str] = None,
    queue_dir: Optional[str] = None,
    cache: Optional[str] = None,
    no_resume: bool = False,
) -> int:
    if workers != 1:
        from repro.sim.runner import set_default_n_workers

        set_default_n_workers(workers)
    if journal_path is not None:
        from repro.experiments.persistence import SweepJournal
        from repro.sim.runner import set_default_journal

        set_default_journal(SweepJournal(journal_path, resume=resume))
    if cache is not None:
        from repro.experiments.cache import ResultCache
        from repro.sim.runner import set_default_journal

        set_default_journal(ResultCache(cache, resume=not no_resume))
    if backend is not None:
        from repro.sim.executors import make_executor
        from repro.sim.runner import set_default_executor

        set_default_executor(
            make_executor(backend, n_jobs=workers, queue_dir=queue_dir)
        )
    if retries is not None or seed_timeout is not None:
        from repro.sim.runner import RetryPolicy, set_default_retry

        set_default_retry(
            RetryPolicy(
                max_attempts=retries if retries is not None else 3,
                seed_timeout_s=seed_timeout,
            )
        )
    spec = get_experiment(experiment_id)
    output = spec.run_quick() if quick else spec.run_full()
    text = render_text(output)
    print(text)
    if out:
        from repro.atomicio import atomic_write_text

        atomic_write_text(out, text + "\n")
        print(f"\n[written to {out}]")
    if json_out:
        from repro.experiments.persistence import save_output

        save_output(output, json_out)
        print(f"[structured result written to {json_out}]")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Drain a work-queue directory (the ``tsajs worker`` subcommand)."""
    from pathlib import Path

    from repro.sim.executors.worker import QueueWorker

    worker = QueueWorker(
        Path(args.queue_dir), poll_s=args.poll, heartbeat_s=args.heartbeat
    )
    try:
        if args.drain:
            processed = worker.drain(max_tasks=args.max_tasks)
        else:
            processed = worker.run_forever(max_tasks=args.max_tasks)
    except KeyboardInterrupt:
        print("[worker: interrupted]", file=sys.stderr)
        return 130
    print(f"[worker: processed {processed} task(s) from {args.queue_dir}]")
    return 0


def _cmd_schemes() -> int:
    from repro.experiments.schemes import available_schemes

    for name in available_schemes():
        print(name)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.trace_iterations and not args.trace:
        print("error: --trace-iterations requires --trace FILE", file=sys.stderr)
        return 2
    if args.sanitize:
        if args.trace:
            print(
                "error: --sanitize replays the solve and cannot be "
                "combined with --trace",
                file=sys.stderr,
            )
            return 2
        return _cmd_solve_sanitized(args)
    if args.trace:
        from repro.obs.recorder import use_recorder
        from repro.obs.trace import TraceRecorder

        recorder = TraceRecorder(
            args.trace, iteration_detail=args.trace_iterations
        )
        with recorder, use_recorder(recorder):
            status = _cmd_solve_body(args)
        print(f"[trace: {recorder.n_records} records written to {args.trace}]")
        return status
    return _cmd_solve_body(args)


def _cmd_solve_body(args: argparse.Namespace) -> int:
    from repro.experiments.schemes import build_schemes

    config = SimulationConfig(
        n_users=args.users,
        n_servers=args.servers,
        n_subbands=args.subbands,
        workload_megacycles=args.workload_mc,
        input_kb=args.input_kb,
        use_delta=args.delta,
        use_batch=args.batch,
        batch_size=args.batch_size,
        use_sharding=args.shard,
        cluster_radius_km=args.cluster_radius,
        interference_radius_km=args.interference_radius,
        max_reconcile_rounds=args.reconcile_rounds,
    )
    scenario = Scenario.build(config, seed=args.seed)
    if config.use_sharding:
        from repro.sim.validation import validate_sharding_config

        validate_sharding_config(config, scenario.topology)
    print(
        f"instance: U={args.users} S={args.servers} N={args.subbands} "
        f"w={args.workload_mc:.0f} Mc d={args.input_kb:.0f} KB seed={args.seed}"
        + (" [sharded]" if config.use_sharding else "")
    )
    names = [name.strip() for name in args.schemes.split(",") if name.strip()]
    schedulers = build_schemes(
        names,
        quick=args.quick,
        use_delta=config.use_delta,
        use_batch=config.use_batch,
        batch_size=config.batch_size,
        use_sharding=config.use_sharding,
        cluster_radius_km=config.cluster_radius_km,
        interference_radius_km=config.interference_radius_km,
        max_reconcile_rounds=config.max_reconcile_rounds,
    )
    for index, scheduler in enumerate(schedulers):
        rng = child_rng(args.seed, 100 + index)
        result = scheduler.schedule(scenario, rng)
        print(
            f"{scheduler.name:12s} utility={result.utility:10.4f} "
            f"offloaded={result.decision.n_offloaded():3d}/{args.users:<3d} "
            f"time={result.wall_time_s:7.3f}s"
        )
    return 0


def _cmd_solve_sanitized(args: argparse.Namespace) -> int:
    """Replay the solve under all three evaluators with ledger checks.

    Scalar vs delta must agree draw-for-draw; scalar vs batch must agree
    on final stream states (the batch evaluator draws speculative
    uniforms and rewinds, so its draw *counts* legitimately differ) and
    on every utility bit.
    """
    from repro.errors import DeterminismViolation
    from repro.experiments.schemes import build_schemes
    from repro.sanitize import assert_ledgers_match, sanitized

    names = [name.strip() for name in args.schemes.split(",") if name.strip()]
    modes = (
        ("scalar", False, False),
        ("delta", True, False),
        ("batch", False, True),
    )
    shard_tag = " sharded" if args.shard else ""
    print(
        f"instance: U={args.users} S={args.servers} N={args.subbands} "
        f"w={args.workload_mc:.0f} Mc d={args.input_kb:.0f} KB "
        f"seed={args.seed} [sanitize: scalar/delta/batch{shard_tag} replay]"
    )
    snapshots = {}
    utilities: Dict[str, Dict[str, float]] = {}
    for mode_name, use_delta, use_batch in modes:
        config = SimulationConfig(
            n_users=args.users,
            n_servers=args.servers,
            n_subbands=args.subbands,
            workload_megacycles=args.workload_mc,
            input_kb=args.input_kb,
            use_delta=use_delta,
            use_batch=use_batch,
            batch_size=args.batch_size,
            use_sharding=args.shard,
            cluster_radius_km=args.cluster_radius,
            interference_radius_km=args.interference_radius,
            max_reconcile_rounds=args.reconcile_rounds,
        )
        with sanitized() as sanitizer:
            scenario = Scenario.build(config, seed=args.seed)
            schedulers = build_schemes(
                names,
                quick=args.quick,
                use_delta=use_delta,
                use_batch=use_batch,
                batch_size=args.batch_size,
                use_sharding=config.use_sharding,
                cluster_radius_km=config.cluster_radius_km,
                interference_radius_km=config.interference_radius_km,
                max_reconcile_rounds=config.max_reconcile_rounds,
            )
            for index, scheduler in enumerate(schedulers):
                rng = child_rng(args.seed, 100 + index)
                result = scheduler.schedule(scenario, rng)
                utilities.setdefault(scheduler.name, {})[mode_name] = (
                    result.utility
                )
        snapshots[mode_name] = sanitizer.snapshot()
    try:
        assert_ledgers_match(
            snapshots["scalar"],
            snapshots["delta"],
            compare_draws=True,
            context="scalar vs delta replay",
        )
        assert_ledgers_match(
            snapshots["scalar"],
            snapshots["batch"],
            compare_draws=False,
            context="scalar vs batch replay",
        )
    except DeterminismViolation as exc:
        print(f"SANITIZER FAILED: {exc}", file=sys.stderr)
        return 1
    divergent = {
        name: by_mode
        for name, by_mode in utilities.items()
        if len({repr(value) for value in by_mode.values()}) != 1
    }
    if divergent:
        print(
            f"SANITIZER FAILED: utilities diverged across modes: "
            f"{divergent}",
            file=sys.stderr,
        )
        return 1
    for name in sorted(utilities):
        print(
            f"{name:12s} utility={utilities[name]['scalar']:10.4f} "
            "(bitwise-identical across scalar/delta/batch)"
        )
    n_streams = len(snapshots["scalar"])
    print(
        f"[sanitize: {n_streams} RNG stream ledgers identical across "
        "3 replays]"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        return _cmd_trace_record(args)
    return _cmd_trace_show(args)


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from repro.experiments.schemes import build_schemes
    from repro.obs.recorder import use_recorder
    from repro.obs.trace import TraceRecorder

    config = SimulationConfig(
        n_users=args.users,
        n_servers=args.servers,
        n_subbands=args.subbands,
        use_delta=args.delta,
    )
    scenario = Scenario.build(config, seed=args.seed)
    names = [name.strip() for name in args.schemes.split(",") if name.strip()]
    schedulers = build_schemes(names, quick=args.quick, use_delta=args.delta)
    recorder = TraceRecorder(args.out, iteration_detail=args.iterations)
    with recorder, use_recorder(recorder):
        for index, scheduler in enumerate(schedulers):
            rng = child_rng(args.seed, 100 + index)
            result = scheduler.schedule(scenario, rng)
            print(
                f"{scheduler.name:12s} utility={result.utility:10.4f} "
                f"evaluations={result.evaluations}"
            )
    print(f"[trace: {recorder.n_records} records written to {args.out}]")
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.errors import ReproError
    from repro.obs.schema import span_pairs_balanced
    from repro.obs.trace import read_trace

    try:
        records = read_trace(args.file)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    counts = Counter(
        (record["kind"], record["name"]) for record in records
    )
    versions = sorted({record["v"] for record in records})
    version_note = "/".join(f"v{v}" for v in versions) if versions else "empty"
    print(f"{args.file}: {len(records)} records, schema {version_note}, all valid")
    print(f"spans balanced: {'yes' if span_pairs_balanced(records) else 'NO'}")
    print(f"{'kind':>10} {'name':24} {'count':>7}")
    for (kind, name), count in sorted(counts.items()):
        print(f"{kind:>10} {name:24} {count:>7}")
    if args.convergence:
        from repro.analysis.convergence import (
            ascii_sparkline,
            best_traces_from_records,
            summarize_trace_records,
        )

        traces = best_traces_from_records(records)
        if not traces:
            print(
                "error: no anneal.level events in this trace "
                "(record one from an annealing scheduler)",
                file=sys.stderr,
            )
            return 1
        for index, trace in enumerate(traces):
            report = summarize_trace_records(records, run_index=index)
            print(
                f"\nannealing run {index}: final={report.final_value:.4f} "
                f"levels={report.levels} to90={report.levels_to_90} "
                f"to99={report.levels_to_99} auc={report.normalized_auc:.3f}"
            )
            finite = [value for value in trace if value > float("-inf")]
            if finite:
                print(ascii_sparkline(finite, width=min(len(finite), 60)))
    return 0


def _load_trace_records(path_arg: str) -> List[Dict[str, object]]:
    """Trace records from a .jsonl file or a telemetry directory.

    Directories are merged in memory (coordinator trace + worker
    shards), so the analysis subcommands work on a sweep's telemetry
    directory without an explicit ``tsajs obs merge`` first.
    """
    from pathlib import Path

    from repro.obs.dist import merge_trace_shards
    from repro.obs.trace import read_trace

    path = Path(path_arg)
    if path.is_dir():
        return merge_trace_shards(path)
    return read_trace(path)


def _cmd_obs(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ReproError

    try:
        if args.obs_command == "merge":
            from repro.obs.dist import write_merged_trace

            target, records = write_merged_trace(
                args.telemetry_dir, out_path=args.out
            )
            shard_labels = sorted(
                {
                    str(record["shard"])
                    for record in records
                    if "shard" in record
                }
            )
            print(
                f"{target}: {len(records)} records from "
                f"{len(shard_labels)} shard tasks, schema-valid"
            )
            return 0
        if args.obs_command in ("tree", "critical-path", "flame"):
            from repro.obs.analyze import (
                build_span_tree,
                critical_path,
                folded_stacks,
                render_critical_path,
                render_tree,
            )

            roots = build_span_tree(_load_trace_records(args.path))
            if args.obs_command == "tree":
                print(render_tree(roots, max_depth=args.max_depth))
            elif args.obs_command == "critical-path":
                print(render_critical_path(critical_path(roots)))
            else:
                for line in folded_stacks(roots):
                    print(line)
            return 0
        if args.obs_command == "export":
            import json as json_module

            from repro.obs.analyze import render_openmetrics

            snapshot = json_module.loads(
                Path(args.metrics_file).read_text(encoding="utf-8")
            )
            rendered = render_openmetrics(snapshot)
            if args.out:
                from repro.atomicio import atomic_write_text

                atomic_write_text(Path(args.out), rendered)
                print(f"wrote {args.out}")
            else:
                sys.stdout.write(rendered)
            return 0
        if args.obs_command == "sentinel":
            from repro.obs.sentinel import render_report, run_sentinel

            report = run_sentinel(
                args.current,
                args.baseline,
                files=tuple(args.files) if args.files else None,
            )
            print(render_report(report))
            if args.json:
                from repro.atomicio import atomic_write_json

                atomic_write_json(Path(args.json), report.to_payload(), indent=2)
            return 0 if report.verdict == "pass" else 1
        raise AssertionError(f"unhandled obs command {args.obs_command!r}")
    except BrokenPipeError:
        # Output piped into head/less and the reader quit: not an error.
        # Detach stdout so the interpreter's shutdown flush stays quiet.
        import os

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (OSError, ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_episode(args: argparse.Namespace) -> int:
    from repro.experiments.schemes import build_schemes
    from repro.sim.episodes import EpisodeConfig, run_episode

    config = EpisodeConfig(
        base=SimulationConfig(
            n_users=0, n_servers=args.servers, n_subbands=args.subbands
        ),
        pool_size=args.pool,
        n_slots=args.slots,
        activity_probability=args.activity,
        reposition_probability=args.churn,
        server_outage_probability=args.outage,
    )
    scheduler = build_schemes([args.scheme], quick=args.quick)[0]
    result = run_episode(config, scheduler, seed=args.seed)
    print(
        f"episode: pool={args.pool} slots={args.slots} scheme={args.scheme} "
        f"activity={args.activity} churn={args.churn} outage={args.outage}"
    )
    print(f"{'slot':>4} {'active':>6} {'offloaded':>9} {'down':>6} {'J':>9}")
    for record in result.slots:
        down = ",".join(map(str, record.failed_servers)) or "-"
        print(
            f"{record.slot:>4} {len(record.active_users):>6} "
            f"{record.metrics.n_offloaded:>9} {down:>6} "
            f"{record.metrics.system_utility:>9.3f}"
        )
    summary = result.utility_summary()
    print(
        f"\nmean utility/slot = {summary.mean:.3f} "
        f"(95% CI +/-{summary.ci_halfwidth:.3f}), "
        f"offload ratio = {result.offload_ratio_summary().mean:.0%}, "
        f"outage events = {result.total_outage_slots()}"
    )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.core.annealing import AnnealingSchedule
    from repro.core.degradation import DEGRADATION_POLICIES, degrade
    from repro.core.scheduler import TsajsScheduler
    from repro.faults import FaultConfig, apply_faults, draw_faults_for_seed

    config = SimulationConfig(
        n_users=args.users, n_servers=args.servers, n_subbands=args.subbands
    )
    scenario = Scenario.build(config, seed=args.seed)
    schedule = (
        AnnealingSchedule(min_temperature=1e-2) if args.quick else AnnealingSchedule()
    )
    planner = TsajsScheduler(schedule=schedule)
    plan = planner.schedule(scenario, child_rng(args.seed, 100))
    fault_config = FaultConfig(
        server_outage_probability=args.outage,
        server_degradation_probability=args.degraded,
        degraded_capacity_fraction=args.degraded_capacity,
        band_outage_probability=args.band_outage,
        arrival_churn_probability=args.churn,
    )
    faults = draw_faults_for_seed(
        fault_config,
        scenario.n_users,
        scenario.n_servers,
        scenario.n_subbands,
        args.seed,
    )
    faulted = apply_faults(scenario, faults)
    print(
        f"instance: U={args.users} S={args.servers} N={args.subbands} "
        f"seed={args.seed}"
    )
    print(f"planned utility (fault-free) = {plan.utility:.4f}")
    print(
        f"faults: down={sorted(faults.failed_servers) or '-'} "
        f"degraded={[s for s, _ in faults.degraded_servers] or '-'} "
        f"dead bands={sorted(faults.failed_bands) or '-'} "
        f"churned users={sorted(faults.churned_users) or '-'}"
    )
    policies = (
        list(DEGRADATION_POLICIES) if args.policy == "both" else [args.policy]
    )
    for index, policy in enumerate(policies):
        degraded = degrade(
            faulted,
            plan,
            faults,
            policy,
            rng=child_rng(args.seed, 200 + index),
            schedule=schedule,
        )
        print(
            f"{policy:15s} utility={degraded.degraded_utility:10.4f} "
            f"retention={degraded.utility_retention:6.1%} "
            f"fallback={degraded.n_fallback:3d} churned={degraded.n_churned:3d} "
            f"repair={degraded.reschedule_wall_time_s:.3f}s"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``tsajs`` console script)."""
    args = _build_parser().parse_args(argv)
    np.seterr(all="raise", under="ignore")
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiment,
            args.quick,
            args.out,
            args.json,
            args.workers,
            journal_path=args.journal,
            resume=args.resume,
            retries=args.retries,
            seed_timeout=args.seed_timeout,
            telemetry=args.telemetry,
            profile=args.profile,
            sanitize=args.sanitize,
            backend=args.backend,
            queue_dir=args.queue_dir,
            cache=args.cache,
            no_resume=args.no_resume,
        )
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "schemes":
        return _cmd_schemes()
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "episode":
        return _cmd_episode(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "lint":
        return lint.run(args, prog="tsajs lint")
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
