"""repro — a reproduction of TSAJS (ICDCS 2025).

TSAJS is an efficient multi-server joint task-scheduling scheme for mobile
edge computing: it decomposes the joint task-offloading / resource-
allocation MINLP into a combinatorial offloading problem — solved with
threshold-triggered simulated annealing (TTSA) — and a convex computing-
resource-allocation problem solved in closed form via the KKT conditions.

Quickstart::

    from repro import Scenario, SimulationConfig, TsajsScheduler

    config = SimulationConfig(n_users=20)      # paper defaults elsewhere
    scenario = Scenario.build(config, seed=42)
    result = TsajsScheduler().schedule(scenario)
    print(result.utility, result.decision.n_offloaded())

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md`` for
the paper-versus-measured record of every figure.
"""

from repro.baselines import (
    AllLocalScheduler,
    ExhaustiveScheduler,
    GeneticScheduler,
    GreedyScheduler,
    HJtoraScheduler,
    LocalSearchScheduler,
    RandomScheduler,
)
from repro.core import (
    AnnealingSchedule,
    NeighborhoodSampler,
    ObjectiveEvaluator,
    OffloadingDecision,
    ScheduleResult,
    ThresholdTriggeredAnnealer,
    TsajsScheduler,
    kkt_allocation,
)
from repro.extensions import (
    DownlinkAwareEvaluator,
    DownlinkModel,
    TsajsWithPowerControl,
    optimize_powers,
)
from repro.sim import (
    ExperimentResult,
    Scenario,
    SimulationConfig,
    SolutionMetrics,
    run_schemes,
    solution_metrics,
    summarize,
)

__version__ = "1.0.0"

__all__ = [
    "AllLocalScheduler",
    "AnnealingSchedule",
    "DownlinkAwareEvaluator",
    "DownlinkModel",
    "ExhaustiveScheduler",
    "ExperimentResult",
    "GeneticScheduler",
    "GreedyScheduler",
    "HJtoraScheduler",
    "LocalSearchScheduler",
    "NeighborhoodSampler",
    "ObjectiveEvaluator",
    "OffloadingDecision",
    "RandomScheduler",
    "Scenario",
    "ScheduleResult",
    "SimulationConfig",
    "SolutionMetrics",
    "ThresholdTriggeredAnnealer",
    "TsajsScheduler",
    "TsajsWithPowerControl",
    "kkt_allocation",
    "optimize_powers",
    "run_schemes",
    "solution_metrics",
    "summarize",
]
