"""Downlink-aware offloading evaluation.

The core model ignores the result-return delay "due to the small amount
of output data and the fast data transmission rate in the downlink"
(Sec. III-A-2), but the paper notes the algorithm "can still adapt by
taking into account the actual downlink rate and the output data size".

This module implements that adaptation:

* :class:`DownlinkModel` computes per-link downlink rates.  Base stations
  transmit at macro-cell power on the full band; downlink transmissions
  from different stations are coordinated (C-RAN, Sec. I), so the rate is
  SNR-limited: ``R_dl[u, s] = B * log2(1 + P_bs * h[u, s] / sigma^2)``.
* :class:`DownlinkAwareEvaluator` extends the objective with the return
  delay ``t_dl = o_u / R_dl[u, s]`` of shipping ``o_u`` output bits back.
  The extra term is constant per (user, server) pair once ``X`` is fixed,
  so the problem decomposition — and the KKT allocation — are unchanged;
  only the communication cost ``Gamma(X)`` gains a term.  TSAJS and every
  baseline can therefore run unmodified against this evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.decision import OffloadingDecision
from repro.core.objective import ObjectiveEvaluator, UtilityBreakdown
from repro.errors import ConfigurationError
from repro.sim.scenario import Scenario
from repro.units import dbm_to_watts


@dataclass(frozen=True)
class DownlinkModel:
    """Downlink rate model: coordinated full-band SNR-limited links.

    Parameters
    ----------
    bs_tx_power_dbm:
        Base-station transmit power (46 dBm is a standard macro cell).
    output_fraction:
        Task output size as a fraction of the input size ``d_u`` (the
        result of a computation is typically much smaller than its input;
        0.1 means 10 % of the input volume travels back).
    """

    bs_tx_power_dbm: float = 46.0
    output_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.output_fraction <= 0:
            raise ConfigurationError(
                f"output_fraction must be positive, got {self.output_fraction}"
            )

    @property
    def bs_tx_power_watts(self) -> float:
        return dbm_to_watts(self.bs_tx_power_dbm)

    def rates_bps(self, scenario: Scenario) -> np.ndarray:
        """Downlink rate matrix ``R_dl[u, s]`` over the full band.

        Uses the frequency-flat link gain (band 0 of the uplink tensor —
        the channel is reciprocal on the association timescale).
        """
        link_gains = scenario.gains[:, :, 0]
        snr = self.bs_tx_power_watts * link_gains / scenario.noise_watts
        return scenario.ofdma.total_bandwidth_hz * np.log2(1.0 + snr)

    def output_bits(self, scenario: Scenario) -> np.ndarray:
        """Per-user output size ``o_u = output_fraction * d_u``."""
        return self.output_fraction * scenario.input_bits


class DownlinkAwareEvaluator(ObjectiveEvaluator):
    """Objective evaluator with the result-return delay included.

    The offload latency of Eq. (8) becomes
    ``t_u = t_upload + t_execute + t_download`` with
    ``t_download = o_u / R_dl[u, s]``.  Only the time-preference term of
    ``J_u`` is affected (receiving costs the handset no transmit energy),
    adding the constant penalty
    ``lam_u * beta_t_u * t_download / t_local_u`` per offloaded user.
    """

    def __init__(
        self, scenario: Scenario, downlink: Optional[DownlinkModel] = None
    ) -> None:
        super().__init__(scenario)
        self.downlink = downlink if downlink is not None else DownlinkModel()
        rates = self.downlink.rates_bps(scenario)
        if np.any(rates <= 0.0):
            raise ConfigurationError("downlink rates must be positive")
        output_bits = self.downlink.output_bits(scenario)
        #: ``t_dl[u, s]``: result-return delay if user u offloads to s.
        self.download_time_s = output_bits[:, None] / rates
        if scenario.n_users:
            #: Fixed per-(u, s) utility penalty for the return trip.
            self._penalty = (
                scenario.operator_weight[:, None]
                * scenario.beta_time[:, None]
                * self.download_time_s
                / scenario.local_time_s[:, None]
            )
        else:
            self._penalty = np.zeros((0, scenario.n_servers))

    def evaluate_assignment(
        self, server_of_user: np.ndarray, channel_of_user: np.ndarray
    ) -> float:
        base = super().evaluate_assignment(server_of_user, channel_of_user)
        offloaded = np.flatnonzero(np.asarray(server_of_user) >= 0)
        if offloaded.size == 0 or not np.isfinite(base):
            return base
        servers = np.asarray(server_of_user)[offloaded]
        return base - float(self._penalty[offloaded, servers].sum())

    def breakdown(
        self,
        decision: OffloadingDecision,
        allocation: Optional[np.ndarray] = None,
    ) -> UtilityBreakdown:
        base = super().breakdown(decision, allocation)
        sc = self.scenario
        time_s = base.time_s.copy()
        utility = base.utility.copy()
        download = np.zeros(sc.n_users)
        for u in np.flatnonzero(base.offloaded):
            s = int(decision.server[u])
            download[u] = self.download_time_s[u, s]
            time_s[u] += download[u]
            utility[u] -= sc.beta_time[u] * download[u] / sc.local_time_s[u]
        system_utility = float(np.sum(sc.operator_weight * utility))
        return UtilityBreakdown(
            system_utility=system_utility,
            utility=utility,
            rate_bps=base.rate_bps,
            sinr=base.sinr,
            upload_time_s=base.upload_time_s,
            execute_time_s=base.execute_time_s,
            time_s=time_s,
            energy_j=base.energy_j,
            offloaded=base.offloaded,
            allocation=base.allocation,
        )
