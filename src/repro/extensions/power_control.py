"""Uplink transmit-power optimisation on top of TSAJS.

The paper keeps every user's transmit power fixed ("we've kept the user
transmit power constant", Sec. III-B-1) and explicitly scopes power
allocation out of the optimisation ("we're not focusing on the
optimization of uplink power allocation", Sec. IV).  This extension adds
that missing degree of freedom as a post-processing stage:

* For a *fixed* offloading decision ``X``, the system utility depends on
  the power vector ``p`` through each user's own SINR and energy term and
  through the interference it inflicts on co-channel users of other
  cells.  :func:`optimize_powers` runs Gauss-Seidel best-response sweeps:
  each offloaded user in turn picks the power in ``[p_min, p_max]`` that
  maximises the *system* utility with everyone else fixed (coarse
  log-spaced grid + local refinement), repeated until a sweep yields no
  measurable gain.  Each step is a coordinate ascent on a continuous
  function over a box, so the utility is monotonically non-decreasing and
  converges.

* :class:`TsajsWithPowerControl` alternates TSAJS (re-optimising ``X``
  for the current powers) with the power stage, giving a joint
  heuristic for offloading + power allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.annealing import AnnealingSchedule
from repro.core.decision import OffloadingDecision
from repro.core.scheduler import ScheduleResult, TsajsScheduler
from repro.errors import ConfigurationError
from repro.net.sinr import compute_link_stats
from repro.sim.rng import make_rng
from repro.sim.scenario import Scenario
from repro.tasks.device import UserDevice


def utility_with_powers(
    scenario: Scenario,
    decision: OffloadingDecision,
    powers: np.ndarray,
) -> float:
    """System utility ``J*(X)`` under an explicit power vector.

    Identical to :meth:`ObjectiveEvaluator.evaluate` except the transmit
    powers are taken from ``powers`` instead of the scenario.  ``phi``,
    ``psi`` and ``eta`` do not depend on the transmit power (Eq. 19), so
    only the SINR terms and the ``psi * p`` energy weight change.
    """
    powers = np.asarray(powers, dtype=float)
    if powers.shape != (scenario.n_users,):
        raise ConfigurationError(
            f"powers must have shape ({scenario.n_users},), got {powers.shape}"
        )
    offloaded = decision.offloaded_users()
    if offloaded.size == 0:
        return 0.0
    stats = compute_link_stats(
        scenario.gains,
        powers,
        scenario.noise_watts,
        scenario.subband_width_hz,
        decision.server,
        decision.channel,
        validate=False,
    )
    se = stats.spectral_efficiency[offloaded]
    if np.any(se <= 0.0):
        return float("-inf")
    comm_weight = scenario.phi[offloaded] + scenario.psi[offloaded] * powers[offloaded]
    gamma_cost = float(np.sum(comm_weight / se))
    root_sums = np.bincount(
        decision.server[offloaded],
        weights=scenario.sqrt_eta[offloaded],
        minlength=scenario.n_servers,
    )
    lambda_cost = float(np.sum(root_sums**2 / scenario.server_cpu_hz))
    gain = float(
        np.sum(
            scenario.operator_weight[offloaded]
            * (scenario.beta_time[offloaded] + scenario.beta_energy[offloaded])
        )
    )
    return gain - gamma_cost - lambda_cost


def scenario_with_powers(scenario: Scenario, powers: np.ndarray) -> Scenario:
    """A copy of ``scenario`` whose users transmit at the given powers."""
    powers = np.asarray(powers, dtype=float)
    if powers.shape != (scenario.n_users,):
        raise ConfigurationError(
            f"powers must have shape ({scenario.n_users},), got {powers.shape}"
        )
    users = [
        UserDevice(
            task=user.task,
            cpu_hz=user.cpu_hz,
            tx_power_watts=float(power),
            kappa=user.kappa,
            beta_time=user.beta_time,
            beta_energy=user.beta_energy,
            operator_weight=user.operator_weight,
        )
        for user, power in zip(scenario.users, powers)
    ]
    return Scenario(
        users=users,
        servers=scenario.servers,
        gains=scenario.gains,
        ofdma=scenario.ofdma,
        noise_watts=scenario.noise_watts,
        topology=scenario.topology,
        user_positions=scenario.user_positions,
    )


@dataclass(frozen=True)
class PowerControlResult:
    """Outcome of the best-response power optimisation.

    Attributes
    ----------
    powers:
        Optimised per-user transmit powers (local users keep their
        original setting — they do not transmit).
    utility_before / utility_after:
        System utility at the original and optimised powers.
    sweeps_run:
        Gauss-Seidel sweeps executed.
    converged:
        Whether the last sweep improved by less than the tolerance.
    """

    powers: np.ndarray
    utility_before: float
    utility_after: float
    sweeps_run: int
    converged: bool

    @property
    def utility_gain(self) -> float:
        return self.utility_after - self.utility_before


def optimize_powers(
    scenario: Scenario,
    decision: OffloadingDecision,
    p_min_watts: float = 1e-3,
    p_max_watts: float = 0.1,
    max_sweeps: int = 10,
    grid_points: int = 24,
    refine_iterations: int = 20,
    tolerance: float = 1e-9,
) -> PowerControlResult:
    """Best-response uplink power optimisation for a fixed decision.

    Each offloaded user in turn maximises the system utility over its own
    power: a log-spaced grid bracket followed by golden-section refinement
    on the bracketing interval.  Sweeps repeat until the total improvement
    of a sweep falls below ``tolerance`` (or ``max_sweeps`` is hit).
    """
    if not 0.0 < p_min_watts < p_max_watts:
        raise ConfigurationError(
            f"need 0 < p_min < p_max, got {p_min_watts}, {p_max_watts}"
        )
    if grid_points < 3:
        raise ConfigurationError(f"grid_points must be >= 3, got {grid_points}")
    if max_sweeps < 1:
        raise ConfigurationError(f"max_sweeps must be >= 1, got {max_sweeps}")

    powers = scenario.tx_power_watts.copy()
    before = utility_with_powers(scenario, decision, powers)
    offloaded = [int(u) for u in decision.offloaded_users()]
    grid = np.geomspace(p_min_watts, p_max_watts, grid_points)
    invphi = (np.sqrt(5.0) - 1.0) / 2.0

    current = before
    sweeps_run = 0
    converged = False
    for _ in range(max_sweeps):
        sweeps_run += 1
        sweep_start = current
        for user in offloaded:
            # Coarse bracket over the log grid.
            best_value = -np.inf
            best_index = 0
            for index, candidate in enumerate(grid):
                powers[user] = candidate
                value = utility_with_powers(scenario, decision, powers)
                if value > best_value:
                    best_value, best_index = value, index
            low = grid[max(best_index - 1, 0)]
            high = grid[min(best_index + 1, grid_points - 1)]
            # Golden-section refinement inside the bracket.
            a, b = low, high
            for _ in range(refine_iterations):
                c = b - invphi * (b - a)
                d = a + invphi * (b - a)
                powers[user] = c
                fc = utility_with_powers(scenario, decision, powers)
                powers[user] = d
                fd = utility_with_powers(scenario, decision, powers)
                if fc > fd:
                    b = d
                else:
                    a = c
            powers[user] = (a + b) / 2.0
            refined = utility_with_powers(scenario, decision, powers)
            if refined < best_value:  # keep the grid winner if refinement lost
                powers[user] = grid[best_index]
                refined = best_value
            current = refined
        if current - sweep_start < tolerance:
            converged = True
            break

    return PowerControlResult(
        powers=powers,
        utility_before=before,
        utility_after=current,
        sweeps_run=sweeps_run,
        converged=converged,
    )


@dataclass(frozen=True)
class JointScheduleResult:
    """Result of alternating TSAJS and power control.

    ``result`` is the final schedule (decision/allocation/utility measured
    at the optimised powers); ``scenario`` is the power-adjusted scenario
    it refers to.
    """

    result: ScheduleResult
    powers: np.ndarray
    scenario: Scenario
    utility_history: List[float]


class TsajsWithPowerControl:
    """Joint offloading + uplink power heuristic (TSAJS <-> best response).

    Each round runs TSAJS on the current scenario, then optimises the
    powers for the decision found; the adjusted powers feed the next
    round.  With ``rounds=1`` this is TSAJS plus one power post-pass.
    """

    name = "TSAJS-PC"

    def __init__(
        self,
        schedule: Optional[AnnealingSchedule] = None,
        rounds: int = 2,
        p_min_watts: float = 1e-3,
        p_max_watts: float = 0.1,
        use_delta: bool = False,
        use_batch: bool = False,
        batch_size: int = 64,
    ) -> None:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        self.tsajs = TsajsScheduler(
            schedule=schedule,
            use_delta=use_delta,
            use_batch=use_batch,
            batch_size=batch_size,
        )
        self.rounds = rounds
        self.p_min_watts = p_min_watts
        self.p_max_watts = p_max_watts

    def schedule_joint(
        self, scenario: Scenario, rng: Optional[np.random.Generator] = None
    ) -> JointScheduleResult:
        """Alternate TSAJS and power best-response for ``rounds`` rounds."""
        rng = rng if rng is not None else make_rng()
        current = scenario
        history: List[float] = []
        result = None
        powers = scenario.tx_power_watts.copy()
        for _ in range(self.rounds):
            result = self.tsajs.schedule(current, rng)
            history.append(result.utility)
            control = optimize_powers(
                current,
                result.decision,
                p_min_watts=self.p_min_watts,
                p_max_watts=self.p_max_watts,
            )
            powers = control.powers
            history.append(control.utility_after)
            current = scenario_with_powers(current, powers)
        assert result is not None
        # Re-state the final schedule against the power-adjusted scenario.
        final = ScheduleResult(
            decision=result.decision,
            allocation=result.allocation,
            utility=history[-1],
            evaluations=result.evaluations,
            wall_time_s=result.wall_time_s,
            trace=result.trace,
        )
        return JointScheduleResult(
            result=final,
            powers=powers,
            scenario=current,
            utility_history=history,
        )

    def schedule(
        self, scenario: Scenario, rng: Optional[np.random.Generator] = None
    ) -> ScheduleResult:
        """Scheduler-protocol entry point (returns the final schedule)."""
        return self.schedule_joint(scenario, rng).result
