"""Extensions beyond the paper's core evaluation.

The paper sketches two directions this package implements:

* **Downlink awareness** (Sec. III-A-2): "if the downlink latency becomes
  significant, our algorithm can still adapt by taking into account the
  actual downlink rate and the output data size" —
  :mod:`repro.extensions.downlink`.
* **Uplink power optimisation** (Sec. IV): "we're not focusing on the
  optimization of uplink power allocation" — the natural next step,
  best-response power control on top of a fixed offloading decision —
  :mod:`repro.extensions.power_control`.
* **Partial offloading** (related work, ref. [30]): bit-level divisible
  tasks with concurrent local/remote execution, solved in closed form on
  top of any full-offload decision — :mod:`repro.extensions.partial`.
"""

from repro.extensions.downlink import DownlinkAwareEvaluator, DownlinkModel
from repro.extensions.partial import PartialOffloadResult, optimal_fractions
from repro.extensions.power_control import (
    PowerControlResult,
    TsajsWithPowerControl,
    optimize_powers,
    scenario_with_powers,
)

__all__ = [
    "DownlinkAwareEvaluator",
    "DownlinkModel",
    "PartialOffloadResult",
    "PowerControlResult",
    "TsajsWithPowerControl",
    "optimal_fractions",
    "optimize_powers",
    "scenario_with_powers",
]
