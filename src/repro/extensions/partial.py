"""Partial (bit-level divisible) offloading extension.

The paper's task model is atomic — "a singular, non-divisible
computational assignment" (Sec. III-A-1) — but its related work surveys
partial offloading, where a task "can be arbitrarily partitioned at the
bit level" (ref. [30]).  This extension quantifies what atomicity costs.

Model (standard data-partition formulation): user ``u`` offloads a
fraction ``rho`` of its task — uploading ``rho * d_u`` bits and executing
``rho * w_u`` cycles remotely — while the remaining ``(1 - rho) * w_u``
cycles run *concurrently* on the local CPU:

* completion time ``t(rho) = max((1-rho) t_local, rho * C_u)`` with
  ``C_u = d_u / R_u + w_u / f_us`` (the full-offload round trip),
* device energy ``E(rho) = (1-rho) E_local + rho * p_u d_u / R_u``,
* benefit ``J_u(rho)`` per Eq. (10) with these ``t`` and ``E``.

For fixed rates and CPU shares, ``t(rho)`` is a maximum of two affine
functions — convex piecewise-linear — and ``E(rho)`` is affine, so
``J_u(rho)`` is *concave piecewise-linear* in ``rho``.  Its maximum over
``[0, 1]`` therefore sits at one of three candidates: ``rho = 0`` (stay
local), ``rho = 1`` (the paper's atomic offload), or the kink
``rho_hat = t_local / (t_local + C_u)`` where local and remote parts
finish simultaneously.  :func:`optimal_fractions` evaluates the three
candidates in closed form — no numeric search.

Resource allocation keeps the paper's KKT split (Eq. 22) computed for
the offloading set: the split is optimal for the full-offload objective
and remains feasible here; re-deriving the joint (rho, F) optimum is out
of scope and documented as a simplification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.allocation import kkt_allocation
from repro.core.decision import OffloadingDecision
from repro.errors import ConfigurationError
from repro.net.sinr import compute_link_stats
from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class PartialOffloadResult:
    """Optimal per-user offload fractions for a fixed decision.

    Attributes
    ----------
    fractions:
        ``rho_u`` per user (0 for users the decision keeps local).
    utility:
        Per-user benefit ``J_u(rho_u)``.
    system_utility:
        ``sum_u lambda_u J_u(rho_u)`` (Eq. 11 with partial execution).
    full_offload_utility:
        The same sum at ``rho = 1`` for every offloaded user — the
        paper's atomic model — for direct comparison.
    time_s, energy_j:
        Experienced completion time / device energy per user.
    """

    fractions: np.ndarray
    utility: np.ndarray
    system_utility: float
    full_offload_utility: float
    time_s: np.ndarray
    energy_j: np.ndarray

    @property
    def partition_gain(self) -> float:
        """Utility gained by allowing divisible tasks."""
        return self.system_utility - self.full_offload_utility


def optimal_fractions(
    scenario: Scenario,
    decision: OffloadingDecision,
    allocation: Optional[np.ndarray] = None,
) -> PartialOffloadResult:
    """Closed-form optimal offload fractions for every offloaded user.

    Parameters
    ----------
    scenario, decision:
        The instance and the (full-offload) slot assignment to relax.
    allocation:
        CPU-share matrix; defaults to the KKT optimum for ``decision``.
    """
    if allocation is None:
        allocation = kkt_allocation(scenario, decision)
    else:
        allocation = np.asarray(allocation, dtype=float)
        if allocation.shape != (scenario.n_users, scenario.n_servers):
            raise ConfigurationError(
                "allocation must have shape "
                f"({scenario.n_users}, {scenario.n_servers}), got {allocation.shape}"
            )

    stats = compute_link_stats(
        scenario.gains,
        scenario.tx_power_watts,
        scenario.noise_watts,
        scenario.subband_width_hz,
        decision.server,
        decision.channel,
    )

    n = scenario.n_users
    fractions = np.zeros(n)
    utility = np.zeros(n)
    time_s = scenario.local_time_s.copy()
    energy = scenario.local_energy_j.copy()
    full_utility_sum = 0.0

    for u in decision.offloaded_users():
        u = int(u)
        server = int(decision.server[u])
        rate = stats.rate_bps[u]
        share = allocation[u, server]
        if rate <= 0.0 or share <= 0.0:
            # Degenerate link: partial offloading cannot help; stay local.
            continue
        t_local = scenario.local_time_s[u]
        e_local = scenario.local_energy_j[u]
        round_trip = scenario.input_bits[u] / rate + scenario.cycles[u] / share
        tx_energy_full = (
            scenario.tx_power_watts[u] * scenario.input_bits[u] / rate
        )

        def benefit(rho: float) -> float:
            completion = max((1.0 - rho) * t_local, rho * round_trip)
            device_energy = (1.0 - rho) * e_local + rho * tx_energy_full
            return scenario.beta_time[u] * (t_local - completion) / t_local + (
                scenario.beta_energy[u] * (e_local - device_energy) / e_local
            )

        kink = t_local / (t_local + round_trip)
        candidates = (0.0, kink, 1.0)
        values = [benefit(rho) for rho in candidates]
        best = int(np.argmax(values))
        rho_star = candidates[best]

        fractions[u] = rho_star
        utility[u] = values[best]
        time_s[u] = max((1.0 - rho_star) * t_local, rho_star * round_trip)
        energy[u] = (1.0 - rho_star) * e_local + rho_star * tx_energy_full
        full_utility_sum += scenario.operator_weight[u] * benefit(1.0)

    system_utility = float(np.sum(scenario.operator_weight * utility))
    return PartialOffloadResult(
        fractions=fractions,
        utility=utility,
        system_utility=system_utility,
        full_offload_utility=float(full_utility_sum),
        time_s=time_s,
        energy_j=energy,
    )
