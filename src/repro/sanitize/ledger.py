"""Stream ledgers, the counting Generator proxy, and the sanitizer."""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List

import numpy as np

from repro.errors import DeterminismViolation
from repro.sim import rng as rng_module


def state_digest(bit_generator: Any) -> str:
    """Short stable digest of a ``BitGenerator``'s full state.

    The state dict is canonicalised (sorted keys, numpy scalars coerced
    to int) so the digest is a pure function of the mathematical state.
    """
    blob = json.dumps(bit_generator.state, sort_keys=True, default=int)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass
class StreamLedger:
    """Running account of one labelled RNG stream."""

    label: str
    #: Number of draw calls made through the proxy.  State *rewinds*
    #: (``bit_generator.state = ...``) are not draws and not counted —
    #: they go through the passed-through real ``bit_generator``.
    draws: int = 0
    #: Explicit mid-run checkpoints (state digests), in order.
    checkpoints: List[str] = field(default_factory=list)


class SanitizedGenerator:
    """Counting proxy around a ``numpy.random.Generator``.

    Every callable attribute is wrapped to increment the ledger's draw
    count before delegating; ``bit_generator`` passes through to the real
    object so the annealer's state-rewind protocol works unchanged, and
    ``spawn`` wraps the children so derived streams are ledgered too.

    The proxy is duck-type compatible with ``Generator`` for everything
    the library does (no ``isinstance`` checks exist in ``src/``).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        ledger: StreamLedger,
        sanitizer: "DeterminismSanitizer",
    ) -> None:
        self._rng = rng
        self._ledger = ledger
        self._sanitizer = sanitizer

    @property
    def bit_generator(self) -> Any:
        return self._rng.bit_generator

    @property
    def ledger(self) -> StreamLedger:
        return self._ledger

    def spawn(self, n_children: int) -> List["SanitizedGenerator"]:
        children = self._rng.spawn(n_children)
        return [
            self._sanitizer.wrap(child, f"{self._ledger.label}/spawn{index}")
            for index, child in enumerate(children)
        ]

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._rng, name)
        if callable(attr):
            ledger = self._ledger

            def counted(*args: Any, **kwargs: Any) -> Any:
                ledger.draws += 1
                return attr(*args, **kwargs)

            return counted
        return attr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SanitizedGenerator({self._ledger.label!r}, "
            f"draws={self._ledger.draws})"
        )


class DeterminismSanitizer:
    """Wraps labelled streams and snapshots their ledgers for comparison."""

    def __init__(self) -> None:
        self.ledgers: Dict[str, StreamLedger] = {}
        #: Last proxy wrapped per label (its live state feeds digests).
        self._proxies: Dict[str, SanitizedGenerator] = {}

    def wrap(
        self, rng: np.random.Generator, label: str
    ) -> np.random.Generator:
        """Observer hook: wrap one freshly-created stream.

        Re-creating the same label (e.g. ``child:0:100`` on a resumed
        run) reuses the existing ledger so draws keep accumulating under
        one account.
        """
        if isinstance(rng, SanitizedGenerator):
            return rng
        ledger = self.ledgers.get(label)
        if ledger is None:
            ledger = StreamLedger(label=label)
            self.ledgers[label] = ledger
        proxy = SanitizedGenerator(rng, ledger, self)
        self._proxies[label] = proxy
        return proxy  # type: ignore[return-value]

    def checkpoint(self) -> None:
        """Record a state-digest checkpoint on every live stream."""
        for label in sorted(self._proxies):
            proxy = self._proxies[label]
            self.ledgers[label].checkpoints.append(
                state_digest(proxy.bit_generator)
            )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Current per-stream account: draws, checkpoints, final state."""
        result: Dict[str, Dict[str, Any]] = {}
        for label in sorted(self.ledgers):
            ledger = self.ledgers[label]
            proxy = self._proxies.get(label)
            result[label] = {
                "draws": ledger.draws,
                "checkpoints": list(ledger.checkpoints),
                "state": state_digest(proxy.bit_generator)
                if proxy is not None
                else None,
            }
        return result


def assert_ledgers_match(
    reference: Dict[str, Dict[str, Any]],
    candidate: Dict[str, Dict[str, Any]],
    compare_draws: bool = False,
    context: str = "replay",
) -> None:
    """Raise :class:`DeterminismViolation` unless two snapshots agree.

    State digests and checkpoint sequences must always match; draw
    counts are compared only with ``compare_draws=True`` (the batch
    evaluator legitimately draws-and-rewinds, changing counts but not
    states).
    """
    problems: List[str] = []
    missing = sorted(set(reference) - set(candidate))
    extra = sorted(set(candidate) - set(reference))
    if missing:
        problems.append(f"streams missing from candidate: {', '.join(missing)}")
    if extra:
        problems.append(f"unexpected streams in candidate: {', '.join(extra)}")
    for label in sorted(set(reference) & set(candidate)):
        ref, cand = reference[label], candidate[label]
        if ref["state"] != cand["state"]:
            problems.append(
                f"{label}: final state {ref['state']} != {cand['state']}"
            )
        if ref["checkpoints"] != cand["checkpoints"]:
            problems.append(
                f"{label}: checkpoint sequence diverged "
                f"({len(ref['checkpoints'])} vs {len(cand['checkpoints'])} "
                "checkpoints)"
            )
        if compare_draws and ref["draws"] != cand["draws"]:
            problems.append(
                f"{label}: draw count {ref['draws']} != {cand['draws']}"
            )
    if problems:
        detail = "\n  ".join(problems)
        raise DeterminismViolation(
            f"RNG ledgers diverged across {context}:\n  {detail}"
        )


@contextmanager
def sanitized() -> Iterator[DeterminismSanitizer]:
    """Install a fresh sanitizer on the stream factories for one block.

    The previous observer (usually none) is restored on exit, so nested
    or sequential uses are independent.  Process-local: worker processes
    of a pool do not inherit the observer, which is why the sanitized
    CLI paths force serial execution.
    """
    sanitizer = DeterminismSanitizer()
    previous = rng_module._STREAM_OBSERVER
    rng_module.set_stream_observer(sanitizer.wrap)
    try:
        yield sanitizer
    finally:
        rng_module.set_stream_observer(previous)
