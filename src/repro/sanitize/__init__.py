"""Runtime determinism sanitizer: per-stream draw/state ledgers.

The static flow rules (R009-R012) prove stream discipline at the source
level; this package checks it at runtime.  It installs an observer on
the :mod:`repro.sim.rng` factories so every labelled Generator the
library creates is wrapped in a counting proxy, then asserts that the
resulting per-stream ledgers — draw counts and ``BitGenerator`` state
digests — agree across replays the reproduction contract requires to be
bitwise identical:

* scalar vs delta vs batch evaluation (``tsajs solve --sanitize``);
* repeated serial runs of one experiment (``tsajs run --sanitize``);
* a journal-resumed sweep vs a fresh one (exercised in the test suite).

Draw *counts* are compared only where the contract pins them (scalar vs
delta, replay vs replay): the batch evaluator deliberately draws
speculative uniforms and rewinds ``bit_generator.state``, so its counts
differ while its state checkpoints match — which is exactly what the
default state-digest comparison verifies.

Typical test usage::

    from repro.sanitize import sanitized, assert_ledgers_match

    with sanitized() as first:
        run_once()
    with sanitized() as second:
        run_once()
    assert_ledgers_match(
        first.snapshot(), second.snapshot(), compare_draws=True
    )
"""

from __future__ import annotations

from repro.sanitize.ledger import (
    DeterminismSanitizer,
    SanitizedGenerator,
    StreamLedger,
    assert_ledgers_match,
    sanitized,
    state_digest,
)

__all__ = [
    "DeterminismSanitizer",
    "SanitizedGenerator",
    "StreamLedger",
    "assert_ledgers_match",
    "sanitized",
    "state_digest",
]
