"""Unit conversions and physical constants used throughout the library.

All internal computation uses SI units:

* power      — watts (W)
* bandwidth  — hertz (Hz)
* data size  — bits
* CPU speed  — cycles per second (Hz)
* time       — seconds
* energy     — joules

The paper quotes most quantities in telecom-style units (dBm, dB, MHz, KB,
Megacycles).  The helpers here are the single place where those conversions
live, so the rest of the code never multiplies by a magic constant.
"""

from __future__ import annotations

import math

#: Number of bits in one kilobyte (the paper's "420 KB" task input follows
#: the conventional 1 KB = 1024 bytes = 8192 bits used by ref. [37]).
BITS_PER_KB = 8 * 1024

#: Number of bits in one megabyte.
BITS_PER_MB = 8 * 1024 * 1024

#: Cycles in one "Megacycle" as used for task workloads in the paper.
CYCLES_PER_MEGACYCLE = 1e6

#: Hertz in one gigahertz.
HZ_PER_GHZ = 1e9

#: Hertz in one megahertz.
HZ_PER_MHZ = 1e6

#: Microseconds in one second (flamegraph folded-stack counts are µs).
MICROSECONDS_PER_SECOND = 1e6


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts.

    >>> round(dbm_to_watts(10.0), 6)
    0.01
    >>> dbm_to_watts(-100.0)
    1e-13
    """
    return 10.0 ** (dbm / 10.0) / 1000.0


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm.

    Raises ``ValueError`` for non-positive powers, which have no dB
    representation.
    """
    if watts <= 0.0:
        raise ValueError(f"power must be positive to express in dBm, got {watts!r}")
    return 10.0 * math.log10(watts * 1000.0)


def db_to_linear(db: float) -> float:
    """Convert a dB ratio to a linear ratio.

    >>> db_to_linear(0.0)
    1.0
    >>> db_to_linear(30.0)
    1000.0...
    """
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear ratio to dB.  Requires a positive ratio."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be positive to express in dB, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def kb_to_bits(kilobytes: float) -> float:
    """Convert kilobytes to bits (1 KB = 1024 bytes)."""
    return kilobytes * BITS_PER_KB


def megacycles_to_cycles(megacycles: float) -> float:
    """Convert Megacycles (the paper's workload unit) to CPU cycles."""
    return megacycles * CYCLES_PER_MEGACYCLE


def ghz_to_hz(ghz: float) -> float:
    """Convert gigahertz to hertz."""
    return ghz * HZ_PER_GHZ


def mhz_to_hz(mhz: float) -> float:
    """Convert megahertz to hertz."""
    return mhz * HZ_PER_MHZ


def seconds_to_micros(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * MICROSECONDS_PER_SECOND
