"""Episodic (slot-based) simulation on top of the static scheduler.

The paper evaluates *static* offloading: one batch of requests, one
scheduling decision.  Real MEC deployments run that loop continuously —
"in scenarios involving static computation offloading, ... multiple users
concurrently transmit their requests to a MEC network" (Sec. II) — so this
module adds the natural operational wrapper a downstream user needs:

* a fixed **pool** of users with persistent positions and channel gains,
* per-slot **activity**: each pool user has a fresh task with some
  probability (others sit the slot out),
* per-slot **task draws** from configurable ranges,
* optional **mobility churn**: a user occasionally moves and gets a fresh
  channel-gain draw,
* optional **server outages**: failure injection that collapses a
  server's capacity for a slot, letting robustness of any scheduler be
  measured under infrastructure faults.

Every slot is solved independently by an arbitrary
:class:`~repro.core.scheduler.Scheduler` (the paper's static problem),
and per-slot metrics are aggregated across the episode.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.faults.inject import apply_faults
from repro.faults.models import OUTAGE_CAPACITY_HZ, FaultConfig, draw_faults
from repro.net.channel import ChannelModel
from repro.net.ofdma import OfdmaGrid
from repro.net.pathloss import LogNormalShadowing, UrbanMacroPathLoss
from repro.net.topology import Topology
from repro.units import kb_to_bits, megacycles_to_cycles
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SolutionMetrics, solution_metrics
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario
from repro.sim.stats import SummaryStats, summarize
from repro.tasks.device import UserDevice
from repro.tasks.server import MecServer
from repro.tasks.task import Task

# OUTAGE_CAPACITY_HZ now lives in repro.faults.models (re-exported here
# for backward compatibility).
__all__ = [
    "OUTAGE_CAPACITY_HZ",
    "EpisodeConfig",
    "EpisodeResult",
    "EpisodeRunner",
    "SlotRecord",
    "run_episode",
]


@dataclass(frozen=True)
class EpisodeConfig:
    """Configuration of one episodic simulation.

    Attributes
    ----------
    base:
        Network/radio/compute parameters (``n_users`` is ignored; the
        pool size below is used instead).
    pool_size:
        Number of persistent users in the coverage area.
    n_slots:
        Scheduling rounds to simulate.
    activity_probability:
        Chance a pool user has a task in a given slot.
    workload_range_megacycles / input_range_kb:
        Per-task uniform draw ranges.
    reposition_probability:
        Per-slot chance a user moves to a fresh uniform position (its
        path loss and shadowing are redrawn).
    server_outage_probability:
        Per-slot, per-server chance of a capacity-collapse fault (the
        legacy knob; kept for backward compatibility, drawn on the slot
        stream exactly as before).
    faults:
        Optional richer :class:`~repro.faults.models.FaultConfig` —
        capacity degradation, sub-band outages, and arrival churn on top
        of full server outages.  Drawn per slot from its own RNG stream
        (stream 4 of the episode seed), so enabling it never perturbs
        the legacy draws; ``None`` or an all-zero config leaves the
        episode bitwise identical to the fault-free run.
    """

    base: SimulationConfig = field(default_factory=SimulationConfig)
    pool_size: int = 30
    n_slots: int = 20
    activity_probability: float = 0.6
    workload_range_megacycles: Tuple[float, float] = (500.0, 3000.0)
    input_range_kb: Tuple[float, float] = (100.0, 800.0)
    reposition_probability: float = 0.05
    server_outage_probability: float = 0.0
    faults: Optional[FaultConfig] = None

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ConfigurationError(f"pool_size must be >= 1, got {self.pool_size}")
        if self.n_slots < 1:
            raise ConfigurationError(f"n_slots must be >= 1, got {self.n_slots}")
        for name in (
            "activity_probability",
            "reposition_probability",
            "server_outage_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
        for name in ("workload_range_megacycles", "input_range_kb"):
            low, high = getattr(self, name)
            if not 0.0 < low <= high:
                raise ConfigurationError(
                    f"{name} must satisfy 0 < low <= high, got ({low}, {high})"
                )


@dataclass(frozen=True)
class SlotRecord:
    """What happened in one scheduling slot."""

    slot: int
    active_users: List[int]
    failed_servers: List[int]
    metrics: SolutionMetrics
    #: Active users whose request was withdrawn by arrival churn
    #: (pool indices; only populated when ``config.faults`` draws churn).
    churned_users: List[int] = field(default_factory=list)


@dataclass
class EpisodeResult:
    """Per-slot records plus aggregate summaries."""

    config: EpisodeConfig
    scheduler_name: str
    slots: List[SlotRecord] = field(default_factory=list)

    def utilities(self) -> List[float]:
        return [record.metrics.system_utility for record in self.slots]

    def offload_ratios(self) -> List[float]:
        ratios: List[float] = []
        for record in self.slots:
            active = len(record.active_users)
            ratios.append(
                record.metrics.n_offloaded / active if active else 0.0
            )
        return ratios

    def utility_summary(self) -> SummaryStats:
        return summarize(self.utilities())

    def offload_ratio_summary(self) -> SummaryStats:
        return summarize(self.offload_ratios())

    def total_outage_slots(self) -> int:
        """Number of (slot, server) outage events observed."""
        return sum(len(record.failed_servers) for record in self.slots)


class EpisodeRunner:
    """Drives one scheduler through an episodic workload.

    RNG streams (all derived from the episode seed): 0 pool placement,
    1 pool channel draw, 2 per-slot activity/tasks/outages, 3 mobility
    redraws, 4 the :class:`~repro.faults.models.FaultConfig` draws,
    ``1000 + slot`` the scheduler's chain for each slot.
    """

    def __init__(self, config: EpisodeConfig, scheduler: Scheduler) -> None:
        self.config = config
        self.scheduler = scheduler

    def run(self, seed: int = 0) -> EpisodeResult:
        """Simulate the configured number of slots; return all records."""
        config = self.config
        base = config.base
        topology = Topology.hexagonal(
            base.n_servers, base.inter_site_distance_km
        )
        channel = ChannelModel(
            pathloss=UrbanMacroPathLoss(
                intercept_db=base.pathloss_intercept_db,
                slope_db=base.pathloss_slope_db,
            ),
            shadowing=LogNormalShadowing(sigma_db=base.shadowing_sigma_db),
        )
        placement_rng = child_rng(seed, 0)
        channel_rng = child_rng(seed, 1)
        slot_rng = child_rng(seed, 2)
        mobility_rng = child_rng(seed, 3)
        # Stream 4 is reserved for the rich fault model; an all-zero (or
        # absent) FaultConfig never draws from it, keeping the legacy
        # episode path bitwise unchanged.
        fault_config = config.faults
        fault_rng = (
            child_rng(seed, 4)
            if fault_config is not None and not fault_config.is_trivial
            else None
        )

        positions = topology.place_users(
            config.pool_size, placement_rng, base.min_bs_distance_km
        )
        link_gains = channel.link_gains(topology, positions, channel_rng)

        ofdma = OfdmaGrid(
            total_bandwidth_hz=base.bandwidth_hz, n_subbands=base.n_subbands
        )
        result = EpisodeResult(config=config, scheduler_name=self.scheduler.name)

        for slot in range(config.n_slots):
            # Mobility churn: repositioned users get fresh gains.
            for user in range(config.pool_size):
                if mobility_rng.random() < config.reposition_probability:
                    positions[user] = topology.place_users(
                        1, mobility_rng, base.min_bs_distance_km
                    )[0]
                    link_gains[user] = channel.link_gains(
                        topology, positions[user : user + 1], mobility_rng
                    )[0]

            active = [
                user
                for user in range(config.pool_size)
                if slot_rng.random() < config.activity_probability
            ]
            failed = [
                server
                for server in range(base.n_servers)
                if slot_rng.random() < config.server_outage_probability
            ]

            churned_pool_users: List[int] = []
            fault_set = None
            if fault_rng is not None and fault_config is not None:
                fault_set = draw_faults(
                    fault_config,
                    len(active),
                    base.n_servers,
                    base.n_subbands,
                    fault_rng,
                )
                # Churned requests are withdrawn before scheduling: the
                # affected users simply drop out of the slot's instance.
                if fault_set.churned_users:
                    churned_pool_users = [
                        active[index]
                        for index in sorted(fault_set.churned_users)
                    ]
                    active = [
                        user
                        for index, user in enumerate(active)
                        if index not in fault_set.churned_users
                    ]
                failed = sorted(set(failed) | fault_set.failed_servers)

            servers = [
                MecServer(
                    cpu_hz=OUTAGE_CAPACITY_HZ
                    if server in failed
                    else base.server_cpu_hz
                )
                for server in range(base.n_servers)
            ]
            users: List[UserDevice] = []
            for user in active:
                workload_mc = slot_rng.uniform(*config.workload_range_megacycles)
                input_kb = slot_rng.uniform(*config.input_range_kb)
                users.append(
                    UserDevice(
                        task=Task(
                            input_bits=kb_to_bits(input_kb),
                            cycles=megacycles_to_cycles(workload_mc),
                        ),
                        cpu_hz=base.user_cpu_hz,
                        tx_power_watts=base.tx_power_watts,
                        kappa=base.kappa,
                        beta_time=base.beta_time,
                        beta_energy=base.beta_energy,
                        operator_weight=base.operator_weight,
                    )
                )
            gains = np.repeat(
                link_gains[active][:, :, None], base.n_subbands, axis=2
            )
            scenario = Scenario(
                users=users,
                servers=servers,
                gains=gains,
                ofdma=ofdma,
                noise_watts=base.noise_watts,
                topology=topology,
                user_positions=positions[active].copy(),
            )
            if fault_set is not None and not fault_set.is_empty:
                scenario = apply_faults(scenario, fault_set)
            outcome = self.scheduler.schedule(scenario, child_rng(seed, 1000 + slot))
            metrics = solution_metrics(scenario, outcome)
            if churned_pool_users:
                metrics = dataclasses.replace(
                    metrics, n_churned=len(churned_pool_users)
                )
            result.slots.append(
                SlotRecord(
                    slot=slot,
                    active_users=active,
                    failed_servers=failed,
                    metrics=metrics,
                    churned_users=churned_pool_users,
                )
            )
        return result


def run_episode(
    config: EpisodeConfig,
    scheduler: Scheduler,
    seed: int = 0,
) -> EpisodeResult:
    """Convenience wrapper: ``EpisodeRunner(config, scheduler).run(seed)``."""
    return EpisodeRunner(config, scheduler).run(seed)
