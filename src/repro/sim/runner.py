"""Multi-seed experiment runner.

The paper's figures average each scheme's performance over many random
instances (user drops + shadowing) of the same configuration.  The runner
builds one :class:`Scenario` per seed, hands every scheme an *independent
but seed-derived* RNG (so stochastic schedulers are reproducible yet
decorrelated from the instance draw), and collects
:class:`~repro.sim.metrics.SolutionMetrics` per (scheme, seed).

Execution is delegated to a pluggable
:class:`~repro.sim.executors.base.SweepExecutor` backend — in-process
serial, process pool, or a file-based work queue drained by external
``tsajs worker`` processes.  Every backend computes the same fully
self-seeding work unit and the runner merges results in seed order, so
*which* backend ran a sweep never changes its bytes.

Three resilience layers harden long sweeps (see ``docs/robustness.md``):

* a :class:`RetryPolicy` adds per-seed timeouts, bounded retry with
  exponential backoff, graceful degradation to serial execution when a
  backend breaks, poison-cell quarantine after repeated worker-killing
  failures, and structured :class:`SeedFailure` records instead of a
  crash on the first bad seed;
* a **journal** (any object satisfying :class:`SeedJournal` — in
  practice :class:`repro.experiments.persistence.SweepJournal` or the
  content-addressed :class:`repro.experiments.cache.ResultCache`)
  checkpoints every completed seed to disk so an interrupted sweep
  resumes by re-running only the missing (scheme, seed) cells;
* the executors themselves detect torn or corrupt artifacts, quarantine
  them and recompute (queue backend), or report themselves broken so the
  runner can degrade.

With none of these supplied (and no module-level defaults installed) the
runner follows the exact legacy code path — bitwise-identical results
and fail-fast error propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Sequence

from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError, SolverError
from repro.obs.clock import sleep
from repro.obs.dist import propagated_context
from repro.obs.recorder import get_recorder
from repro.obs.trace import emit_worker_detached
from repro.sim.config import SimulationConfig
from repro.sim.executors.base import Cell, SweepExecutor
from repro.sim.executors.base import run_one_seed as _run_one_seed
from repro.sim.executors.base import run_one_seed_remote as _run_one_seed_remote
from repro.sim.executors.base import seed_work as _seed_work
from repro.sim.executors.pool import ProcessPoolSweepExecutor
from repro.sim.executors.serial import SerialExecutor
from repro.sim.metrics import SolutionMetrics
from repro.sim.stats import SummaryStats, summarize

__all__ = [
    "SeedFailure",
    "RetryPolicy",
    "SeedJournal",
    "ExperimentResult",
    "ExperimentRunner",
    "run_schemes",
    "set_default_n_workers",
    "set_default_retry",
    "set_default_journal",
    "get_default_journal",
    "set_default_executor",
    "get_default_executor",
]

#: Backwards-compatible alias (cells were a private tuple type here
#: before the executors package existed).
_Cell = Cell


@dataclass(frozen=True)
class SeedFailure:
    """A seed that could not be computed within the retry budget."""

    seed: int
    attempts: int
    error: str


@dataclass(frozen=True)
class RetryPolicy:
    """How :func:`run_schemes` survives crashed or hung seed workers.

    Attributes
    ----------
    max_attempts:
        Waves a failing seed is attempted before it is recorded as a
        :class:`SeedFailure` (>= 1).
    seed_timeout_s:
        Wall-clock budget for one seed's work unit on a preemptible
        backend (pool, queue); a seed exceeding it is treated as hung
        and retried in the next wave.  ``None`` disables the timeout.
        Serial execution cannot be timed out and ignores this knob.
    backoff_s / backoff_factor:
        Sleep between retry waves: ``backoff_s * backoff_factor**k``
        after wave ``k`` (exponential backoff; gives a transiently
        sick machine room to recover).
    serial_fallback:
        Once the backend broke (worker crash or hang), run later waves
        serially in-process instead of rebuilding it — slower but
        immune to executor-level failures.
    quarantine_after:
        A cell whose failures are *fatal* — they killed or lost the
        worker (dead process, tripped timeout, expired queue lease) —
        this many times is quarantined: recorded as a
        :class:`SeedFailure` immediately and never scheduled again, so
        one poison cell cannot keep taking workers down for the rest of
        the retry budget (>= 1).
    """

    max_attempts: int = 3
    seed_timeout_s: Optional[float] = None
    backoff_s: float = 0.5
    backoff_factor: float = 2.0
    serial_fallback: bool = True
    quarantine_after: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.seed_timeout_s is not None and self.seed_timeout_s <= 0:
            raise ConfigurationError(
                f"seed_timeout_s must be positive, got {self.seed_timeout_s}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )


class SeedJournal(Protocol):
    """Checkpoint store the runner consults before and after each seed.

    Implemented by :class:`repro.experiments.persistence.SweepJournal`
    and :class:`repro.experiments.cache.ResultCache`; kept as a protocol
    here so ``repro.sim`` never imports the experiments layer at runtime.
    """

    def lookup_seed(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        seed: int,
    ) -> Optional[List[SolutionMetrics]]:
        """Per-scheme metrics for a completed seed, or ``None``."""
        ...  # pragma: no cover - protocol definition

    def record_seed(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        seed: int,
        metrics: Sequence[SolutionMetrics],
    ) -> None:
        """Durably record one completed seed's per-scheme metrics."""
        ...  # pragma: no cover - protocol definition


@dataclass
class ExperimentResult:
    """Per-scheme metric samples for one experiment point.

    ``seeds`` lists the *requested* seeds; when a resilient run gives up
    on some of them, the per-scheme sample lists cover only the seeds
    that completed and ``failures`` records the rest.

    ``telemetry`` is the recorder's metrics snapshot (counters, gauges and
    histograms keyed ``name{label=value,...}``) taken when the run ends;
    ``None`` unless a recorder was enabled (``tsajs run --telemetry``).
    """

    config: SimulationConfig
    seeds: List[int]
    metrics: Dict[str, List[SolutionMetrics]] = field(default_factory=dict)
    failures: List[SeedFailure] = field(default_factory=list)
    telemetry: Optional[Dict[str, Any]] = None

    def _samples(self, scheme: str) -> List[SolutionMetrics]:
        try:
            return self.metrics[scheme]
        except KeyError:
            known = ", ".join(sorted(self.metrics)) or "none recorded"
            raise ConfigurationError(
                f"unknown scheme {scheme!r}; known schemes: {known}"
            ) from None

    def utilities(self, scheme: str) -> List[float]:
        return [m.system_utility for m in self._samples(scheme)]

    def wall_times(self, scheme: str) -> List[float]:
        return [m.wall_time_s for m in self._samples(scheme)]

    def mean_times(self, scheme: str) -> List[float]:
        return [m.mean_time_s for m in self._samples(scheme)]

    def mean_energies(self, scheme: str) -> List[float]:
        return [m.mean_energy_j for m in self._samples(scheme)]

    def utility_summary(self, scheme: str, confidence: float = 0.95) -> SummaryStats:
        return summarize(self.utilities(scheme), confidence)

    def wall_time_summary(self, scheme: str, confidence: float = 0.95) -> SummaryStats:
        return summarize(self.wall_times(scheme), confidence)

    @property
    def schemes(self) -> List[str]:
        return list(self.metrics.keys())

    @property
    def completed_seeds(self) -> List[int]:
        """Requested seeds minus the permanently-failed ones."""
        failed = {failure.seed for failure in self.failures}
        return [seed for seed in self.seeds if seed not in failed]


#: Fallback worker count used when neither ``run_schemes(n_jobs=...)`` nor
#: ``config.n_workers`` asks for parallelism (set by ``tsajs run --workers``).
_DEFAULT_N_JOBS = 1

#: Process-level defaults installed by the CLI (``tsajs run --retries /
#: --seed-timeout / --journal / --cache / --backend``); experiment
#: drivers build their own configs internally, so explicit arguments
#: cannot reach them.
_DEFAULT_RETRY: Optional[RetryPolicy] = None
_DEFAULT_JOURNAL: Optional[SeedJournal] = None
_DEFAULT_EXECUTOR: Optional[SweepExecutor] = None


def set_default_n_workers(n_workers: int) -> None:
    """Set the process-level default worker count for multi-seed runs.

    Experiment drivers build their own configs internally, so a CLI flag
    cannot reach them through ``config.n_workers``; this module-level
    default is the escape hatch.  Explicit ``n_jobs`` arguments and
    non-default ``config.n_workers`` values still take precedence.
    """
    global _DEFAULT_N_JOBS
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    _DEFAULT_N_JOBS = n_workers


def set_default_retry(retry: Optional[RetryPolicy]) -> None:
    """Install (or clear, with ``None``) the process-level retry policy."""
    global _DEFAULT_RETRY
    _DEFAULT_RETRY = retry


def set_default_journal(journal: Optional[SeedJournal]) -> None:
    """Install (or clear, with ``None``) the process-level seed journal."""
    global _DEFAULT_JOURNAL
    _DEFAULT_JOURNAL = journal


def get_default_journal() -> Optional[SeedJournal]:
    """The process-level seed journal, if one is installed."""
    return _DEFAULT_JOURNAL


def set_default_executor(executor: Optional[SweepExecutor]) -> None:
    """Install (or clear, with ``None``) the process-level sweep executor.

    Installed by ``tsajs run --backend``; like the other defaults it
    exists because experiment drivers cannot be reached by per-call
    arguments.  An explicit ``run_schemes(executor=...)`` still wins.
    """
    global _DEFAULT_EXECUTOR
    _DEFAULT_EXECUTOR = executor


def get_default_executor() -> Optional[SweepExecutor]:
    """The process-level sweep executor, if one is installed."""
    return _DEFAULT_EXECUTOR


def _run_resilient(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    cells: Sequence[Cell],
    n_jobs: int,
    policy: RetryPolicy,
    journal: Optional[SeedJournal],
    executor: Optional[SweepExecutor],
) -> "tuple[Dict[int, List[SolutionMetrics]], List[SeedFailure]]":
    """Retry loop driving waves of pending cells through an executor."""
    rec = get_recorder()
    results: Dict[int, List[SolutionMetrics]] = {}
    pending: List[Cell] = list(cells)
    last_error: Dict[int, str] = {}
    fatal_counts: Dict[int, int] = {}
    failures: List[SeedFailure] = []
    delay = policy.backoff_s

    created_here = executor is None
    if executor is None:
        if n_jobs > 1 and len(pending) > 1:
            executor = ProcessPoolSweepExecutor(n_jobs=n_jobs)
        else:
            executor = SerialExecutor()

    try:
        for attempt in range(1, policy.max_attempts + 1):
            if not pending:
                break
            if attempt > 1 and delay > 0:
                if rec.enabled:
                    rec.event(
                        "runner.backoff",
                        attempt=attempt,
                        delay_s=delay,
                        n_pending=len(pending),
                    )
                    rec.count("runner.retry_waves")
                sleep(delay)
                delay *= policy.backoff_factor
            outcome = executor.run_wave(
                config, schedulers, pending, policy.seed_timeout_s
            )
            if outcome.broken:
                if rec.enabled:
                    rec.event(
                        "runner.pool_broken",
                        attempt=attempt,
                        backend=executor.name,
                        n_failed=len(outcome.failed),
                        serial_fallback=policy.serial_fallback,
                    )
                    rec.count("runner.pool_breaks")
                if policy.serial_fallback and executor.name != "serial":
                    if rec.enabled:
                        rec.event(
                            "runner.serial_fallback",
                            attempt=attempt,
                            backend=executor.name,
                        )
                    executor.close()
                    executor = SerialExecutor()
                    created_here = True
            for done in outcome.done:
                results[done.position] = done.metrics
                if journal is not None:
                    journal.record_seed(
                        config, schedulers, done.seed, done.metrics
                    )
            next_pending: List[Cell] = []
            for failure in outcome.failed:
                last_error[failure.position] = failure.error
                if rec.enabled:
                    rec.event(
                        "runner.seed_error",
                        seed=failure.seed,
                        attempt=attempt,
                        error=failure.error,
                        fatal=failure.fatal,
                    )
                    rec.count("runner.seed_errors")
                if failure.fatal:
                    count = fatal_counts.get(failure.position, 0) + 1
                    fatal_counts[failure.position] = count
                    if count >= policy.quarantine_after:
                        failures.append(
                            SeedFailure(
                                seed=failure.seed,
                                attempts=attempt,
                                error=(
                                    f"quarantined after {count} fatal "
                                    f"failure(s): {failure.error}"
                                ),
                            )
                        )
                        if rec.enabled:
                            rec.event(
                                "runner.cell_quarantined",
                                seed=failure.seed,
                                attempt=attempt,
                                fatal_failures=count,
                                error=failure.error,
                            )
                            rec.count("runner.cells_quarantined")
                        continue
                next_pending.append((failure.position, failure.seed))
            pending = next_pending
    finally:
        if created_here:
            executor.close()

    failures.extend(
        SeedFailure(
            seed=seed,
            attempts=policy.max_attempts,
            error=last_error.get(position, "unknown error"),
        )
        for position, seed in pending
    )
    if rec.enabled:
        for failure in failures:
            rec.event(
                "runner.seed_failed",
                seed=failure.seed,
                attempts=failure.attempts,
                error=failure.error,
            )
            rec.count("runner.seeds_failed")
    return results, failures


def run_schemes(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    seeds: Sequence[int],
    n_jobs: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[SeedJournal] = None,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentResult:
    """Run every scheduler on every seed's scenario instance.

    Each scheduler gets RNG stream ``100 + its index`` of the seed, so
    adding or reordering schemes never perturbs the scenario draw
    (streams 0-1) and two stochastic schemes never share a chain.

    ``n_jobs`` defaults to ``config.n_workers`` (falling back to the
    process-level default set by :func:`set_default_n_workers`).  More
    than one job fans the seeds out over a process pool; results are
    bit-identical to the sequential run (each seed is an independent,
    fully-seeded work unit and the merge preserves seed order), so
    parallelism is purely a wall-clock optimisation.  Schedulers must be
    picklable in that case (all built-in ones are).

    ``retry``, ``journal`` and ``executor`` (defaulting to the
    process-level values installed by :func:`set_default_retry` /
    :func:`set_default_journal` / :func:`set_default_executor`) switch
    the runner to its resilient path: journal-cached seeds are not
    re-run, crashed or hung seeds are retried per the policy, poison
    cells that repeatedly kill workers are quarantined, and seeds that
    exhaust the budget land in ``result.failures`` instead of raising —
    unless *no* seed completed at all, which raises
    :class:`~repro.errors.SolverError`.  A completed seed's metrics are
    identical on the legacy and resilient paths and on every executor
    backend (same work unit, same seed-ordered merge), so retries,
    resumes and backend choice never change results.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if n_jobs is None:
        n_jobs = config.n_workers if config.n_workers != 1 else _DEFAULT_N_JOBS
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    names = [s.name for s in schedulers]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scheduler names: {names}")
    if retry is None:
        retry = _DEFAULT_RETRY
    if journal is None:
        journal = _DEFAULT_JOURNAL
    if executor is None:
        executor = _DEFAULT_EXECUTOR
    rec = get_recorder()

    result = ExperimentResult(config=config, seeds=seeds)
    for name in names:
        result.metrics[name] = []

    resilient = retry is not None or journal is not None or executor is not None
    with rec.span(
        "runner.run_schemes",
        n_seeds=len(seeds),
        n_jobs=n_jobs,
        schemes=names,
        resilient=resilient,
    ):
        if not resilient:
            # Legacy fail-fast path: bitwise-identical to the original
            # runner, exceptions propagate to the caller.
            if n_jobs == 1 or len(seeds) == 1:
                per_seed = [
                    _run_one_seed(config, schedulers, seed) for seed in seeds
                ]
            else:
                from concurrent.futures import ProcessPoolExecutor

                # Same trace propagation as the pool executor backend:
                # without a context, worker telemetry is lost to fork
                # safety, which schema v2 surfaces as worker_detached.
                ctx = propagated_context()
                if rec.enabled and ctx is None:
                    emit_worker_detached("pool", len(seeds))
                payload = ctx.to_payload() if ctx is not None else None
                with ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(seeds))
                ) as pool:
                    per_seed = list(
                        pool.map(
                            _run_one_seed_remote,
                            [payload] * len(seeds),
                            [config] * len(seeds),
                            [schedulers] * len(seeds),
                            seeds,
                        )
                    )
            for metrics in per_seed:
                for name, entry in zip(names, metrics):
                    result.metrics[name].append(entry)
            if rec.enabled:
                result.telemetry = rec.snapshot()
            return result

        by_position: Dict[int, List[SolutionMetrics]] = {}
        pending: List[Cell] = []
        for position, seed in enumerate(seeds):
            cached = (
                journal.lookup_seed(config, schedulers, seed) if journal else None
            )
            if cached is not None:
                by_position[position] = cached
                if rec.enabled:
                    rec.event("runner.journal_hit", seed=seed)
                    rec.count("runner.journal_hits")
            else:
                pending.append((position, seed))

        policy = retry if retry is not None else RetryPolicy()
        if pending:
            computed, failures = _run_resilient(
                config, schedulers, pending, n_jobs, policy, journal, executor
            )
            by_position.update(computed)
            result.failures = failures
            if not by_position:
                details = "; ".join(
                    f"seed {f.seed}: {f.error}" for f in failures[:5]
                )
                raise SolverError(
                    f"all {len(seeds)} seeds failed after "
                    f"{policy.max_attempts} attempt(s): {details}"
                )

        for position in sorted(by_position):
            for name, entry in zip(names, by_position[position]):
                result.metrics[name].append(entry)
        if rec.enabled:
            result.telemetry = rec.snapshot()
        return result


@dataclass(frozen=True)
class ExperimentRunner:
    """Reusable multi-seed runner bound to one config and scheme set.

    A thin object wrapper around :func:`run_schemes` for callers that run
    the same experiment point repeatedly (seed batches, notebooks, the
    determinism tests).  ``n_workers=None`` defers to ``config.n_workers``;
    any value keeps the deterministic seed-ordered merge, so
    ``ExperimentRunner(..., n_workers=4).run(seeds)`` returns exactly the
    same metrics as the serial run.  ``retry`` / ``journal`` /
    ``executor`` opt in to the resilient path exactly as in
    :func:`run_schemes`.
    """

    config: SimulationConfig
    schedulers: Sequence[Scheduler]
    n_workers: Optional[int] = None
    retry: Optional[RetryPolicy] = None
    journal: Optional[SeedJournal] = None
    executor: Optional[SweepExecutor] = None

    def run(self, seeds: Sequence[int]) -> ExperimentResult:
        """Run every scheduler on every seed (see :func:`run_schemes`)."""
        return run_schemes(
            self.config,
            self.schedulers,
            seeds,
            n_jobs=self.n_workers,
            retry=self.retry,
            journal=self.journal,
            executor=self.executor,
        )
