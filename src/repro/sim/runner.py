"""Multi-seed experiment runner.

The paper's figures average each scheme's performance over many random
instances (user drops + shadowing) of the same configuration.  The runner
builds one :class:`Scenario` per seed, hands every scheme an *independent
but seed-derived* RNG (so stochastic schedulers are reproducible yet
decorrelated from the instance draw), and collects
:class:`~repro.sim.metrics.SolutionMetrics` per (scheme, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SolutionMetrics, solution_metrics
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario
from repro.sim.stats import SummaryStats, summarize


@dataclass
class ExperimentResult:
    """Per-scheme metric samples for one experiment point."""

    config: SimulationConfig
    seeds: List[int]
    metrics: Dict[str, List[SolutionMetrics]] = field(default_factory=dict)

    def utilities(self, scheme: str) -> List[float]:
        return [m.system_utility for m in self.metrics[scheme]]

    def wall_times(self, scheme: str) -> List[float]:
        return [m.wall_time_s for m in self.metrics[scheme]]

    def mean_times(self, scheme: str) -> List[float]:
        return [m.mean_time_s for m in self.metrics[scheme]]

    def mean_energies(self, scheme: str) -> List[float]:
        return [m.mean_energy_j for m in self.metrics[scheme]]

    def utility_summary(self, scheme: str, confidence: float = 0.95) -> SummaryStats:
        return summarize(self.utilities(scheme), confidence)

    def wall_time_summary(self, scheme: str, confidence: float = 0.95) -> SummaryStats:
        return summarize(self.wall_times(scheme), confidence)

    @property
    def schemes(self) -> List[str]:
        return list(self.metrics.keys())


def _run_one_seed(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    seed: int,
) -> List[SolutionMetrics]:
    """All schedulers on one seed's instance (the parallel work unit)."""
    scenario = Scenario.build(config, seed=seed)
    metrics: List[SolutionMetrics] = []
    for index, scheduler in enumerate(schedulers):
        rng = child_rng(seed, 100 + index)
        outcome = scheduler.schedule(scenario, rng)
        metrics.append(solution_metrics(scenario, outcome))
    return metrics


#: Fallback worker count used when neither ``run_schemes(n_jobs=...)`` nor
#: ``config.n_workers`` asks for parallelism (set by ``tsajs run --workers``).
_DEFAULT_N_JOBS = 1


def set_default_n_workers(n_workers: int) -> None:
    """Set the process-level default worker count for multi-seed runs.

    Experiment drivers build their own configs internally, so a CLI flag
    cannot reach them through ``config.n_workers``; this module-level
    default is the escape hatch.  Explicit ``n_jobs`` arguments and
    non-default ``config.n_workers`` values still take precedence.
    """
    global _DEFAULT_N_JOBS
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    _DEFAULT_N_JOBS = n_workers


def run_schemes(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    seeds: Sequence[int],
    n_jobs: Optional[int] = None,
) -> ExperimentResult:
    """Run every scheduler on every seed's scenario instance.

    Each scheduler gets RNG stream ``100 + its index`` of the seed, so
    adding or reordering schemes never perturbs the scenario draw
    (streams 0-1) and two stochastic schemes never share a chain.

    ``n_jobs`` defaults to ``config.n_workers`` (falling back to the
    process-level default set by :func:`set_default_n_workers`).  More
    than one job fans the seeds out over a process pool; results are
    bit-identical to the sequential run (each seed is an independent,
    fully-seeded work unit and the merge preserves seed order), so
    parallelism is purely a wall-clock optimisation.  Schedulers must be
    picklable in that case (all built-in ones are).
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if n_jobs is None:
        n_jobs = config.n_workers if config.n_workers != 1 else _DEFAULT_N_JOBS
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    names = [s.name for s in schedulers]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scheduler names: {names}")

    result = ExperimentResult(config=config, seeds=seeds)
    for name in names:
        result.metrics[name] = []

    if n_jobs == 1 or len(seeds) == 1:
        per_seed = [_run_one_seed(config, schedulers, seed) for seed in seeds]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(n_jobs, len(seeds))) as pool:
            per_seed = list(
                pool.map(
                    _run_one_seed,
                    [config] * len(seeds),
                    [schedulers] * len(seeds),
                    seeds,
                )
            )

    for metrics in per_seed:
        for name, entry in zip(names, metrics):
            result.metrics[name].append(entry)
    return result


@dataclass(frozen=True)
class ExperimentRunner:
    """Reusable multi-seed runner bound to one config and scheme set.

    A thin object wrapper around :func:`run_schemes` for callers that run
    the same experiment point repeatedly (seed batches, notebooks, the
    determinism tests).  ``n_workers=None`` defers to ``config.n_workers``;
    any value keeps the deterministic seed-ordered merge, so
    ``ExperimentRunner(..., n_workers=4).run(seeds)`` returns exactly the
    same metrics as the serial run.
    """

    config: SimulationConfig
    schedulers: Sequence[Scheduler]
    n_workers: Optional[int] = None

    def run(self, seeds: Sequence[int]) -> ExperimentResult:
        """Run every scheduler on every seed (see :func:`run_schemes`)."""
        return run_schemes(
            self.config, self.schedulers, seeds, n_jobs=self.n_workers
        )
