"""Multi-seed experiment runner.

The paper's figures average each scheme's performance over many random
instances (user drops + shadowing) of the same configuration.  The runner
builds one :class:`Scenario` per seed, hands every scheme an *independent
but seed-derived* RNG (so stochastic schedulers are reproducible yet
decorrelated from the instance draw), and collects
:class:`~repro.sim.metrics.SolutionMetrics` per (scheme, seed).

Two resilience layers harden long sweeps (see ``docs/robustness.md``):

* a :class:`RetryPolicy` adds per-seed timeouts, bounded retry with
  exponential backoff, graceful degradation from the process pool to
  serial execution when the pool breaks, and structured
  :class:`SeedFailure` records instead of a crash on the first bad seed;
* a **journal** (any object satisfying :class:`SeedJournal`, in practice
  :class:`repro.experiments.persistence.SweepJournal`) checkpoints every
  completed seed to disk so an interrupted sweep resumes by re-running
  only the missing (scheme, seed) cells.

With neither supplied (and no module-level defaults installed) the
runner follows the exact legacy code path — bitwise-identical results
and fail-fast error propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError, SolverError
from repro.obs.clock import sleep
from repro.obs.profile import maybe_profile, profiling_enabled
from repro.obs.recorder import get_recorder
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SolutionMetrics, solution_metrics
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario
from repro.sim.stats import SummaryStats, summarize


@dataclass(frozen=True)
class SeedFailure:
    """A seed that could not be computed within the retry budget."""

    seed: int
    attempts: int
    error: str


@dataclass(frozen=True)
class RetryPolicy:
    """How :func:`run_schemes` survives crashed or hung seed workers.

    Attributes
    ----------
    max_attempts:
        Waves a failing seed is attempted before it is recorded as a
        :class:`SeedFailure` (>= 1).
    seed_timeout_s:
        Wall-clock budget for one seed's work unit in the process pool;
        a seed exceeding it is treated as hung, the pool is abandoned
        (its workers cannot be interrupted) and the seed retried in the
        next wave.  ``None`` disables the timeout.  Serial execution
        cannot be timed out and ignores this knob.
    backoff_s / backoff_factor:
        Sleep between retry waves: ``backoff_s * backoff_factor**k``
        after wave ``k`` (exponential backoff; gives a transiently
        sick machine room to recover).
    serial_fallback:
        Once the pool broke (worker crash or hang), run later waves
        serially in-process instead of spawning a fresh pool — slower
        but immune to pool-level failures.
    """

    max_attempts: int = 3
    seed_timeout_s: Optional[float] = None
    backoff_s: float = 0.5
    backoff_factor: float = 2.0
    serial_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.seed_timeout_s is not None and self.seed_timeout_s <= 0:
            raise ConfigurationError(
                f"seed_timeout_s must be positive, got {self.seed_timeout_s}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )


class SeedJournal(Protocol):
    """Checkpoint store the runner consults before and after each seed.

    Implemented by :class:`repro.experiments.persistence.SweepJournal`;
    kept as a protocol here so ``repro.sim`` never imports the
    experiments layer at runtime.
    """

    def lookup_seed(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        seed: int,
    ) -> Optional[List[SolutionMetrics]]:
        """Per-scheme metrics for a completed seed, or ``None``."""
        ...  # pragma: no cover - protocol definition

    def record_seed(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        seed: int,
        metrics: Sequence[SolutionMetrics],
    ) -> None:
        """Durably record one completed seed's per-scheme metrics."""
        ...  # pragma: no cover - protocol definition


@dataclass
class ExperimentResult:
    """Per-scheme metric samples for one experiment point.

    ``seeds`` lists the *requested* seeds; when a resilient run gives up
    on some of them, the per-scheme sample lists cover only the seeds
    that completed and ``failures`` records the rest.

    ``telemetry`` is the recorder's metrics snapshot (counters, gauges and
    histograms keyed ``name{label=value,...}``) taken when the run ends;
    ``None`` unless a recorder was enabled (``tsajs run --telemetry``).
    """

    config: SimulationConfig
    seeds: List[int]
    metrics: Dict[str, List[SolutionMetrics]] = field(default_factory=dict)
    failures: List[SeedFailure] = field(default_factory=list)
    telemetry: Optional[Dict[str, Any]] = None

    def _samples(self, scheme: str) -> List[SolutionMetrics]:
        try:
            return self.metrics[scheme]
        except KeyError:
            known = ", ".join(sorted(self.metrics)) or "none recorded"
            raise ConfigurationError(
                f"unknown scheme {scheme!r}; known schemes: {known}"
            ) from None

    def utilities(self, scheme: str) -> List[float]:
        return [m.system_utility for m in self._samples(scheme)]

    def wall_times(self, scheme: str) -> List[float]:
        return [m.wall_time_s for m in self._samples(scheme)]

    def mean_times(self, scheme: str) -> List[float]:
        return [m.mean_time_s for m in self._samples(scheme)]

    def mean_energies(self, scheme: str) -> List[float]:
        return [m.mean_energy_j for m in self._samples(scheme)]

    def utility_summary(self, scheme: str, confidence: float = 0.95) -> SummaryStats:
        return summarize(self.utilities(scheme), confidence)

    def wall_time_summary(self, scheme: str, confidence: float = 0.95) -> SummaryStats:
        return summarize(self.wall_times(scheme), confidence)

    @property
    def schemes(self) -> List[str]:
        return list(self.metrics.keys())

    @property
    def completed_seeds(self) -> List[int]:
        """Requested seeds minus the permanently-failed ones."""
        failed = {failure.seed for failure in self.failures}
        return [seed for seed in self.seeds if seed not in failed]


def _seed_work(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    seed: int,
) -> List[SolutionMetrics]:
    """All schedulers on one seed's instance (the parallel work unit)."""
    scenario = Scenario.build(config, seed=seed)
    metrics: List[SolutionMetrics] = []
    for index, scheduler in enumerate(schedulers):
        rng = child_rng(seed, 100 + index)
        outcome = scheduler.schedule(scenario, rng)
        metrics.append(solution_metrics(scenario, outcome))
    return metrics


def _run_one_seed(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    seed: int,
) -> List[SolutionMetrics]:
    """Dispatch one seed's work, instrumented when a recorder is enabled.

    With the default :class:`~repro.obs.recorder.NullRecorder` and
    profiling off, this is exactly :func:`_seed_work` — no spans, no
    metric touches, no profiler, so untraced runs stay on the legacy hot
    path.  A forked pool worker inherits the null recorder (recorders
    are process-level state, never pickled with schedulers), so pool
    runs record seed telemetry only in the parent-side merge.
    """
    rec = get_recorder()
    if not rec.enabled and not profiling_enabled():
        return _seed_work(config, schedulers, seed)
    with maybe_profile(f"seed_{seed}"):
        with rec.span("runner.seed", seed=seed, n_schemes=len(schedulers)):
            metrics = _seed_work(config, schedulers, seed)
    for scheduler, entry in zip(schedulers, metrics):
        rec.count("runner.seeds_completed", scheme=scheduler.name)
        rec.count(
            "scheduler.evaluations", entry.evaluations, scheme=scheduler.name
        )
        rec.observe(
            "scheduler.wall_time_s", entry.wall_time_s, scheme=scheduler.name
        )
        rec.gauge_set(
            "scheduler.utility",
            entry.system_utility,
            scheme=scheduler.name,
            seed=seed,
        )
    return metrics


#: Fallback worker count used when neither ``run_schemes(n_jobs=...)`` nor
#: ``config.n_workers`` asks for parallelism (set by ``tsajs run --workers``).
_DEFAULT_N_JOBS = 1

#: Process-level defaults installed by the CLI (``tsajs run --retries /
#: --seed-timeout / --journal``); experiment drivers build their own
#: configs internally, so explicit arguments cannot reach them.
_DEFAULT_RETRY: Optional[RetryPolicy] = None
_DEFAULT_JOURNAL: Optional[SeedJournal] = None


def set_default_n_workers(n_workers: int) -> None:
    """Set the process-level default worker count for multi-seed runs.

    Experiment drivers build their own configs internally, so a CLI flag
    cannot reach them through ``config.n_workers``; this module-level
    default is the escape hatch.  Explicit ``n_jobs`` arguments and
    non-default ``config.n_workers`` values still take precedence.
    """
    global _DEFAULT_N_JOBS
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    _DEFAULT_N_JOBS = n_workers


def set_default_retry(retry: Optional[RetryPolicy]) -> None:
    """Install (or clear, with ``None``) the process-level retry policy."""
    global _DEFAULT_RETRY
    _DEFAULT_RETRY = retry


def set_default_journal(journal: Optional[SeedJournal]) -> None:
    """Install (or clear, with ``None``) the process-level seed journal."""
    global _DEFAULT_JOURNAL
    _DEFAULT_JOURNAL = journal


def get_default_journal() -> Optional[SeedJournal]:
    """The process-level seed journal, if one is installed."""
    return _DEFAULT_JOURNAL


#: One unit of pending work: ``(position in the seed list, seed)``.
_Cell = Tuple[int, int]


def _run_wave_serial(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    cells: Sequence[_Cell],
) -> Tuple[List[Tuple[int, int, List[SolutionMetrics]]], List[Tuple[int, int, str]]]:
    """One serial attempt over ``cells``; never raises on a bad seed."""
    done: List[Tuple[int, int, List[SolutionMetrics]]] = []
    failed: List[Tuple[int, int, str]] = []
    for position, seed in cells:
        try:
            metrics = _run_one_seed(config, schedulers, seed)
        except Exception as exc:
            failed.append((position, seed, f"{type(exc).__name__}: {exc}"))
        else:
            done.append((position, seed, metrics))
    return done, failed


def _run_wave_pool(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    cells: Sequence[_Cell],
    n_jobs: int,
    timeout_s: Optional[float],
) -> Tuple[
    List[Tuple[int, int, List[SolutionMetrics]]],
    List[Tuple[int, int, str]],
    bool,
]:
    """One process-pool attempt over ``cells``.

    Returns ``(done, failed, pool_broken)``.  A worker crash surfaces as
    ``BrokenProcessPool`` on its future (and on every sibling still
    pending); a hung worker trips ``timeout_s``.  Either way the pool is
    reported broken: its workers cannot be recovered, so the caller must
    abandon it (``shutdown(wait=False)``) and retry the failed cells in
    a fresh pool or serially.
    """
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures import TimeoutError as FuturesTimeoutError
    from concurrent.futures.process import BrokenProcessPool

    done: List[Tuple[int, int, List[SolutionMetrics]]] = []
    failed: List[Tuple[int, int, str]] = []
    broken = False
    pool = ProcessPoolExecutor(max_workers=min(n_jobs, len(cells)))
    try:
        futures = [
            (position, seed, pool.submit(_run_one_seed, config, schedulers, seed))
            for position, seed in cells
        ]
        for position, seed, future in futures:
            try:
                metrics = future.result(timeout=timeout_s)
            except FuturesTimeoutError:
                broken = True
                failed.append(
                    (position, seed, f"seed {seed} exceeded the {timeout_s}s budget")
                )
            except BrokenProcessPool:
                broken = True
                failed.append(
                    (position, seed, f"worker process died while running seed {seed}")
                )
            except Exception as exc:
                failed.append((position, seed, f"{type(exc).__name__}: {exc}"))
            else:
                done.append((position, seed, metrics))
    finally:
        # A broken pool (dead or hung worker) cannot be drained; waiting
        # on shutdown would block forever on the hung worker.
        pool.shutdown(wait=not broken, cancel_futures=True)
    return done, failed, broken


def _run_resilient(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    cells: Sequence[_Cell],
    n_jobs: int,
    policy: RetryPolicy,
    journal: Optional[SeedJournal],
) -> Tuple[Dict[int, List[SolutionMetrics]], List[SeedFailure]]:
    """Retry loop over pending cells; returns per-position results."""
    rec = get_recorder()
    results: Dict[int, List[SolutionMetrics]] = {}
    pending: List[_Cell] = list(cells)
    last_error: Dict[int, str] = {}
    use_pool = n_jobs > 1 and len(pending) > 1
    delay = policy.backoff_s

    for attempt in range(1, policy.max_attempts + 1):
        if not pending:
            break
        if attempt > 1 and delay > 0:
            if rec.enabled:
                rec.event(
                    "runner.backoff",
                    attempt=attempt,
                    delay_s=delay,
                    n_pending=len(pending),
                )
                rec.count("runner.retry_waves")
            sleep(delay)
            delay *= policy.backoff_factor
        if use_pool:
            done, failed, broken = _run_wave_pool(
                config, schedulers, pending, n_jobs, policy.seed_timeout_s
            )
            if broken:
                if rec.enabled:
                    rec.event(
                        "runner.pool_broken",
                        attempt=attempt,
                        n_failed=len(failed),
                        serial_fallback=policy.serial_fallback,
                    )
                    rec.count("runner.pool_breaks")
                if policy.serial_fallback:
                    if rec.enabled:
                        rec.event("runner.serial_fallback", attempt=attempt)
                    use_pool = False
        else:
            done, failed = _run_wave_serial(config, schedulers, pending)
        for position, seed, metrics in done:
            results[position] = metrics
            if journal is not None:
                journal.record_seed(config, schedulers, seed, metrics)
        pending = [(position, seed) for position, seed, _ in failed]
        for position, seed, error in failed:
            last_error[position] = error
            if rec.enabled:
                rec.event(
                    "runner.seed_error",
                    seed=seed,
                    attempt=attempt,
                    error=error,
                )
                rec.count("runner.seed_errors")

    failures = [
        SeedFailure(
            seed=seed,
            attempts=policy.max_attempts,
            error=last_error.get(position, "unknown error"),
        )
        for position, seed in pending
    ]
    if rec.enabled:
        for failure in failures:
            rec.event(
                "runner.seed_failed",
                seed=failure.seed,
                attempts=failure.attempts,
                error=failure.error,
            )
            rec.count("runner.seeds_failed")
    return results, failures


def run_schemes(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    seeds: Sequence[int],
    n_jobs: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    journal: Optional[SeedJournal] = None,
) -> ExperimentResult:
    """Run every scheduler on every seed's scenario instance.

    Each scheduler gets RNG stream ``100 + its index`` of the seed, so
    adding or reordering schemes never perturbs the scenario draw
    (streams 0-1) and two stochastic schemes never share a chain.

    ``n_jobs`` defaults to ``config.n_workers`` (falling back to the
    process-level default set by :func:`set_default_n_workers`).  More
    than one job fans the seeds out over a process pool; results are
    bit-identical to the sequential run (each seed is an independent,
    fully-seeded work unit and the merge preserves seed order), so
    parallelism is purely a wall-clock optimisation.  Schedulers must be
    picklable in that case (all built-in ones are).

    ``retry`` and ``journal`` (defaulting to the process-level values
    installed by :func:`set_default_retry` / :func:`set_default_journal`)
    switch the runner to its resilient path: journal-cached seeds are
    not re-run, crashed or hung seeds are retried per the policy, and
    seeds that exhaust the budget land in ``result.failures`` instead of
    raising — unless *no* seed completed at all, which raises
    :class:`~repro.errors.SolverError`.  A completed seed's metrics are
    identical on the legacy and resilient paths (same work unit, same
    seed-ordered merge), so retries and resumes never change results.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if n_jobs is None:
        n_jobs = config.n_workers if config.n_workers != 1 else _DEFAULT_N_JOBS
    if n_jobs < 1:
        raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
    names = [s.name for s in schedulers]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scheduler names: {names}")
    if retry is None:
        retry = _DEFAULT_RETRY
    if journal is None:
        journal = _DEFAULT_JOURNAL
    rec = get_recorder()

    result = ExperimentResult(config=config, seeds=seeds)
    for name in names:
        result.metrics[name] = []

    with rec.span(
        "runner.run_schemes",
        n_seeds=len(seeds),
        n_jobs=n_jobs,
        schemes=names,
        resilient=retry is not None or journal is not None,
    ):
        if retry is None and journal is None:
            # Legacy fail-fast path: bitwise-identical to the original
            # runner, exceptions propagate to the caller.
            if n_jobs == 1 or len(seeds) == 1:
                per_seed = [
                    _run_one_seed(config, schedulers, seed) for seed in seeds
                ]
            else:
                from concurrent.futures import ProcessPoolExecutor

                with ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(seeds))
                ) as pool:
                    per_seed = list(
                        pool.map(
                            _run_one_seed,
                            [config] * len(seeds),
                            [schedulers] * len(seeds),
                            seeds,
                        )
                    )
            for metrics in per_seed:
                for name, entry in zip(names, metrics):
                    result.metrics[name].append(entry)
            if rec.enabled:
                result.telemetry = rec.snapshot()
            return result

        by_position: Dict[int, List[SolutionMetrics]] = {}
        pending: List[_Cell] = []
        for position, seed in enumerate(seeds):
            cached = (
                journal.lookup_seed(config, schedulers, seed) if journal else None
            )
            if cached is not None:
                by_position[position] = cached
                if rec.enabled:
                    rec.event("runner.journal_hit", seed=seed)
                    rec.count("runner.journal_hits")
            else:
                pending.append((position, seed))

        policy = retry if retry is not None else RetryPolicy()
        if pending:
            computed, failures = _run_resilient(
                config, schedulers, pending, n_jobs, policy, journal
            )
            by_position.update(computed)
            result.failures = failures
            if not by_position:
                details = "; ".join(
                    f"seed {f.seed}: {f.error}" for f in failures[:5]
                )
                raise SolverError(
                    f"all {len(seeds)} seeds failed after "
                    f"{policy.max_attempts} attempt(s): {details}"
                )

        for position in sorted(by_position):
            for name, entry in zip(names, by_position[position]):
                result.metrics[name].append(entry)
        if rec.enabled:
            result.telemetry = rec.snapshot()
        return result


@dataclass(frozen=True)
class ExperimentRunner:
    """Reusable multi-seed runner bound to one config and scheme set.

    A thin object wrapper around :func:`run_schemes` for callers that run
    the same experiment point repeatedly (seed batches, notebooks, the
    determinism tests).  ``n_workers=None`` defers to ``config.n_workers``;
    any value keeps the deterministic seed-ordered merge, so
    ``ExperimentRunner(..., n_workers=4).run(seeds)`` returns exactly the
    same metrics as the serial run.  ``retry`` / ``journal`` opt in to
    the resilient path exactly as in :func:`run_schemes`.
    """

    config: SimulationConfig
    schedulers: Sequence[Scheduler]
    n_workers: Optional[int] = None
    retry: Optional[RetryPolicy] = None
    journal: Optional[SeedJournal] = None

    def run(self, seeds: Sequence[int]) -> ExperimentResult:
        """Run every scheduler on every seed (see :func:`run_schemes`)."""
        return run_schemes(
            self.config,
            self.schedulers,
            seeds,
            n_jobs=self.n_workers,
            retry=self.retry,
            journal=self.journal,
        )
