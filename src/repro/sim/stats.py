"""Statistics helpers: means and 95 % confidence intervals.

The paper reports "the corresponding average system utility for each
scheme and ... the 95% confidence interval (CI)" (Sec. V-A).  These
helpers compute Student-t confidence intervals over per-seed samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SummaryStats:
    """Mean, standard deviation and a symmetric confidence half-width."""

    mean: float
    std: float
    ci_halfwidth: float
    n: int
    confidence: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_halfwidth

    def interval(self) -> Tuple[float, float]:
        return (self.ci_low, self.ci_high)


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """``(mean, low, high)`` of a Student-t confidence interval.

    With a single sample the interval degenerates to the point itself.
    """
    summary = summarize(samples, confidence)
    return (summary.mean, summary.ci_low, summary.ci_high)


def summarize(samples: Sequence[float], confidence: float = 0.95) -> SummaryStats:
    """Full summary statistics of a sample vector."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    if not bool(np.all(np.isfinite(data))):
        bad = int(np.count_nonzero(~np.isfinite(data)))
        raise ConfigurationError(
            f"cannot summarize non-finite samples: {bad} of {data.size} "
            "values are NaN or infinite (filter them out explicitly first)"
        )
    mean = float(data.mean())
    if data.size == 1:
        return SummaryStats(mean=mean, std=0.0, ci_halfwidth=0.0, n=1, confidence=confidence)
    std = float(data.std(ddof=1))
    sem = std / np.sqrt(data.size)
    t_crit = float(scipy_stats.t.ppf((1.0 + confidence) / 2.0, df=data.size - 1))
    return SummaryStats(
        mean=mean,
        std=std,
        ci_halfwidth=float(t_crit * sem),
        n=int(data.size),
        confidence=confidence,
    )
