"""End-to-end feasibility validation of a scheduling outcome.

Checks every constraint of problem (12) against a concrete
``(scenario, decision, allocation)`` triple.  Schedulers maintain these
invariants by construction; this module re-derives them from scratch so
tests (and paranoid callers) can verify any result independently.
"""

from __future__ import annotations

import warnings
from typing import List, Optional

import numpy as np

from repro.core.decision import OffloadingDecision
from repro.core.scheduler import ScheduleResult
from repro.errors import ConfigurationError, InfeasibleAllocationError, InfeasibleDecisionError
from repro.net.pathloss import UrbanMacroPathLoss
from repro.net.topology import Topology
from repro.sim.config import SimulationConfig
from repro.sim.scenario import Scenario

#: Relative tolerance for the capacity constraint (12f).
_CAPACITY_RTOL = 1e-9

#: Margin (linear power ratio) by which the mean received power at the
#: far-field cutoff radius must sit *below* the noise floor for the
#: cutoff assumption to hold — 10 dB, i.e. neglected interferers each
#: contribute at most a tenth of the thermal noise.
_FARFIELD_MARGIN = 0.1


def validate_decision(scenario: Scenario, decision: OffloadingDecision) -> None:
    """Raise unless ``decision`` satisfies constraints (12b)-(12d)."""
    if (
        decision.n_users != scenario.n_users
        or decision.n_servers != scenario.n_servers
        or decision.n_channels != scenario.n_subbands
    ):
        raise InfeasibleDecisionError(
            "decision dimensions do not match the scenario: "
            f"({decision.n_users}, {decision.n_servers}, {decision.n_channels}) vs "
            f"({scenario.n_users}, {scenario.n_servers}, {scenario.n_subbands})"
        )
    dense = decision.to_dense()
    # (12b) binary is structural in to_dense; (12c) one slot per user:
    if np.any(dense.reshape(scenario.n_users, -1).sum(axis=1) > 1):
        raise InfeasibleDecisionError("a user holds multiple slots (12c)")
    # (12d) one user per slot:
    if np.any(dense.sum(axis=0) > 1):
        raise InfeasibleDecisionError("a slot holds multiple users (12d)")


def validate_allocation(
    scenario: Scenario, decision: OffloadingDecision, allocation: np.ndarray
) -> None:
    """Raise unless ``allocation`` satisfies constraints (12e)-(12f)."""
    allocation = np.asarray(allocation, dtype=float)
    if allocation.shape != (scenario.n_users, scenario.n_servers):
        raise InfeasibleAllocationError(
            "allocation must have shape "
            f"({scenario.n_users}, {scenario.n_servers}), got {allocation.shape}"
        )
    if np.any(allocation < 0.0):
        raise InfeasibleAllocationError("negative CPU share")
    for s in range(scenario.n_servers):
        capacity = scenario.server_cpu_hz[s]
        used = float(allocation[:, s].sum())
        if used > capacity * (1.0 + _CAPACITY_RTOL):
            raise InfeasibleAllocationError(
                f"server {s} over-allocated: {used} > {capacity} (12f)"
            )
        for u in range(scenario.n_users):
            attached = decision.server[u] == s
            share = allocation[u, s]
            if attached and share <= 0.0:
                raise InfeasibleAllocationError(
                    f"user {u} attached to server {s} has no CPU share (12e)"
                )
            if not attached and share != 0.0:
                raise InfeasibleAllocationError(
                    f"user {u} not attached to server {s} but has share {share}"
                )


def validate_result(scenario: Scenario, result: ScheduleResult) -> None:
    """Validate a full scheduler outcome (decision + allocation)."""
    validate_decision(scenario, result.decision)
    validate_allocation(scenario, result.decision, result.allocation)


def is_feasible_result(scenario: Scenario, result: ScheduleResult) -> bool:
    """Boolean convenience wrapper around :func:`validate_result`."""
    try:
        validate_result(scenario, result)
    except (InfeasibleDecisionError, InfeasibleAllocationError):
        return False
    return True


def validate_sharding_geometry(
    cluster_radius_km: float,
    interference_radius_km: float,
    *,
    tx_power_watts: float,
    noise_watts: float,
    pathloss: UrbanMacroPathLoss,
    topology: Optional[Topology] = None,
) -> List[str]:
    """Check the sharding radii against the path-loss model's validity.

    Raises :class:`ConfigurationError` for non-positive radii.  Two
    soft hazards are *warned* about (via :mod:`warnings`) and returned
    as messages so callers and tests can inspect them:

    * **far-field cutoff invalid** — the mean received power at the
      interference radius is within 10 dB of the noise floor, so
      interferers the partition neglects are not actually negligible
      (log-normal shadowing widens the tail further);
    * **cluster diameter below the cutoff** — with
      ``interference_radius_km > cluster_radius_km`` a boundary halo
      spans whole neighbouring tiles, i.e. the clusters are too small
      for the locality assumption and the decomposition degenerates to
      "everything is boundary".

    ``topology`` additionally enables a sanity note when the whole
    deployment fits inside one interference radius (sharding then buys
    nothing: every pair of cells couples).
    """
    if cluster_radius_km <= 0:
        raise ConfigurationError(
            f"cluster_radius_km must be positive, got {cluster_radius_km}"
        )
    if interference_radius_km <= 0:
        raise ConfigurationError(
            "interference_radius_km must be positive, got "
            f"{interference_radius_km}"
        )
    messages: List[str] = []
    cutoff_rx = tx_power_watts * pathloss.gain_linear(interference_radius_km)
    if cutoff_rx > noise_watts * _FARFIELD_MARGIN:
        messages.append(
            "far-field cutoff assumption invalid: mean received power at "
            f"{interference_radius_km} km is {cutoff_rx:.3e} W, above "
            f"{_FARFIELD_MARGIN:g}x the noise floor ({noise_watts:.3e} W); "
            "increase interference_radius_km so neglected interferers are "
            "actually negligible"
        )
    if interference_radius_km > cluster_radius_km:
        messages.append(
            "cluster diameter below the far-field cutoff: "
            f"interference_radius_km={interference_radius_km} exceeds "
            f"cluster_radius_km={cluster_radius_km}, so boundary halos span "
            "whole neighbouring clusters; enlarge cluster_radius_km for an "
            "effective decomposition"
        )
    if topology is not None and topology.extent_km() <= interference_radius_km:
        messages.append(
            "deployment extent "
            f"({topology.extent_km():.3g} km) does not exceed the "
            f"interference radius ({interference_radius_km} km): every cell "
            "pair couples, so sharding degenerates to a single cluster's "
            "cost with extra bookkeeping"
        )
    for message in messages:
        warnings.warn(message, stacklevel=2)
    return messages


def validate_sharding_config(
    config: SimulationConfig, topology: Optional[Topology] = None
) -> List[str]:
    """:func:`validate_sharding_geometry` driven by a config's fields.

    Resolves ``interference_radius_km=None`` to the inter-site distance,
    matching :class:`~repro.core.sharding.ShardedScheduler`.
    """
    interference_radius = (
        config.interference_radius_km
        if config.interference_radius_km is not None
        else config.inter_site_distance_km
    )
    return validate_sharding_geometry(
        config.cluster_radius_km,
        interference_radius,
        tx_power_watts=config.tx_power_watts,
        noise_watts=config.noise_watts,
        pathloss=UrbanMacroPathLoss(
            intercept_db=config.pathloss_intercept_db,
            slope_db=config.pathloss_slope_db,
        ),
        topology=topology,
    )
