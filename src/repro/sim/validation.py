"""End-to-end feasibility validation of a scheduling outcome.

Checks every constraint of problem (12) against a concrete
``(scenario, decision, allocation)`` triple.  Schedulers maintain these
invariants by construction; this module re-derives them from scratch so
tests (and paranoid callers) can verify any result independently.
"""

from __future__ import annotations

import numpy as np

from repro.core.decision import OffloadingDecision
from repro.core.scheduler import ScheduleResult
from repro.errors import InfeasibleAllocationError, InfeasibleDecisionError
from repro.sim.scenario import Scenario

#: Relative tolerance for the capacity constraint (12f).
_CAPACITY_RTOL = 1e-9


def validate_decision(scenario: Scenario, decision: OffloadingDecision) -> None:
    """Raise unless ``decision`` satisfies constraints (12b)-(12d)."""
    if (
        decision.n_users != scenario.n_users
        or decision.n_servers != scenario.n_servers
        or decision.n_channels != scenario.n_subbands
    ):
        raise InfeasibleDecisionError(
            "decision dimensions do not match the scenario: "
            f"({decision.n_users}, {decision.n_servers}, {decision.n_channels}) vs "
            f"({scenario.n_users}, {scenario.n_servers}, {scenario.n_subbands})"
        )
    dense = decision.to_dense()
    # (12b) binary is structural in to_dense; (12c) one slot per user:
    if np.any(dense.reshape(scenario.n_users, -1).sum(axis=1) > 1):
        raise InfeasibleDecisionError("a user holds multiple slots (12c)")
    # (12d) one user per slot:
    if np.any(dense.sum(axis=0) > 1):
        raise InfeasibleDecisionError("a slot holds multiple users (12d)")


def validate_allocation(
    scenario: Scenario, decision: OffloadingDecision, allocation: np.ndarray
) -> None:
    """Raise unless ``allocation`` satisfies constraints (12e)-(12f)."""
    allocation = np.asarray(allocation, dtype=float)
    if allocation.shape != (scenario.n_users, scenario.n_servers):
        raise InfeasibleAllocationError(
            "allocation must have shape "
            f"({scenario.n_users}, {scenario.n_servers}), got {allocation.shape}"
        )
    if np.any(allocation < 0.0):
        raise InfeasibleAllocationError("negative CPU share")
    for s in range(scenario.n_servers):
        capacity = scenario.server_cpu_hz[s]
        used = float(allocation[:, s].sum())
        if used > capacity * (1.0 + _CAPACITY_RTOL):
            raise InfeasibleAllocationError(
                f"server {s} over-allocated: {used} > {capacity} (12f)"
            )
        for u in range(scenario.n_users):
            attached = decision.server[u] == s
            share = allocation[u, s]
            if attached and share <= 0.0:
                raise InfeasibleAllocationError(
                    f"user {u} attached to server {s} has no CPU share (12e)"
                )
            if not attached and share != 0.0:
                raise InfeasibleAllocationError(
                    f"user {u} not attached to server {s} but has share {share}"
                )


def validate_result(scenario: Scenario, result: ScheduleResult) -> None:
    """Validate a full scheduler outcome (decision + allocation)."""
    validate_decision(scenario, result.decision)
    validate_allocation(scenario, result.decision, result.allocation)


def is_feasible_result(scenario: Scenario, result: ScheduleResult) -> bool:
    """Boolean convenience wrapper around :func:`validate_result`."""
    try:
        validate_result(scenario, result)
    except (InfeasibleDecisionError, InfeasibleAllocationError):
        return False
    return True
