"""Deterministic random-number-generator helpers.

Every stochastic component of the library (user drops, shadowing, the
annealer's proposal chain) takes an explicit ``numpy.random.Generator``.
These helpers derive independent child generators from a root seed so that
e.g. the scenario draw and the scheduler's chain are decorrelated but both
reproducible.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

#: Optional hook wrapping every generator these factories hand out.
#: ``repro.sanitize`` installs one to interpose its draw-ledger proxy;
#: the default (``None``) hands back the raw generator, so the hot path
#: costs one ``is None`` check.  Process-local by design, mirroring the
#: ``repro.obs`` recorder seam.
_STREAM_OBSERVER: Optional[
    Callable[[np.random.Generator, str], np.random.Generator]
] = None


def set_stream_observer(
    observer: Optional[Callable[[np.random.Generator, str], np.random.Generator]]
) -> None:
    """Install (or clear, with ``None``) the stream-creation observer.

    The observer receives every generator created by :func:`make_rng` /
    :func:`child_rng` together with a stable stream label
    (``"root:<seed>"`` / ``"child:<seed>:<stream>"``) and returns the
    generator to hand to the caller — typically a wrapping proxy.
    """
    global _STREAM_OBSERVER
    _STREAM_OBSERVER = observer


def _observe(rng: np.random.Generator, label: str) -> np.random.Generator:
    if _STREAM_OBSERVER is None:
        return rng
    return _STREAM_OBSERVER(rng, label)


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """A fresh generator; with ``seed=None`` entropy comes from the OS."""
    return _observe(np.random.default_rng(seed), f"root:{seed}")


def child_rng(seed: int, stream: int) -> np.random.Generator:
    """An independent generator for sub-stream ``stream`` of ``seed``.

    Uses ``SeedSequence.spawn`` semantics: different ``stream`` values give
    statistically independent streams, and the mapping is stable across
    processes and runs.
    """
    return _observe(
        np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(stream,))
        ),
        f"child:{seed}:{stream}",
    )


def seed_stream(root_seed: int) -> Iterator[int]:
    """An infinite stream of distinct derived 32-bit seeds."""
    rng = np.random.default_rng(root_seed)
    while True:
        yield int(rng.integers(0, 2**32 - 1))
