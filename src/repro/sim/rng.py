"""Deterministic random-number-generator helpers.

Every stochastic component of the library (user drops, shadowing, the
annealer's proposal chain) takes an explicit ``numpy.random.Generator``.
These helpers derive independent child generators from a root seed so that
e.g. the scenario draw and the scheduler's chain are decorrelated but both
reproducible.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """A fresh generator; with ``seed=None`` entropy comes from the OS."""
    return np.random.default_rng(seed)


def child_rng(seed: int, stream: int) -> np.random.Generator:
    """An independent generator for sub-stream ``stream`` of ``seed``.

    Uses ``SeedSequence.spawn`` semantics: different ``stream`` values give
    statistically independent streams, and the mapping is stable across
    processes and runs.
    """
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(stream,)))


def seed_stream(root_seed: int) -> Iterator[int]:
    """An infinite stream of distinct derived 32-bit seeds."""
    rng = np.random.default_rng(root_seed)
    while True:
        yield int(rng.integers(0, 2**32 - 1))
