"""A concrete simulated MEC system instance.

``Scenario`` bundles everything the schedulers need: the user population,
the MEC servers, the channel-gain tensor drawn for one random user drop,
and the OFDMA/noise parameters.  It also precomputes the per-user constants
of Sec. IV — ``t_local``, ``E_local`` and the coefficients

* ``phi_u = lambda_u beta_t d_u / (t_local W)``
* ``psi_u = lambda_u beta_e d_u / (E_local W)``
* ``eta_u = lambda_u beta_t f_local``

used by the closed-form objective (Eq. 19 and 22-24) — so that objective
evaluation inside the annealer is pure vectorised numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.net.channel import ChannelModel
from repro.net.ofdma import OfdmaGrid
from repro.net.pathloss import LogNormalShadowing, UrbanMacroPathLoss
from repro.net.topology import Topology
from repro.sim.config import SimulationConfig
from repro.sim.rng import child_rng
from repro.tasks.device import UserDevice
from repro.tasks.server import MecServer
from repro.tasks.workload import uniform_population


@dataclass(frozen=True)
class Scenario:
    """One fully-instantiated multi-user multi-server MEC system.

    Construct via :meth:`build` (from a :class:`SimulationConfig` and a
    seed) or :meth:`from_parts` (explicit components, used heavily by
    tests).  All the numpy attributes are derived and read-only.
    """

    users: List[UserDevice]
    servers: List[MecServer]
    gains: np.ndarray  # (U, S, N) channel power gains h[u, s, j]
    ofdma: OfdmaGrid
    noise_watts: float
    topology: Optional[Topology] = None
    user_positions: Optional[np.ndarray] = None

    # Derived arrays (filled in __post_init__).
    input_bits: np.ndarray = field(init=False, repr=False)
    cycles: np.ndarray = field(init=False, repr=False)
    user_cpu_hz: np.ndarray = field(init=False, repr=False)
    tx_power_watts: np.ndarray = field(init=False, repr=False)
    local_time_s: np.ndarray = field(init=False, repr=False)
    local_energy_j: np.ndarray = field(init=False, repr=False)
    beta_time: np.ndarray = field(init=False, repr=False)
    beta_energy: np.ndarray = field(init=False, repr=False)
    operator_weight: np.ndarray = field(init=False, repr=False)
    server_cpu_hz: np.ndarray = field(init=False, repr=False)
    phi: np.ndarray = field(init=False, repr=False)
    psi: np.ndarray = field(init=False, repr=False)
    eta: np.ndarray = field(init=False, repr=False)
    sqrt_eta: np.ndarray = field(init=False, repr=False)
    comm_weight: np.ndarray = field(init=False, repr=False)
    offload_gain: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        gains = np.asarray(self.gains, dtype=float)
        n_users = len(self.users)
        n_servers = len(self.servers)
        if gains.shape != (n_users, n_servers, self.ofdma.n_subbands):
            raise ConfigurationError(
                "gains shape mismatch: expected "
                f"({n_users}, {n_servers}, {self.ofdma.n_subbands}), got {gains.shape}"
            )
        if np.any(gains <= 0.0):
            raise ConfigurationError("channel gains must be strictly positive")
        if self.noise_watts <= 0.0:
            raise ConfigurationError(
                f"noise power must be positive, got {self.noise_watts}"
            )
        object.__setattr__(self, "gains", gains)

        def arr(values: Sequence[float]) -> np.ndarray:
            return np.array(values, dtype=float)

        object.__setattr__(self, "input_bits", arr([u.task.input_bits for u in self.users]))
        object.__setattr__(self, "cycles", arr([u.task.cycles for u in self.users]))
        object.__setattr__(self, "user_cpu_hz", arr([u.cpu_hz for u in self.users]))
        object.__setattr__(
            self, "tx_power_watts", arr([u.tx_power_watts for u in self.users])
        )
        object.__setattr__(self, "local_time_s", arr([u.local_time_s for u in self.users]))
        object.__setattr__(
            self, "local_energy_j", arr([u.local_energy_j for u in self.users])
        )
        object.__setattr__(self, "beta_time", arr([u.beta_time for u in self.users]))
        object.__setattr__(self, "beta_energy", arr([u.beta_energy for u in self.users]))
        object.__setattr__(
            self, "operator_weight", arr([u.operator_weight for u in self.users])
        )
        object.__setattr__(self, "server_cpu_hz", arr([s.cpu_hz for s in self.servers]))

        subband_w = self.ofdma.subband_width_hz
        lam = self.operator_weight
        if n_users:
            phi = lam * self.beta_time * self.input_bits / (self.local_time_s * subband_w)
            psi = lam * self.beta_energy * self.input_bits / (
                self.local_energy_j * subband_w
            )
            eta = lam * self.beta_time * self.user_cpu_hz
        else:
            phi = np.zeros(0)
            psi = np.zeros(0)
            eta = np.zeros(0)
        object.__setattr__(self, "phi", phi)
        object.__setattr__(self, "psi", psi)
        object.__setattr__(self, "eta", eta)
        object.__setattr__(self, "sqrt_eta", np.sqrt(eta))
        # Objective constants shared by the full and delta evaluation
        # paths: the per-user communication-cost numerator of Eq. (19)
        # and the constant gain term of Eq. (16)/(24).
        object.__setattr__(
            self, "comm_weight", phi + psi * self.tx_power_watts
        )
        object.__setattr__(
            self, "offload_gain", lam * (self.beta_time + self.beta_energy)
        )

    # --- Shape helpers ----------------------------------------------------

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    @property
    def n_subbands(self) -> int:
        return self.ofdma.n_subbands

    @property
    def subband_width_hz(self) -> float:
        return self.ofdma.subband_width_hz

    @property
    def max_offloaders(self) -> int:
        """System-wide slot capacity ``S * N`` (constraint 12d)."""
        return self.n_servers * self.n_subbands

    # --- Construction -----------------------------------------------------

    @classmethod
    def build(cls, config: SimulationConfig, seed: int = 0) -> "Scenario":
        """Draw one random instance (user drop + shadowing) of ``config``.

        Stream 0 of ``seed`` drives user placement, stream 1 the shadowing
        draw, so the two are independent and individually reproducible.
        """
        topology = Topology.hexagonal(
            config.n_servers, config.inter_site_distance_km
        )
        placement_rng = child_rng(seed, 0)
        channel_rng = child_rng(seed, 1)
        user_positions = topology.place_users(
            config.n_users, placement_rng, config.min_bs_distance_km
        )
        channel = ChannelModel(
            pathloss=UrbanMacroPathLoss(
                intercept_db=config.pathloss_intercept_db,
                slope_db=config.pathloss_slope_db,
            ),
            shadowing=LogNormalShadowing(sigma_db=config.shadowing_sigma_db),
        )
        gains = channel.gains(
            topology, user_positions, config.n_subbands, channel_rng
        )
        users = uniform_population(
            n_users=config.n_users,
            input_bits=config.input_bits,
            cycles=config.workload_cycles,
            cpu_hz=config.user_cpu_hz,
            tx_power_watts=config.tx_power_watts,
            kappa=config.kappa,
            beta_time=config.beta_time,
            operator_weight=config.operator_weight,
        )
        servers = [MecServer(cpu_hz=config.server_cpu_hz) for _ in range(config.n_servers)]
        return cls(
            users=users,
            servers=servers,
            gains=gains,
            ofdma=OfdmaGrid(
                total_bandwidth_hz=config.bandwidth_hz,
                n_subbands=config.n_subbands,
            ),
            noise_watts=config.noise_watts,
            topology=topology,
            user_positions=user_positions,
        )

    @classmethod
    def from_parts(
        cls,
        users: List[UserDevice],
        servers: List[MecServer],
        gains: np.ndarray,
        total_bandwidth_hz: float,
        noise_watts: float,
    ) -> "Scenario":
        """Assemble a scenario from explicit components (no randomness)."""
        gains = np.asarray(gains, dtype=float)
        if gains.ndim != 3:
            raise ConfigurationError(
                f"gains must have shape (U, S, N), got {gains.shape}"
            )
        return cls(
            users=users,
            servers=servers,
            gains=gains,
            ofdma=OfdmaGrid(
                total_bandwidth_hz=total_bandwidth_hz, n_subbands=gains.shape[2]
            ),
            noise_watts=noise_watts,
        )
