"""Pluggable sweep-execution backends for :mod:`repro.sim.runner`.

See :mod:`repro.sim.executors.base` for the :class:`SweepExecutor`
protocol and the cell/wave value types, and ``docs/robustness.md`` for
the failure model each backend hardens against.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.sim.executors.base import (
    Cell,
    CellFailure,
    CellResult,
    SweepExecutor,
    WaveOutcome,
    run_one_seed,
    seed_work,
)
from repro.sim.executors.pool import ProcessPoolSweepExecutor
from repro.sim.executors.queue import WorkQueueExecutor
from repro.sim.executors.serial import SerialExecutor

# NOTE: repro.sim.executors.worker is deliberately NOT imported here —
# it doubles as the ``python -m`` worker entry point, and importing it
# from the package __init__ would make runpy re-execute a live module.

__all__ = [
    "Cell",
    "CellFailure",
    "CellResult",
    "SweepExecutor",
    "WaveOutcome",
    "run_one_seed",
    "seed_work",
    "SerialExecutor",
    "ProcessPoolSweepExecutor",
    "WorkQueueExecutor",
    "make_executor",
]

#: Backends :func:`make_executor` knows how to build.
BACKENDS = ("serial", "pool", "queue")


def make_executor(
    backend: str,
    n_jobs: int = 1,
    queue_dir: Optional[Union[str, Path]] = None,
) -> SweepExecutor:
    """Build a backend by name (the CLI's ``--backend`` factory).

    ``n_jobs`` maps to pool workers for ``pool`` and local queue workers
    for ``queue``; the serial backend ignores it.  ``queue_dir`` is
    required by (and only meaningful to) the ``queue`` backend.
    """
    if backend == "serial":
        return SerialExecutor()
    if backend == "pool":
        return ProcessPoolSweepExecutor(n_jobs=n_jobs)
    if backend == "queue":
        if queue_dir is None:
            raise ConfigurationError(
                "the queue backend needs a queue directory (--queue-dir)"
            )
        return WorkQueueExecutor(queue_dir, n_local_workers=n_jobs)
    raise ConfigurationError(
        f"unknown executor backend {backend!r}; expected one of "
        f"{', '.join(BACKENDS)}"
    )
