"""Work-queue worker: claim leased task files, compute, write results.

Run as ``tsajs worker QUEUE_DIR`` (or ``python -m
repro.sim.executors.worker QUEUE_DIR``) on any machine that can see the
queue directory.  The loop is deliberately boring:

1. list ``tasks/`` (sorted, for determinism of claim *order* — results
   are position-merged by the coordinator so claim order never affects
   output bytes);
2. claim one task by atomically renaming it into ``leases/`` — losing
   the rename race to another worker is normal, not an error;
3. start a heartbeat thread that rewrites the lease's ``.hb`` sidecar
   every ``heartbeat_s`` with a strictly increasing beat counter;
4. unpickle the referenced sweep spec (cached per spec name), run the
   cell via the same :func:`~repro.sim.executors.base.run_one_seed`
   every other backend uses — inside a propagated
   :class:`~repro.obs.dist.TraceContext` (publishing a per-task trace
   shard) when the task file carries one — and atomically write a
   checksummed result (or an error record if the cell's work raised);
5. release the lease and heartbeat files.

If the worker dies at *any* point, the lease simply stops heartbeating
and the coordinator expires it — no cleanup protocol is required, which
is the whole point of the lease design.
"""

from __future__ import annotations

import argparse
import os
import pickle
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.atomicio import atomic_write_json
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.obs.clock import sleep
from repro.obs.dist import TraceContext, worker_trace
from repro.obs.recorder import use_recorder
from repro.sim.config import SimulationConfig
from repro.sim.executors.base import metrics_to_payload, run_one_seed
from repro.sim.executors.files import (
    QUEUE_FORMAT_VERSION,
    quarantine_file,
    read_json,
    result_payload,
)
from repro.sim.metrics import SolutionMetrics

_Spec = Tuple[SimulationConfig, List[Scheduler]]


def _worker_id() -> str:
    """Identity written into heartbeats.

    The ``pid:`` prefix lets a coordinator that *spawned* this worker
    recognise its leases and expire them the moment the process is
    reaped, without waiting out the heartbeat budget.
    """
    return f"pid:{os.getpid()}"


class _Heartbeat:
    """Background thread refreshing one lease's heartbeat sidecar."""

    def __init__(self, path: Path, period_s: float) -> None:
        self._path = path
        self._period_s = period_s
        self._stop = threading.Event()
        self._beat = 0
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _write(self) -> None:
        atomic_write_json(
            self._path, {"beat": self._beat, "worker": _worker_id()}
        )

    def _run(self) -> None:
        while not self._stop.wait(self._period_s):
            self._beat += 1
            try:
                self._write()
            except OSError:
                # A vanished lease directory means the coordinator gave
                # up on us; the compute thread will discover that when it
                # tries to publish, so just stop advertising liveness.
                return

    def __enter__(self) -> "_Heartbeat":
        self._write()
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        try:
            os.unlink(self._path)
        except OSError:
            pass


class QueueWorker:
    """Drains tasks from one queue directory until told (or drained) to stop."""

    def __init__(
        self,
        queue_dir: Path,
        poll_s: float = 0.05,
        heartbeat_s: float = 1.0,
        crash_hook: Optional[Any] = None,
    ) -> None:
        if poll_s <= 0:
            raise ConfigurationError(f"poll_s must be positive, got {poll_s}")
        if heartbeat_s <= 0:
            raise ConfigurationError(
                f"heartbeat_s must be positive, got {heartbeat_s}"
            )
        self.queue_dir = Path(queue_dir)
        self.poll_s = poll_s
        self.heartbeat_s = heartbeat_s
        #: Test seam: called with the claimed task name before computing,
        #: so chaos tests can kill the worker mid-lease deterministically.
        self.crash_hook = crash_hook
        self._specs: Dict[str, _Spec] = {}

    def _dir(self, kind: str) -> Path:
        return self.queue_dir / kind

    def _load_spec(self, spec_name: str) -> _Spec:
        if spec_name not in self._specs:
            path = self._dir("spec") / f"{spec_name}.pkl"
            with open(path, "rb") as handle:
                config, schedulers = pickle.load(handle)
            self._specs[spec_name] = (config, list(schedulers))
        return self._specs[spec_name]

    def _claim_one(self) -> Optional[str]:
        """Atomically move one pending task into ``leases/``; None if empty."""
        tasks_dir = self._dir("tasks")
        try:
            names = sorted(p.name for p in tasks_dir.iterdir())
        except OSError:
            return None
        for filename in names:
            if not filename.endswith(".json"):
                continue
            try:
                os.rename(tasks_dir / filename, self._dir("leases") / filename)
            except OSError:
                continue  # lost the claim race — somebody else has it
            return filename[: -len(".json")]
        return None

    def _process(self, name: str) -> None:
        lease = self._dir("leases") / f"{name}.json"
        heartbeat = self._dir("leases") / f"{name}.hb"
        with _Heartbeat(heartbeat, self.heartbeat_s):
            try:
                task = read_json(lease)
                version = task.get("format_version")
                if version != QUEUE_FORMAT_VERSION:
                    raise ConfigurationError(
                        f"task {name} has format_version {version!r}, "
                        f"expected {QUEUE_FORMAT_VERSION}"
                    )
                config, schedulers = self._load_spec(str(task["spec"]))
                seed = int(task["seed"])
                if self.crash_hook is not None:
                    self.crash_hook(name)
                metrics = self._run_task(task, name, config, schedulers, seed)
            except ConfigurationError as exc:
                # The task file itself is bad — quarantine it so the
                # queue does not loop on it, and record why.
                quarantine_file(lease, self._dir("corrupt"))
                atomic_write_json(
                    self._dir("errors") / f"{name}.json",
                    {
                        "format_version": QUEUE_FORMAT_VERSION,
                        "task": name,
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
                return
            except Exception as exc:
                atomic_write_json(
                    self._dir("errors") / f"{name}.json",
                    {
                        "format_version": QUEUE_FORMAT_VERSION,
                        "task": name,
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
            else:
                atomic_write_json(
                    self._dir("results") / f"{name}.json",
                    result_payload(name, metrics_to_payload(metrics)),
                )
            finally:
                try:
                    os.unlink(lease)
                except OSError:
                    pass

    def _run_task(
        self,
        task: Dict[str, Any],
        name: str,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        seed: int,
    ) -> List[SolutionMetrics]:
        """Run the cell, inside a propagated trace context when present.

        Task files written by a telemetry-enabled coordinator carry a
        ``trace`` key (the serialized
        :class:`~repro.obs.dist.TraceContext`); this worker then records
        the cell's spans into its own shard in the shared telemetry
        directory.  A missing or malformed key runs the cell untraced —
        telemetry never fails or perturbs the work.
        """
        payload = task.get("trace")
        ctx: Optional[TraceContext] = None
        if payload is not None:
            try:
                ctx = TraceContext.from_payload(payload)
            except ConfigurationError:
                ctx = None
        if ctx is None:
            return run_one_seed(config, schedulers, seed)
        with worker_trace(ctx, task=name) as recorder:
            with use_recorder(recorder):
                return run_one_seed(config, schedulers, seed)

    def drain(self, max_tasks: Optional[int] = None) -> int:
        """Process tasks until ``tasks/`` is empty; return the count done."""
        processed = 0
        while max_tasks is None or processed < max_tasks:
            name = self._claim_one()
            if name is None:
                return processed
            self._process(name)
            processed += 1
        return processed

    def run_forever(self, max_tasks: Optional[int] = None) -> int:
        """Drain, then keep polling for new tasks until interrupted."""
        processed = 0
        while max_tasks is None or processed < max_tasks:
            name = self._claim_one()
            if name is None:
                sleep(self.poll_s)
                continue
            self._process(name)
            processed += 1
        return processed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.sim.executors.worker",
        description="Drain task files from a tsajs work-queue directory.",
    )
    parser.add_argument("queue_dir", help="queue directory to drain")
    parser.add_argument(
        "--drain",
        action="store_true",
        help="exit once the task directory is empty instead of polling",
    )
    parser.add_argument(
        "--poll", type=float, default=0.05, help="idle poll period (seconds)"
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=1.0,
        help="lease heartbeat period (seconds)",
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="stop after processing this many tasks",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    worker = QueueWorker(
        Path(args.queue_dir), poll_s=args.poll, heartbeat_s=args.heartbeat
    )
    if args.drain:
        worker.drain(max_tasks=args.max_tasks)
    else:
        worker.run_forever(max_tasks=args.max_tasks)
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    raise SystemExit(main())
