"""File-based work-queue executor: leased task files drained by workers.

The queue is a plain directory — the only coordination primitive is the
atomicity of ``os.rename`` within one filesystem — so any number of
independent ``tsajs worker`` processes, on one or many machines sharing
the directory, can drain a sweep:

``spec/``
    Pickled ``(config, schedulers)`` payloads, content-named; task files
    reference the spec they belong to so one queue can serve many sweeps.
``tasks/``
    Pending task files (one JSON file per cell).  A worker *claims* a
    task by renaming it into ``leases/`` — an atomic operation exactly
    one contender can win.
``leases/``
    Claimed task files plus a heartbeat sidecar (``<task>.hb``) the
    worker refreshes while computing.  A lease whose heartbeat goes
    silent past the timeout (or whose locally-spawned worker is known
    dead) is *expired*: moved to ``expired/`` and reported as a fatal
    cell failure for the runner's retry/quarantine logic.
``results/`` / ``errors/``
    Completed cells (checksummed, written atomically) and per-cell
    error records.  A corrupt result entry is quarantined to
    ``corrupt/`` and the cell recomputed on the next wave.

The coordinator never trusts clocks across machines: lease staleness is
judged purely by *observed heartbeat progress* on the coordinator's own
monotonic clock, so skewed wall clocks cannot expire a healthy lease.
Every cell is fully self-seeding, so which worker computes it never
changes the result — re-running a wave, double-claiming after an expiry
race, or mixing machines all converge to byte-identical sweeps.

With telemetry on, each wave opens a ``queue.wave`` span, embeds the
coordinator's :class:`~repro.obs.dist.TraceContext` in every task file
(workers then publish per-task trace shards into the shared telemetry
directory), records ``queue.lease_wait_s`` / ``queue.result_wait_s``
latency histograms per cell, and emits ``worker_detached`` when no
context can be propagated.  Task files written without telemetry are
byte-identical to the legacy format.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.atomicio import atomic_write_bytes, atomic_write_json, sha256_hex
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.obs.clock import monotonic, sleep
from repro.obs.dist import propagated_context
from repro.obs.recorder import get_recorder
from repro.obs.trace import emit_worker_detached
from repro.sim.config import SimulationConfig
from repro.sim.executors.base import (
    Cell,
    CellFailure,
    CellResult,
    WaveOutcome,
)
from repro.sim.executors.files import (
    QUEUE_DIRS,
    QUEUE_FORMAT_VERSION,
    load_result_payload,
    quarantine_file,
    read_json,
    task_name,
)

#: Default seconds of heartbeat silence after which a lease is expired.
DEFAULT_LEASE_TIMEOUT_S = 30.0


@dataclass
class _LeaseWatch:
    """Coordinator-side staleness tracking for one observed lease."""

    beat: int
    seen_at: float
    worker: str
    first_seen: float


class WorkQueueExecutor:
    """Drives one wave of cells through a shared task-file queue.

    Parameters
    ----------
    queue_dir:
        Root of the queue directory tree (created on demand).  Workers
        on other machines drain the same tree via ``tsajs worker DIR``.
    n_local_workers:
        Worker subprocesses the coordinator spawns (and respawns on
        death) per wave to drain its own queue.  ``0`` relies entirely
        on external workers.
    lease_timeout_s:
        Heartbeat-silence budget before a lease is expired.  Distinct
        from the runner's per-seed timeout (``RetryPolicy.seed_timeout_s``,
        passed into :meth:`run_wave`), which bounds *total* cell wall
        time even while heartbeats keep arriving.
    heartbeat_s / poll_s:
        Worker heartbeat period and coordinator poll period.
    idle_timeout_s:
        With no local workers, how long the coordinator waits without
        observing *any* progress before declaring unclaimed cells failed
        (guards against waiting forever on a queue nobody is draining).
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: Union[str, Path],
        n_local_workers: int = 1,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        heartbeat_s: float = 1.0,
        poll_s: float = 0.05,
        idle_timeout_s: float = 60.0,
    ) -> None:
        if n_local_workers < 0:
            raise ConfigurationError(
                f"n_local_workers must be >= 0, got {n_local_workers}"
            )
        if lease_timeout_s <= 0:
            raise ConfigurationError(
                f"lease_timeout_s must be positive, got {lease_timeout_s}"
            )
        if heartbeat_s <= 0:
            raise ConfigurationError(
                f"heartbeat_s must be positive, got {heartbeat_s}"
            )
        if poll_s <= 0:
            raise ConfigurationError(f"poll_s must be positive, got {poll_s}")
        if idle_timeout_s <= 0:
            raise ConfigurationError(
                f"idle_timeout_s must be positive, got {idle_timeout_s}"
            )
        self.queue_dir = Path(queue_dir)
        self.n_local_workers = n_local_workers
        self.lease_timeout_s = lease_timeout_s
        self.heartbeat_s = heartbeat_s
        self.poll_s = poll_s
        self.idle_timeout_s = idle_timeout_s
        self._procs: List["subprocess.Popen[bytes]"] = []

    # --- layout helpers -----------------------------------------------------

    def _dir(self, kind: str) -> Path:
        return self.queue_dir / kind

    def _ensure_layout(self) -> None:
        for kind in QUEUE_DIRS:
            self._dir(kind).mkdir(parents=True, exist_ok=True)

    # --- worker management --------------------------------------------------

    def _spawn_worker(self) -> "subprocess.Popen[bytes]":
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.sim.executors.worker",
                str(self.queue_dir),
                "--drain",
                "--poll",
                str(self.poll_s),
                "--heartbeat",
                str(self.heartbeat_s),
            ],
        )
        self._procs.append(proc)
        return proc

    def _live_local_pids(self) -> Dict[int, "subprocess.Popen[bytes]"]:
        return {p.pid: p for p in self._procs if p.poll() is None}

    def _dead_local_pids(self) -> List[int]:
        return sorted(p.pid for p in self._procs if p.poll() is not None)

    def _stop_workers(self) -> None:
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self._procs = []

    # --- wave ---------------------------------------------------------------

    def run_wave(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        cells: Sequence[Cell],
        timeout_s: Optional[float],
    ) -> WaveOutcome:
        try:
            with get_recorder().span(
                "queue.wave",
                n_cells=len(cells),
                n_local_workers=self.n_local_workers,
            ):
                return self._run_wave(config, schedulers, cells, timeout_s)
        except OSError as exc:
            # The queue directory itself failed (unmounted share, ENOSPC,
            # permissions): report the machinery broken so the runner can
            # degrade to the serial backend instead of crashing the sweep.
            outcome = WaveOutcome(broken=True)
            for position, seed in cells:
                outcome.failed.append(
                    CellFailure(
                        position=position,
                        seed=seed,
                        error=f"queue directory error: {exc}",
                    )
                )
            return outcome
        finally:
            self._stop_workers()

    def _run_wave(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        cells: Sequence[Cell],
        timeout_s: Optional[float],
    ) -> WaveOutcome:
        rec = get_recorder()
        self._ensure_layout()
        spec_name = self._write_spec(config, schedulers)
        outcome = WaveOutcome()

        # Distributed tracing: ship the coordinator's context inside the
        # task files so each (possibly remote) worker records its own
        # shard.  Untraced task files carry no "trace" key at all, so
        # the on-disk protocol is unchanged when telemetry is off.
        ctx = propagated_context()
        if rec.enabled and ctx is None:
            emit_worker_detached("queue", len(cells))
        trace_payload = ctx.to_payload() if ctx is not None else None

        pending: Dict[str, Cell] = {}
        enqueued_at: Dict[str, float] = {}
        lease_observed: set = set()
        for position, seed in cells:
            name = task_name(spec_name, seed)
            resolved = self._try_resolve_result(name, position, seed, outcome)
            if resolved:
                continue
            task_doc: Dict[str, object] = {
                "format_version": QUEUE_FORMAT_VERSION,
                "spec": spec_name,
                "seed": seed,
            }
            if trace_payload is not None:
                task_doc["trace"] = trace_payload
            atomic_write_json(self._dir("tasks") / f"{name}.json", task_doc)
            pending[name] = (position, seed)
            enqueued_at[name] = monotonic()

        for _ in range(min(self.n_local_workers, max(len(pending), 0))):
            self._spawn_worker()

        watches: Dict[str, _LeaseWatch] = {}
        claim_deadline = monotonic() + self.idle_timeout_s
        respawns_left = len(pending)
        while pending:
            progressed = False
            for name in sorted(pending):
                position, seed = pending[name]
                if self._try_resolve_result(name, position, seed, outcome):
                    if rec.enabled and name in enqueued_at:
                        # Enqueue-to-result latency (includes lease wait).
                        rec.observe(
                            "queue.result_wait_s",
                            monotonic() - enqueued_at[name],
                        )
                    del pending[name]
                    progressed = True
                    continue
                error = self._take_error(name)
                if error is not None:
                    outcome.failed.append(
                        CellFailure(position=position, seed=seed, error=error)
                    )
                    del pending[name]
                    progressed = True
                    continue
                state = self._check_lease(name, timeout_s, watches)
                if state == "expired":
                    if rec.enabled:
                        rec.event("queue.lease_expired", task=name, seed=seed)
                        rec.count("queue.leases_expired")
                    outcome.failed.append(
                        CellFailure(
                            position=position,
                            seed=seed,
                            error=(
                                f"lease on task {name} expired (worker died "
                                "or heartbeat silent past "
                                f"{self.lease_timeout_s}s)"
                            ),
                            fatal=True,
                        )
                    )
                    del pending[name]
                    progressed = True
                elif state == "leased":
                    if (
                        rec.enabled
                        and name not in lease_observed
                        and name in enqueued_at
                    ):
                        # Enqueue-to-first-observed-lease latency: how
                        # long the task sat unclaimed (poll-granular).
                        lease_observed.add(name)
                        rec.observe(
                            "queue.lease_wait_s",
                            monotonic() - enqueued_at[name],
                        )
                    progressed = True

            if progressed:
                claim_deadline = monotonic() + self.idle_timeout_s
            if pending and self._maybe_respawn(respawns_left):
                respawns_left -= 1
            if pending and not progressed and monotonic() > claim_deadline:
                for name in sorted(pending):
                    position, seed = pending.pop(name)
                    self._remove_task(name)
                    outcome.failed.append(
                        CellFailure(
                            position=position,
                            seed=seed,
                            error=(
                                f"no worker claimed task {name} within "
                                f"{self.idle_timeout_s}s (is a worker "
                                "draining this queue?)"
                            ),
                        )
                    )
                break
            if pending:
                sleep(self.poll_s)
        return outcome

    def _maybe_respawn(self, respawns_left: int) -> bool:
        """Replace one dead local worker while work remains (bounded)."""
        if self.n_local_workers == 0 or respawns_left <= 0:
            return False
        live = len(self._live_local_pids())
        if live >= self.n_local_workers or not self._dead_local_pids():
            return False
        self._spawn_worker()
        rec = get_recorder()
        if rec.enabled:
            rec.event("queue.worker_respawned", live_workers=live + 1)
            rec.count("queue.worker_respawns")
        return True

    # --- per-cell state probes ----------------------------------------------

    def _write_spec(
        self, config: SimulationConfig, schedulers: Sequence[Scheduler]
    ) -> str:
        blob = pickle.dumps((config, list(schedulers)))
        name = f"spec-{sha256_hex(blob)[:12]}"
        path = self._dir("spec") / f"{name}.pkl"
        if not path.exists():
            atomic_write_bytes(path, blob)
        return name

    def _try_resolve_result(
        self, name: str, position: int, seed: int, outcome: WaveOutcome
    ) -> bool:
        """Consume a valid result entry for ``name`` if one exists."""
        path = self._dir("results") / f"{name}.json"
        if not path.exists():
            return False
        rec = get_recorder()
        try:
            metrics = load_result_payload(path, name)
        except ConfigurationError as exc:
            quarantine_file(path, self._dir("corrupt"))
            if rec.enabled:
                rec.event("queue.result_quarantined", task=name, error=str(exc))
                rec.count("queue.results_quarantined")
            return False
        outcome.done.append(
            CellResult(position=position, seed=seed, metrics=metrics)
        )
        return True

    def _take_error(self, name: str) -> Optional[str]:
        path = self._dir("errors") / f"{name}.json"
        if not path.exists():
            return None
        try:
            payload = read_json(path)
            error = str(payload["error"])
        except (ConfigurationError, KeyError):
            error = f"worker error record for task {name} was unreadable"
        try:
            os.unlink(path)
        except OSError:
            pass
        return error

    def _check_lease(
        self,
        name: str,
        timeout_s: Optional[float],
        watches: Dict[str, _LeaseWatch],
    ) -> str:
        """``"unclaimed"``, ``"leased"`` or ``"expired"`` for one task."""
        lease = self._dir("leases") / f"{name}.json"
        heartbeat = self._dir("leases") / f"{name}.hb"
        if not lease.exists():
            if (self._dir("tasks") / f"{name}.json").exists():
                return "unclaimed"
            # Mid-claim rename or mid-completion cleanup: treat as leased
            # and let the next poll observe the settled state.
            return "leased"
        beat, worker = self._read_heartbeat(heartbeat)
        now = monotonic()
        watch = watches.get(name)
        if watch is None:
            watch = _LeaseWatch(
                beat=beat, seen_at=now, worker=worker, first_seen=now
            )
            watches[name] = watch
        elif beat != watch.beat or worker != watch.worker:
            watch.beat = beat
            watch.worker = worker
            watch.seen_at = now
        silent_for = now - watch.seen_at
        expired = silent_for > self.lease_timeout_s
        if not expired and self._worker_is_dead_local(watch.worker):
            expired = True
        if not expired and timeout_s is not None:
            # The runner's per-seed budget also applies on this backend:
            # a lease that keeps heartbeating but never finishes is a
            # hung cell, not a healthy one.
            expired = (now - watch.first_seen) > timeout_s
        if not expired:
            return "leased"
        self._expire_lease(lease, heartbeat)
        watches.pop(name, None)
        return "expired"

    def _read_heartbeat(self, path: Path) -> Tuple[int, str]:
        try:
            payload = read_json(path)
            return int(payload["beat"]), str(payload["worker"])
        except (ConfigurationError, KeyError, TypeError, ValueError):
            return -1, ""

    def _worker_is_dead_local(self, worker: str) -> bool:
        """A lease held by one of *our* workers that already exited is
        stale immediately — no need to wait out the heartbeat budget."""
        if not worker.startswith("pid:"):
            return False
        try:
            pid = int(worker.split(":", 1)[1])
        except ValueError:
            return False
        return pid in set(self._dead_local_pids())

    def _expire_lease(self, lease: Path, heartbeat: Path) -> None:
        quarantine_file(lease, self._dir("expired"))
        try:
            os.unlink(heartbeat)
        except OSError:
            pass

    def _remove_task(self, name: str) -> None:
        try:
            os.unlink(self._dir("tasks") / f"{name}.json")
        except OSError:
            pass

    def close(self) -> None:
        self._stop_workers()
