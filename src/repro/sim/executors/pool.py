"""Process-pool executor — the original parallel backend behind the protocol.

One wave = one fresh ``ProcessPoolExecutor``.  A worker crash surfaces as
``BrokenProcessPool`` on its future (and on every sibling still pending);
a hung worker trips the per-seed timeout.  Either way the wave reports
``broken=True``: a broken pool's workers cannot be recovered, so it is
abandoned (``shutdown(wait=False)``) and the runner retries the failed
cells in a fresh pool or serially.  Both failure shapes are ``fatal`` —
they killed or lost the worker rather than raising from the cell's own
work — so the runner's poison-cell quarantine counts them.

When telemetry is on, each wave opens a ``pool.wave`` span and ships the
coordinator's :class:`~repro.obs.dist.TraceContext` inside the task
payload, so every worker records its seed's spans into its own shard
(``trace-<pid>-s<seed>.jsonl``) under the wave span; without a
propagable context the wave emits ``worker_detached`` instead of
silently losing worker telemetry.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.obs.dist import propagated_context
from repro.obs.recorder import get_recorder
from repro.obs.trace import emit_worker_detached
from repro.sim.config import SimulationConfig
from repro.sim.executors.base import (
    Cell,
    CellFailure,
    CellResult,
    WaveOutcome,
    run_one_seed_remote,
)


class ProcessPoolSweepExecutor:
    """Fans cells out over ``n_jobs`` worker processes per wave."""

    name = "pool"

    def __init__(self, n_jobs: int) -> None:
        if n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = n_jobs

    def run_wave(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        cells: Sequence[Cell],
        timeout_s: Optional[float],
    ) -> WaveOutcome:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FuturesTimeoutError
        from concurrent.futures.process import BrokenProcessPool

        outcome = WaveOutcome()
        rec = get_recorder()
        with rec.span("pool.wave", n_cells=len(cells), n_jobs=self.n_jobs):
            # Derived inside the wave span so worker shards nest under it.
            ctx = propagated_context()
            if rec.enabled and ctx is None:
                emit_worker_detached("pool", len(cells))
            payload = ctx.to_payload() if ctx is not None else None
            pool = ProcessPoolExecutor(max_workers=min(self.n_jobs, len(cells)))
            try:
                futures = [
                    (
                        position,
                        seed,
                        pool.submit(
                            run_one_seed_remote, payload, config, schedulers, seed
                        ),
                    )
                    for position, seed in cells
                ]
                for position, seed, future in futures:
                    try:
                        metrics = future.result(timeout=timeout_s)
                    except FuturesTimeoutError:
                        outcome.broken = True
                        outcome.failed.append(
                            CellFailure(
                                position=position,
                                seed=seed,
                                error=(
                                    f"seed {seed} exceeded the {timeout_s}s budget"
                                ),
                                fatal=True,
                            )
                        )
                    except BrokenProcessPool:
                        outcome.broken = True
                        outcome.failed.append(
                            CellFailure(
                                position=position,
                                seed=seed,
                                error=(
                                    f"worker process died while running seed {seed}"
                                ),
                                fatal=True,
                            )
                        )
                    except Exception as exc:
                        outcome.failed.append(
                            CellFailure(
                                position=position,
                                seed=seed,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        )
                    else:
                        outcome.done.append(
                            CellResult(
                                position=position, seed=seed, metrics=metrics
                            )
                        )
            finally:
                # A broken pool (dead or hung worker) cannot be drained;
                # waiting on shutdown would block forever on the hung worker.
                pool.shutdown(wait=not outcome.broken, cancel_futures=True)
        return outcome

    def close(self) -> None:
        """Pools are per-wave; nothing outlives :meth:`run_wave`."""
