"""Executor protocol and shared cell/wave types for the sweep runner.

The multi-seed runner (:mod:`repro.sim.runner`) no longer hard-wires a
process pool: it drives *waves* of pending cells through any object
satisfying :class:`SweepExecutor`.  Three hardened backends ship with the
library:

* :class:`~repro.sim.executors.serial.SerialExecutor` — in-process, the
  reference implementation and the graceful-degradation target;
* :class:`~repro.sim.executors.pool.ProcessPoolSweepExecutor` — the
  original ``ProcessPoolExecutor`` fan-out, rehomed behind the protocol;
* :class:`~repro.sim.executors.queue.WorkQueueExecutor` — a file-based
  work queue (directory of leased task files) that any number of
  ``tsajs worker`` processes, on one or many machines, can drain.

The unit of work is one *cell*: ``(position in the seed list, seed)``.
Each cell is fully self-seeding (scenario streams 0-1, scheduler streams
100+ all derive from the seed alone), so *where* it runs can never change
*what* it computes — the runner's seed-ordered merge therefore produces
byte-identical results on every backend, which the chaos tests in
``tests/test_executors.py`` pin.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.obs.profile import maybe_profile, profiling_enabled
from repro.obs.recorder import get_recorder
from repro.sim.config import SimulationConfig
from repro.sim.metrics import SolutionMetrics, solution_metrics
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario

#: One unit of pending work: ``(position in the seed list, seed)``.
Cell = Tuple[int, int]


@dataclass(frozen=True)
class CellResult:
    """One completed cell: per-scheme metrics for one seed."""

    position: int
    seed: int
    metrics: List[SolutionMetrics]


@dataclass(frozen=True)
class CellFailure:
    """One failed cell attempt.

    ``fatal`` marks failures that killed or lost the worker itself —
    a dead process (``BrokenProcessPool``), a tripped seed timeout, or
    an expired queue lease — as opposed to an ordinary exception raised
    *by* the cell's work.  The runner counts fatal failures per cell to
    quarantine poison cells that repeatedly take workers down.
    """

    position: int
    seed: int
    error: str
    fatal: bool = False


@dataclass
class WaveOutcome:
    """What one executor wave over a set of cells produced.

    ``broken`` means the executor's machinery itself failed (worker
    death, hung pool, unusable queue directory) — the caller should
    degrade (e.g. to :class:`~repro.sim.executors.serial.SerialExecutor`)
    or rebuild before the next wave.  Failed cells are still reported
    individually so the retry loop can re-run exactly the missing work.
    """

    done: List[CellResult] = field(default_factory=list)
    failed: List[CellFailure] = field(default_factory=list)
    broken: bool = False


class SweepExecutor(Protocol):
    """Strategy object the runner hands each retry wave to.

    Implementations must be safe to call repeatedly (one call per retry
    wave) and must never raise on a *cell* failure — cell errors are data
    (:class:`CellFailure`), not exceptions.  Raising is reserved for
    invalid arguments.
    """

    #: Stable backend name (``"serial"`` / ``"pool"`` / ``"queue"``).
    name: str

    def run_wave(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        cells: Sequence[Cell],
        timeout_s: Optional[float],
    ) -> WaveOutcome:
        """Attempt every cell once; report per-cell outcomes."""
        ...  # pragma: no cover - protocol definition

    def close(self) -> None:
        """Release any held resources (idempotent)."""
        ...  # pragma: no cover - protocol definition


def seed_work(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    seed: int,
) -> List[SolutionMetrics]:
    """All schedulers on one seed's instance (the distributable work unit)."""
    scenario = Scenario.build(config, seed=seed)
    metrics: List[SolutionMetrics] = []
    for index, scheduler in enumerate(schedulers):
        rng = child_rng(seed, 100 + index)
        outcome = scheduler.schedule(scenario, rng)
        metrics.append(solution_metrics(scenario, outcome))
    return metrics


def run_one_seed(
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    seed: int,
) -> List[SolutionMetrics]:
    """Dispatch one seed's work, instrumented when a recorder is enabled.

    With the default :class:`~repro.obs.recorder.NullRecorder` and
    profiling off, this is exactly :func:`seed_work` — no spans, no
    metric touches, no profiler, so untraced runs stay on the legacy hot
    path.  A forked pool or queue worker inherits the null recorder
    (recorders are process-level state, never pickled with schedulers):
    worker-side telemetry requires the coordinator to ship a
    :class:`~repro.obs.dist.TraceContext` (see :func:`run_one_seed_remote`),
    otherwise distributed runs record seed telemetry only parent-side
    and announce the loss with a ``worker_detached`` event.
    """
    rec = get_recorder()
    if not rec.enabled and not profiling_enabled():
        return seed_work(config, schedulers, seed)
    with maybe_profile(f"seed_{seed}"):
        with rec.span("runner.seed", seed=seed, n_schemes=len(schedulers)):
            metrics = seed_work(config, schedulers, seed)
    for scheduler, entry in zip(schedulers, metrics):
        rec.count("runner.seeds_completed", scheme=scheduler.name)
        rec.count(
            "scheduler.evaluations", entry.evaluations, scheme=scheduler.name
        )
        rec.observe(
            "scheduler.wall_time_s", entry.wall_time_s, scheme=scheduler.name
        )
        rec.gauge_set(
            "scheduler.utility",
            entry.system_utility,
            scheme=scheduler.name,
            seed=seed,
        )
    return metrics


def run_one_seed_remote(
    trace_payload: Optional[Dict[str, Any]],
    config: SimulationConfig,
    schedulers: Sequence[Scheduler],
    seed: int,
) -> List[SolutionMetrics]:
    """:func:`run_one_seed` inside a propagated trace context, if any.

    The pool executor submits this wrapper instead of :func:`run_one_seed`
    directly; ``trace_payload`` is the serialized
    :class:`~repro.obs.dist.TraceContext` (or ``None`` for the untraced
    fast path, which adds nothing but one ``is None`` check).  With a
    context, the worker opens its own shard recorder for the duration of
    the seed so annealer spans land in ``trace-<pid>-s<seed>.jsonl``
    under the coordinator's wave span.  Telemetry must never perturb
    results: the seed's work is identical either way, and a malformed
    payload degrades to the untraced path instead of failing the cell.
    """
    if trace_payload is None:
        return run_one_seed(config, schedulers, seed)
    from repro.obs.dist import TraceContext, worker_trace
    from repro.obs.recorder import use_recorder

    try:
        ctx = TraceContext.from_payload(trace_payload)
    except ConfigurationError:
        return run_one_seed(config, schedulers, seed)
    with worker_trace(ctx, task=f"s{seed}") as recorder:
        with use_recorder(recorder):
            return run_one_seed(config, schedulers, seed)


def metrics_to_payload(metrics: Sequence[SolutionMetrics]) -> List[Dict[str, Any]]:
    """JSON-ready per-scheme metrics list (exact float round-trip)."""
    return [dataclasses.asdict(entry) for entry in metrics]


def metrics_from_payload(payload: Any) -> List[SolutionMetrics]:
    """Inverse of :func:`metrics_to_payload`, validating field names."""
    if not isinstance(payload, list):
        raise ConfigurationError(
            f"metrics payload must be a list, got {type(payload).__name__}"
        )
    known = {f.name for f in dataclasses.fields(SolutionMetrics)}
    out: List[SolutionMetrics] = []
    for entry in payload:
        if not isinstance(entry, dict):
            raise ConfigurationError(
                f"metrics entry must be an object, got {type(entry).__name__}"
            )
        unknown = sorted(set(entry) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown SolutionMetrics fields in payload: {', '.join(unknown)}"
            )
        out.append(SolutionMetrics(**entry))
    return out
