"""Shared on-disk protocol for the work-queue executor and its workers.

Both sides of the queue — the coordinator
(:class:`~repro.sim.executors.queue.WorkQueueExecutor`) and the worker
loop (:mod:`repro.sim.executors.worker`) — speak exactly the file
formats defined here, so the protocol lives in one place and cannot
drift.  All writes go through :mod:`repro.atomicio`; all result
payloads carry an embedded checksum that readers verify before trusting
a single number.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List

from repro.atomicio import payload_checksum
from repro.errors import ConfigurationError
from repro.sim.executors.base import metrics_from_payload
from repro.sim.metrics import SolutionMetrics

#: Version stamped into every task / result / error file.
QUEUE_FORMAT_VERSION = 1

#: Subdirectories making up a queue tree (creation order is irrelevant).
QUEUE_DIRS = (
    "spec",
    "tasks",
    "leases",
    "results",
    "errors",
    "expired",
    "corrupt",
)


def task_name(spec_name: str, seed: int) -> str:
    """Stable task identity: one name per (sweep spec, seed) pair."""
    return f"{spec_name}-s{seed}"


def read_json(path: Path) -> Dict[str, Any]:
    """Load a queue JSON file, normalising every decode failure.

    A torn, truncated or non-object payload raises
    :class:`~repro.errors.ConfigurationError` so callers have exactly one
    exception type meaning "this file is not trustworthy".
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable queue file {path.name}: {exc}")
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"queue file {path.name} must hold a JSON object, "
            f"got {type(payload).__name__}"
        )
    return payload


def result_payload(name: str, metrics_payload: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The checksummed result-file body for one completed task."""
    return {
        "format_version": QUEUE_FORMAT_VERSION,
        "task": name,
        "metrics": metrics_payload,
        "checksum": payload_checksum(metrics_payload),
    }


def load_result_payload(path: Path, name: str) -> List[SolutionMetrics]:
    """Decode + integrity-check one result file into metrics.

    Raises :class:`~repro.errors.ConfigurationError` on any mismatch —
    wrong version, wrong task name, missing fields, or a checksum that
    does not cover the stored metrics (torn write / bit rot).
    """
    payload = read_json(path)
    version = payload.get("format_version")
    if version != QUEUE_FORMAT_VERSION:
        raise ConfigurationError(
            f"result {path.name} has format_version {version!r}, "
            f"expected {QUEUE_FORMAT_VERSION}"
        )
    if payload.get("task") != name:
        raise ConfigurationError(
            f"result {path.name} claims task {payload.get('task')!r}, "
            f"expected {name!r}"
        )
    metrics_field = payload.get("metrics")
    stored = payload.get("checksum")
    if stored != payload_checksum(metrics_field):
        raise ConfigurationError(
            f"result {path.name} failed its integrity check "
            "(torn write or corrupted storage)"
        )
    return metrics_from_payload(metrics_field)


def quarantine_file(path: Path, corrupt_dir: Path) -> None:
    """Move a bad file aside (never delete evidence), tolerating races.

    The destination name is suffixed until free so repeated quarantines
    of the same task keep every specimen.
    """
    corrupt_dir.mkdir(parents=True, exist_ok=True)
    destination = corrupt_dir / path.name
    suffix = 0
    while destination.exists():
        suffix += 1
        destination = corrupt_dir / f"{path.name}.{suffix}"
    try:
        os.replace(path, destination)
    except OSError:
        # Someone else already moved or removed it; the goal (path gone
        # from the live tree) is met either way.
        pass
