"""In-process serial executor — the reference backend.

Every other backend's results are defined to be byte-identical to this
one's: each cell is fully self-seeding, so executing it here, in a pool
worker or on another machine draws exactly the same RNG streams.  Serial
execution is also the graceful-degradation target: when a pool or queue
reports itself broken, the runner swaps in a :class:`SerialExecutor`,
which has no machinery left to break (a cell that kills its *host*
process is precisely what the quarantine mechanism exists to stop before
this point — see ``docs/robustness.md``).

Serial waves need no trace propagation (:mod:`repro.obs.dist`): cells
run in the coordinator's own process, so seed spans land directly in
the parent trace and nothing can detach.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.scheduler import Scheduler
from repro.sim.config import SimulationConfig
from repro.sim.executors.base import (
    Cell,
    CellFailure,
    CellResult,
    WaveOutcome,
    run_one_seed,
)


class SerialExecutor:
    """Runs every cell in the calling process, one after another.

    ``timeout_s`` is accepted for protocol compatibility and ignored:
    in-process work cannot be pre-empted, so a serial wave has no hang
    protection (the trade it makes for being unbreakable).
    """

    name = "serial"

    def run_wave(
        self,
        config: SimulationConfig,
        schedulers: Sequence[Scheduler],
        cells: Sequence[Cell],
        timeout_s: Optional[float],
    ) -> WaveOutcome:
        outcome = WaveOutcome()
        for position, seed in cells:
            try:
                metrics = run_one_seed(config, schedulers, seed)
            except Exception as exc:
                outcome.failed.append(
                    CellFailure(
                        position=position,
                        seed=seed,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
            else:
                outcome.done.append(
                    CellResult(position=position, seed=seed, metrics=metrics)
                )
        return outcome

    def close(self) -> None:
        """Nothing to release."""
