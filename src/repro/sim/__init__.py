"""Scenario construction, experiment running and statistics."""

from repro.sim.config import SimulationConfig
from repro.sim.episodes import EpisodeConfig, EpisodeResult, EpisodeRunner, run_episode
from repro.sim.metrics import SolutionMetrics, solution_metrics
from repro.sim.runner import (
    ExperimentResult,
    ExperimentRunner,
    RetryPolicy,
    SeedFailure,
    SeedJournal,
    get_default_journal,
    run_schemes,
    set_default_journal,
    set_default_n_workers,
    set_default_retry,
)
from repro.sim.scenario import Scenario
from repro.sim.stats import SummaryStats, mean_confidence_interval, summarize

__all__ = [
    "EpisodeConfig",
    "EpisodeResult",
    "EpisodeRunner",
    "ExperimentResult",
    "ExperimentRunner",
    "RetryPolicy",
    "Scenario",
    "SeedFailure",
    "SeedJournal",
    "SimulationConfig",
    "SolutionMetrics",
    "SummaryStats",
    "get_default_journal",
    "mean_confidence_interval",
    "run_episode",
    "run_schemes",
    "set_default_journal",
    "set_default_n_workers",
    "set_default_retry",
    "solution_metrics",
    "summarize",
]
