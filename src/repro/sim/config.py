"""Simulation configuration with the paper's default parameters (Sec. V).

``SimulationConfig`` is a declarative description of one experiment point:
network geometry, radio parameters, compute parameters and the (homogeneous)
task population.  ``Scenario.build`` turns a config plus a seed into a
concrete random instance (user drops, shadowing draws).

Defaults reproduce Sec. V exactly:

* S = 9 hexagonal cells, 1 km inter-BS distance
* path loss 140.7 + 36.7 log10 d[km] dB, 8 dB log-normal shadowing
* P_u = 10 dBm, B = 20 MHz, sigma^2 = -100 dBm, N = 3 sub-bands
* f_s = 20 GHz, f_local = 1 GHz, kappa = 5e-27
* d_u = 420 KB, beta_time = beta_energy = 0.5, lambda_u = 1
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.units import dbm_to_watts, ghz_to_hz, kb_to_bits, megacycles_to_cycles, mhz_to_hz


@dataclass(frozen=True)
class SimulationConfig:
    """Declarative description of one simulated MEC deployment.

    All quantities are given in the paper's units and converted to SI by
    the accessor properties.
    """

    # Population / geometry.
    n_users: int = 30
    n_servers: int = 9
    inter_site_distance_km: float = 1.0
    min_bs_distance_km: float = 0.01

    # Radio.
    n_subbands: int = 3
    bandwidth_mhz: float = 20.0
    tx_power_dbm: float = 10.0
    noise_dbm: float = -100.0
    pathloss_intercept_db: float = 140.7
    pathloss_slope_db: float = 36.7
    shadowing_sigma_db: float = 8.0

    # Compute.
    server_cpu_ghz: float = 20.0
    user_cpu_ghz: float = 1.0
    kappa: float = 5e-27

    # Task population (homogeneous, as in Sec. V).
    input_kb: float = 420.0
    workload_megacycles: float = 1000.0
    beta_time: float = 0.5
    operator_weight: float = 1.0

    # Execution knobs (wall-clock only: none changes any result bit).
    #: Score annealer moves with the incremental
    #: :class:`~repro.core.delta.DeltaEvaluator` (bitwise-equal fast path).
    use_delta: bool = False
    #: Score speculative move batches with the vectorized
    #: :class:`~repro.core.batch.BatchEvaluator` (bitwise-equal fast path;
    #: mutually exclusive with ``use_delta``).
    use_batch: bool = False
    #: Moves speculatively proposed per vectorized round when
    #: ``use_batch`` is set.
    batch_size: int = 64
    #: Default process count for multi-seed runs (1 = run in-process).
    n_workers: int = 1

    # Spatial sharding (metro-scale decomposition; see docs/sharding.md).
    #: Solve via :class:`~repro.core.sharding.ShardedScheduler`: partition
    #: the topology into cell clusters, solve each independently, then
    #: reconcile boundary users.  Exact (bitwise-identical) when the
    #: partition yields one cluster; a bounded approximation otherwise.
    use_sharding: bool = False
    #: Grid-tile side for the station partition, in km.  Larger tiles
    #: mean fewer cut interference edges (smaller utility gap) but
    #: costlier per-cluster solves.
    cluster_radius_km: float = 2.0
    #: Far-field cutoff: stations beyond this distance are treated as
    #: non-interfering when computing boundary sets.  ``None`` resolves
    #: to the inter-site distance at solve time.
    interference_radius_km: Optional[float] = None
    #: Fixed-point iteration cap for the boundary-reconciliation pass
    #: (0 disables reconciliation).
    max_reconcile_rounds: int = 2

    def __post_init__(self) -> None:
        if self.n_users < 0:
            raise ConfigurationError(f"n_users must be non-negative, got {self.n_users}")
        if self.n_servers < 1:
            raise ConfigurationError(f"n_servers must be >= 1, got {self.n_servers}")
        if self.n_subbands < 1:
            raise ConfigurationError(
                f"n_subbands must be >= 1, got {self.n_subbands}"
            )
        for name in (
            "inter_site_distance_km",
            "bandwidth_mhz",
            "server_cpu_ghz",
            "user_cpu_ghz",
            "kappa",
            "input_kb",
            "workload_megacycles",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.min_bs_distance_km < 0:
            raise ConfigurationError(
                f"min_bs_distance_km must be non-negative, got {self.min_bs_distance_km}"
            )
        if self.shadowing_sigma_db < 0:
            raise ConfigurationError(
                f"shadowing_sigma_db must be non-negative, got {self.shadowing_sigma_db}"
            )
        if not 0.0 <= self.beta_time <= 1.0:
            raise ConfigurationError(
                f"beta_time must lie in [0, 1], got {self.beta_time}"
            )
        if not 0.0 < self.operator_weight <= 1.0:
            raise ConfigurationError(
                f"operator_weight must lie in (0, 1], got {self.operator_weight}"
            )
        if self.use_delta and self.use_batch:
            raise ConfigurationError(
                "use_delta and use_batch are mutually exclusive"
            )
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}"
            )
        if self.cluster_radius_km <= 0:
            raise ConfigurationError(
                f"cluster_radius_km must be positive, got {self.cluster_radius_km}"
            )
        if self.interference_radius_km is not None and self.interference_radius_km <= 0:
            raise ConfigurationError(
                "interference_radius_km must be positive, got "
                f"{self.interference_radius_km}"
            )
        if self.max_reconcile_rounds < 0:
            raise ConfigurationError(
                "max_reconcile_rounds must be non-negative, got "
                f"{self.max_reconcile_rounds}"
            )

    # --- SI accessors -----------------------------------------------------

    @property
    def bandwidth_hz(self) -> float:
        return mhz_to_hz(self.bandwidth_mhz)

    @property
    def subband_width_hz(self) -> float:
        """``W = B / N``."""
        return self.bandwidth_hz / self.n_subbands

    @property
    def tx_power_watts(self) -> float:
        return dbm_to_watts(self.tx_power_dbm)

    @property
    def noise_watts(self) -> float:
        return dbm_to_watts(self.noise_dbm)

    @property
    def server_cpu_hz(self) -> float:
        return ghz_to_hz(self.server_cpu_ghz)

    @property
    def user_cpu_hz(self) -> float:
        return ghz_to_hz(self.user_cpu_ghz)

    @property
    def input_bits(self) -> float:
        return kb_to_bits(self.input_kb)

    @property
    def workload_cycles(self) -> float:
        return megacycles_to_cycles(self.workload_megacycles)

    @property
    def beta_energy(self) -> float:
        return 1.0 - self.beta_time

    def replace(self, **changes: Any) -> "SimulationConfig":
        """A copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)


#: The confined small-network setting of Fig. 3 where exhaustive search is
#: tractable: U = 6 users, S = 4 cells, N = 2 sub-bands.
def small_network_config(**overrides: Any) -> SimulationConfig:
    """The Fig. 3 small-network configuration (exhaustive-search scale)."""
    base = dict(n_users=6, n_servers=4, n_subbands=2)
    base.update(overrides)
    return SimulationConfig(**base)
