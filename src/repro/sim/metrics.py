"""Solution-level metrics derived from a scheduler's output.

Converts a ``(scenario, ScheduleResult)`` pair into the quantities the
paper's figures report: system utility, average per-user completion time
and energy (Fig. 9), offload counts and algorithm cost (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import ScheduleResult
from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class SolutionMetrics:
    """Everything the evaluation figures need about one solution.

    Attributes
    ----------
    system_utility:
        ``J(X, F)`` (Eq. 11) under the returned allocation.
    mean_time_s / mean_energy_j:
        Average completion time / energy over *all* users, local users
        contributing their local-execution values (Fig. 9's y-axes).
    mean_offloaded_time_s / mean_offloaded_energy_j:
        Same averages restricted to offloading users (NaN if none).
    n_offloaded:
        Number of users offloading.
    evaluations:
        Objective evaluations the scheduler spent.
    wall_time_s:
        Scheduler wall-clock time (Fig. 8's y-axis).
    utility_retention:
        Achieved utility as a fraction of the fault-free plan's utility
        (1.0 on the fault-free path; see :mod:`repro.faults`).
    n_fallback:
        Users forced from a failed slot back to local execution by the
        degradation policy.
    n_churned:
        Users whose task request was withdrawn before scheduling closed.
    reschedule_wall_time_s:
        Wall-clock seconds the degradation policy spent repairing the
        plan (0.0 when no repair ran).
    """

    system_utility: float
    mean_time_s: float
    mean_energy_j: float
    mean_offloaded_time_s: float
    mean_offloaded_energy_j: float
    n_offloaded: int
    evaluations: int
    wall_time_s: float
    utility_retention: float = 1.0
    n_fallback: int = 0
    n_churned: int = 0
    reschedule_wall_time_s: float = 0.0


def solution_metrics(scenario: Scenario, result: ScheduleResult) -> SolutionMetrics:
    """Materialise :class:`SolutionMetrics` for one scheduling outcome."""
    breakdown = ObjectiveEvaluator(scenario).breakdown(
        result.decision, result.allocation
    )
    offloaded = breakdown.offloaded
    if np.any(offloaded):
        mean_off_time = float(breakdown.time_s[offloaded].mean())
        mean_off_energy = float(breakdown.energy_j[offloaded].mean())
    else:
        mean_off_time = float("nan")
        mean_off_energy = float("nan")
    return SolutionMetrics(
        system_utility=breakdown.system_utility,
        mean_time_s=float(breakdown.time_s.mean()) if scenario.n_users else 0.0,
        mean_energy_j=float(breakdown.energy_j.mean()) if scenario.n_users else 0.0,
        mean_offloaded_time_s=mean_off_time,
        mean_offloaded_energy_j=mean_off_energy,
        n_offloaded=breakdown.n_offloaded,
        evaluations=result.evaluations,
        wall_time_s=result.wall_time_s,
    )
