"""Trivial reference policies: all-local and random-feasible.

Not part of the paper's comparison set, but useful anchors: every
sensible scheduler must beat Random and be at least as good as AllLocal
(whose utility is exactly zero by Eq. 10/11).  The integration tests and
ablation benches use them as floors.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.obs.clock import Stopwatch
from repro.core.allocation import kkt_allocation
from repro.core.decision import OffloadingDecision
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import ScheduleResult
from repro.errors import ConfigurationError
from repro.sim.rng import make_rng
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


class AllLocalScheduler:
    """Every user executes locally; system utility is exactly zero."""

    name = "AllLocal"

    def schedule(
        self, scenario: "Scenario", rng: Optional[np.random.Generator] = None
    ) -> ScheduleResult:
        del rng
        watch = Stopwatch()
        evaluator = ObjectiveEvaluator(scenario)
        decision = OffloadingDecision.all_local(
            scenario.n_users, scenario.n_servers, scenario.n_subbands
        )
        utility = evaluator.evaluate(decision)
        return ScheduleResult(
            decision=decision,
            allocation=kkt_allocation(scenario, decision),
            utility=utility,
            evaluations=evaluator.evaluations,
            wall_time_s=watch.elapsed(),
        )


class RandomScheduler:
    """Best of ``samples`` uniformly random feasible decisions."""

    name = "Random"

    def __init__(self, samples: int = 1, offload_probability: float = 0.5) -> None:
        if samples < 1:
            raise ConfigurationError(f"samples must be >= 1, got {samples}")
        if not 0.0 <= offload_probability <= 1.0:
            raise ConfigurationError(
                f"offload_probability must lie in [0, 1], got {offload_probability}"
            )
        self.samples = samples
        self.offload_probability = offload_probability

    def schedule(
        self, scenario: "Scenario", rng: Optional[np.random.Generator] = None
    ) -> ScheduleResult:
        rng = rng if rng is not None else make_rng()
        watch = Stopwatch()
        evaluator = ObjectiveEvaluator(scenario)
        best = None
        best_value = -np.inf
        for _ in range(self.samples):
            candidate = OffloadingDecision.random_feasible(
                scenario.n_users,
                scenario.n_servers,
                scenario.n_subbands,
                rng,
                offload_probability=self.offload_probability,
            )
            value = evaluator.evaluate(candidate)
            if value > best_value:
                best, best_value = candidate, value
        assert best is not None
        return ScheduleResult(
            decision=best,
            allocation=kkt_allocation(scenario, best),
            utility=float(best_value),
            evaluations=evaluator.evaluations,
            wall_time_s=watch.elapsed(),
        )
