"""Greedy offloading — strongest-signal-first slot assignment.

The paper's Greedy baseline: "All permissible tasks, up to the limit set
by the base stations, are offloaded.  Users are assigned to sub-bands in a
prioritized manner, favoring those with the strongest signal strength."

Users are ranked by their best channel gain; each in turn takes the free
(server, sub-band) slot where its gain is strongest.  An offload is
"permissible" only when it benefits the system (Sec. III-A-4 requires a
positive offloading gain), so a placement that lowers the utility is
reverted and the user stays local.  Because the slot choice is fixed by
signal strength alone — never revisited, never rebalanced across servers —
the scheme trails TSAJS by a few percent everywhere (Fig. 3) and falls
behind further once users contend for slots (Fig. 4).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.obs.clock import Stopwatch
from repro.core.allocation import kkt_allocation
from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import ScheduleResult
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


class GreedyScheduler:
    """Offload-everything, strongest-signal-first baseline."""

    name = "Greedy"

    def __init__(
        self,
        evaluator_factory: Callable[["Scenario"], ObjectiveEvaluator] = ObjectiveEvaluator,
    ) -> None:
        self.evaluator_factory = evaluator_factory

    def schedule(
        self, scenario: "Scenario", rng: Optional[np.random.Generator] = None
    ) -> ScheduleResult:
        """Assign users to slots by descending signal strength."""
        del rng
        watch = Stopwatch()
        evaluator = self.evaluator_factory(scenario)
        decision = OffloadingDecision.all_local(
            scenario.n_users, scenario.n_servers, scenario.n_subbands
        )

        # Rank users by the strongest gain they see anywhere.
        best_gain = scenario.gains.reshape(scenario.n_users, -1).max(axis=1) if scenario.n_users else np.zeros(0)
        order = np.argsort(-best_gain)

        current_value = evaluator.evaluate(decision)
        for u in order:
            # Pick the strongest free slot for this user.
            best_slot = None
            best_value = -np.inf
            for s in range(scenario.n_servers):
                for j in range(scenario.n_subbands):
                    if decision.occupant_of(s, j) != LOCAL:
                        continue
                    gain = scenario.gains[u, s, j]
                    if gain > best_value:
                        best_value = gain
                        best_slot = (s, j)
            if best_slot is None:
                break  # every slot taken; remaining users stay local
            decision.assign(int(u), best_slot[0], best_slot[1])
            # "Permissible" offloads only (Sec. III-A-4): an offload that
            # lowers the system utility is not beneficial — revert it and
            # keep this user local.
            candidate_value = evaluator.evaluate(decision)
            if candidate_value > current_value:
                current_value = candidate_value
            else:
                decision.set_local(int(u))

        utility = evaluator.evaluate(decision)
        allocation = kkt_allocation(scenario, decision)
        return ScheduleResult(
            decision=decision,
            allocation=allocation,
            utility=utility,
            evaluations=evaluator.evaluations,
            wall_time_s=watch.elapsed(),
        )
