"""Genetic-algorithm scheduler for the task-offloading problem.

The paper's related-work section cites "suboptimal algorithms based on
hierarchical genetic algorithms and particle swarm optimization" [33] as
the other major metaheuristic family applied to computation offloading.
This module implements that comparison point so TSAJS can be evaluated
against a population-based search under the identical objective:

* **chromosome** — the compact assignment vectors (feasible by repair),
* **fitness** — the closed-form optimal-value function ``J*(X)``,
* **selection** — size-``k`` tournament,
* **crossover** — per-user uniform inheritance with slot-conflict repair
  (a user whose inherited slot is already taken falls back to a free slot
  of the same server, else local),
* **mutation** — one Algorithm-2 neighbourhood move per offspring with a
  configurable probability,
* **elitism** — the best individual always survives.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

import numpy as np

from repro.obs.clock import Stopwatch
from repro.core.allocation import kkt_allocation
from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import ScheduleResult
from repro.errors import ConfigurationError
from repro.sim.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


class GeneticScheduler:
    """Elitist tournament GA over feasible offloading decisions.

    Parameters
    ----------
    population_size:
        Individuals per generation.
    generations:
        Hard generation budget.
    tournament_size:
        Tournament participants per parent selection.
    mutation_probability:
        Chance an offspring receives one neighbourhood move.
    patience:
        Stop early after this many generations without improvement.
    """

    name = "GA"

    def __init__(
        self,
        population_size: int = 40,
        generations: int = 80,
        tournament_size: int = 3,
        mutation_probability: float = 0.3,
        patience: int = 20,
        neighborhood: Optional[NeighborhoodSampler] = None,
        evaluator_factory: Callable[["Scenario"], ObjectiveEvaluator] = ObjectiveEvaluator,
    ) -> None:
        if population_size < 2:
            raise ConfigurationError(
                f"population_size must be >= 2, got {population_size}"
            )
        if generations < 1:
            raise ConfigurationError(f"generations must be >= 1, got {generations}")
        if tournament_size < 1 or tournament_size > population_size:
            raise ConfigurationError(
                f"tournament_size must lie in [1, population_size], got {tournament_size}"
            )
        if not 0.0 <= mutation_probability <= 1.0:
            raise ConfigurationError(
                f"mutation_probability must lie in [0, 1], got {mutation_probability}"
            )
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        self.population_size = population_size
        self.generations = generations
        self.tournament_size = tournament_size
        self.mutation_probability = mutation_probability
        self.patience = patience
        self.neighborhood = (
            neighborhood if neighborhood is not None else NeighborhoodSampler()
        )
        self.evaluator_factory = evaluator_factory

    # --- Genetic operators ---------------------------------------------------

    def _crossover(
        self,
        parent_a: OffloadingDecision,
        parent_b: OffloadingDecision,
        rng: np.random.Generator,
    ) -> OffloadingDecision:
        """Per-user uniform crossover with slot-conflict repair."""
        n_users = parent_a.n_users
        child = OffloadingDecision.all_local(
            n_users, parent_a.n_servers, parent_a.n_channels
        )
        take_from_a = rng.random(n_users) < 0.5
        # Assign in random order so repair does not systematically favour
        # low-indexed users.
        for user in rng.permutation(n_users):
            source = parent_a if take_from_a[user] else parent_b
            server = int(source.server[user])
            channel = int(source.channel[user])
            if server == LOCAL:
                continue
            if child.occupant_of(server, channel) == LOCAL:
                child.assign(int(user), server, channel)
                continue
            # Repair: same server, any free channel; else stay local.
            free = child.free_channels(server)
            if free:
                child.assign(int(user), server, int(free[int(rng.integers(len(free)))]))
        return child

    def _tournament(
        self,
        population: List[OffloadingDecision],
        fitness: List[float],
        rng: np.random.Generator,
    ) -> OffloadingDecision:
        contenders = rng.integers(len(population), size=self.tournament_size)
        best = max(contenders, key=lambda index: fitness[index])
        return population[int(best)]

    # --- Main loop -------------------------------------------------------------

    def schedule(
        self, scenario: "Scenario", rng: Optional[np.random.Generator] = None
    ) -> ScheduleResult:
        """Evolve a population of decisions; return the fittest found."""
        rng = rng if rng is not None else make_rng()
        watch = Stopwatch()
        evaluator = self.evaluator_factory(scenario)

        if scenario.n_users == 0:
            empty = OffloadingDecision.all_local(
                0, scenario.n_servers, scenario.n_subbands
            )
            return ScheduleResult(
                decision=empty,
                allocation=kkt_allocation(scenario, empty),
                utility=evaluator.evaluate(empty),
                evaluations=evaluator.evaluations,
                wall_time_s=watch.elapsed(),
            )

        population = [
            OffloadingDecision.random_feasible(
                scenario.n_users, scenario.n_servers, scenario.n_subbands, rng
            )
            for _ in range(self.population_size)
        ]
        fitness = [evaluator.evaluate(individual) for individual in population]

        best_index = int(np.argmax(fitness))
        best = population[best_index].copy()
        best_value = fitness[best_index]
        stale = 0

        for _ in range(self.generations):
            offspring: List[OffloadingDecision] = [best.copy()]  # elitism
            while len(offspring) < self.population_size:
                parent_a = self._tournament(population, fitness, rng)
                parent_b = self._tournament(population, fitness, rng)
                child = self._crossover(parent_a, parent_b, rng)
                if rng.random() < self.mutation_probability:
                    child = self.neighborhood.propose(child, rng)
                offspring.append(child)
            population = offspring
            fitness = [evaluator.evaluate(individual) for individual in population]
            generation_best = int(np.argmax(fitness))
            if fitness[generation_best] > best_value:
                best = population[generation_best].copy()
                best_value = fitness[generation_best]
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break

        # Never return a negative-utility plan (Sec. III-A-4).
        if best_value < 0.0:
            best = OffloadingDecision.all_local(
                scenario.n_users, scenario.n_servers, scenario.n_subbands
            )
            best_value = evaluator.evaluate(best)

        return ScheduleResult(
            decision=best,
            allocation=kkt_allocation(scenario, best),
            utility=float(best_value),
            evaluations=evaluator.evaluations,
            wall_time_s=watch.elapsed(),
        )
