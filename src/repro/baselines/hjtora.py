"""hJTORA — the heuristic of Tran & Pompili (ref. [37] of the paper).

The paper uses hJTORA as its strongest polynomial-time baseline: "a novel
meta-heuristic approach ... capable of identifying a more favorable task
offloading strategy with reduced complexity", which nevertheless "cannot
guarantee the optimal solution, and its execution may still be
time-consuming" as the instance grows.

The published algorithm performs iterative *steepest-ascent* improvement
over single-user adjustments: starting from all-local, every round scores
every possible reassignment of every user — to each (server, sub-band)
slot that is free, or back to local — under the closed-form optimal-value
function ``J*(X)``, applies the single best utility-improving move, and
stops when no move improves.  Each round costs ``O(U * S * N)`` objective
evaluations, which is why its measured runtime climbs much faster with the
sub-channel count than Greedy/LocalSearch (Fig. 8).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.obs.clock import Stopwatch
from repro.core.allocation import kkt_allocation
from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import ScheduleResult
from repro.errors import ConfigurationError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


class HJtoraScheduler:
    """Steepest-ascent single-user improvement (hJTORA).

    Parameters
    ----------
    max_rounds:
        Upper bound on improvement rounds (each applies one move).  The
        search converges naturally well before this on paper-scale inputs;
        the bound guards against pathological cycling under floating-point
        ties.
    """

    name = "hJTORA"

    def __init__(
        self,
        max_rounds: int = 10_000,
        evaluator_factory: Callable[["Scenario"], ObjectiveEvaluator] = ObjectiveEvaluator,
    ) -> None:
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        self.max_rounds = max_rounds
        self.evaluator_factory = evaluator_factory

    def schedule(
        self, scenario: "Scenario", rng: Optional[np.random.Generator] = None
    ) -> ScheduleResult:
        """Run hJTORA on ``scenario``; deterministic, ``rng`` ignored."""
        del rng
        watch = Stopwatch()
        evaluator = self.evaluator_factory(scenario)
        n_users = scenario.n_users
        n_servers = scenario.n_servers
        n_channels = scenario.n_subbands

        decision = OffloadingDecision.all_local(n_users, n_servers, n_channels)
        current_value = evaluator.evaluate(decision)

        server = decision.server
        channel = decision.channel

        for _ in range(self.max_rounds):
            best_delta = 0.0
            best_move = None  # (user, server, channel) with LOCAL for revoke
            for u in range(n_users):
                old_s, old_j = int(server[u]), int(channel[u])
                # Candidate: revoke the offload.
                if old_s != LOCAL:
                    server[u], channel[u] = LOCAL, LOCAL
                    delta = evaluator.evaluate_assignment(server, channel) - current_value
                    server[u], channel[u] = old_s, old_j
                    if delta > best_delta:
                        best_delta, best_move = delta, (u, LOCAL, LOCAL)
                # Candidates: move to every free slot.
                for s in range(n_servers):
                    for j in range(n_channels):
                        if (s, j) == (old_s, old_j):
                            continue
                        if decision.occupant_of(s, j) != LOCAL:
                            continue
                        server[u], channel[u] = s, j
                        delta = (
                            evaluator.evaluate_assignment(server, channel)
                            - current_value
                        )
                        server[u], channel[u] = old_s, old_j
                        if delta > best_delta:
                            best_delta, best_move = delta, (u, s, j)
            if best_move is None:
                break
            u, s, j = best_move
            if s == LOCAL:
                decision.set_local(u)
            else:
                decision.assign(u, s, j)
            current_value += best_delta

        utility = evaluator.evaluate(decision)
        allocation = kkt_allocation(scenario, decision)
        return ScheduleResult(
            decision=decision,
            allocation=allocation,
            utility=utility,
            evaluations=evaluator.evaluations,
            wall_time_s=watch.elapsed(),
        )
