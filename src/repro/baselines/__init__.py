"""Baseline schedulers the paper compares TSAJS against (Sec. V).

* :class:`ExhaustiveScheduler` — brute-force optimum over all feasible
  decisions (only tractable on the Fig. 3 small network).
* :class:`HJtoraScheduler` — the hJTORA heuristic of Tran & Pompili
  (ref. [37]): steepest-ascent over single-user reassignments.
* :class:`GreedyScheduler` — offload everything permissible, strongest
  signal first.
* :class:`LocalSearchScheduler` — first-improvement hill climbing over
  Algorithm 2's neighbourhood.
* :class:`GeneticScheduler` — the GA metaheuristic family the paper's
  related work cites (ref. [33]); not part of the paper's comparison set
  but useful as an alternative population-based search.
* :class:`AllLocalScheduler`, :class:`RandomScheduler` — sanity anchors.
"""

from repro.baselines.exhaustive import ExhaustiveScheduler
from repro.baselines.genetic import GeneticScheduler
from repro.baselines.greedy import GreedyScheduler
from repro.baselines.hjtora import HJtoraScheduler
from repro.baselines.local_search import LocalSearchScheduler
from repro.baselines.trivial import AllLocalScheduler, RandomScheduler

__all__ = [
    "AllLocalScheduler",
    "ExhaustiveScheduler",
    "GeneticScheduler",
    "GreedyScheduler",
    "HJtoraScheduler",
    "LocalSearchScheduler",
    "RandomScheduler",
]
