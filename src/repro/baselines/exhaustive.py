"""Exhaustive (brute-force) optimal search.

Enumerates every feasible offloading decision — each user is either local
or holds one of the free (server, sub-band) slots — by depth-first search
and returns the utility-maximising one.  The search space contains up to
``(S*N + 1)^U`` candidates before slot-conflict pruning, so the method is
"limited to a confined network setting" (Sec. V): the Fig. 3 configuration
of U = 6, S = 4, N = 2 enumerates roughly 9.3e4 feasible decisions.

The DFS mutates a single pair of assignment vectors in place, evaluating
the closed-form objective only at the leaves; feasibility is maintained by
a free-slot bookkeeping array, so no infeasible branch is ever expanded.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.obs.clock import Stopwatch
from repro.core.allocation import kkt_allocation
from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import ScheduleResult
from repro.errors import ConfigurationError, SolverError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


class ExhaustiveScheduler:
    """Optimal JTORA solver by exhaustive enumeration.

    Parameters
    ----------
    max_leaves:
        Safety cap on the number of evaluated leaf decisions; exceeding it
        raises :class:`SolverError` rather than hanging for hours.
    """

    name = "Exhaustive"

    def __init__(
        self,
        max_leaves: int = 5_000_000,
        evaluator_factory: Callable[["Scenario"], ObjectiveEvaluator] = ObjectiveEvaluator,
    ) -> None:
        if max_leaves < 1:
            raise ConfigurationError(f"max_leaves must be >= 1, got {max_leaves}")
        self.max_leaves = max_leaves
        self.evaluator_factory = evaluator_factory

    def schedule(
        self, scenario: "Scenario", rng: Optional[np.random.Generator] = None
    ) -> ScheduleResult:
        """Enumerate all feasible decisions; return the utility maximiser.

        ``rng`` is accepted for interface compatibility and ignored — the
        search is deterministic.
        """
        del rng
        watch = Stopwatch()
        evaluator = self.evaluator_factory(scenario)
        n_users = scenario.n_users
        n_servers = scenario.n_servers
        n_channels = scenario.n_subbands

        server = np.full(n_users, LOCAL, dtype=np.int64)
        channel = np.full(n_users, LOCAL, dtype=np.int64)
        slot_free = np.ones((n_servers, n_channels), dtype=bool)

        best_value = -np.inf
        best_server = server.copy()
        best_channel = channel.copy()
        leaves = 0

        def dfs(user: int) -> None:
            nonlocal best_value, best_server, best_channel, leaves
            if user == n_users:
                leaves += 1
                if leaves > self.max_leaves:
                    raise SolverError(
                        f"exhaustive search exceeded max_leaves={self.max_leaves}; "
                        "use a smaller network or a heuristic scheduler"
                    )
                value = evaluator.evaluate_assignment(server, channel)
                if value > best_value:
                    best_value = value
                    best_server = server.copy()
                    best_channel = channel.copy()
                return
            # Option 1: execute locally.
            dfs(user + 1)
            # Option 2: every currently-free slot.
            for s in range(n_servers):
                for j in range(n_channels):
                    if not slot_free[s, j]:
                        continue
                    slot_free[s, j] = False
                    server[user], channel[user] = s, j
                    dfs(user + 1)
                    server[user], channel[user] = LOCAL, LOCAL
                    slot_free[s, j] = True

        dfs(0)

        decision = OffloadingDecision(
            n_users, n_servers, n_channels, best_server, best_channel
        )
        allocation = kkt_allocation(scenario, decision)
        return ScheduleResult(
            decision=decision,
            allocation=allocation,
            utility=float(best_value),
            evaluations=evaluator.evaluations,
            wall_time_s=watch.elapsed(),
        )
