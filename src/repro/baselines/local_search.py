"""LocalSearch — first-improvement hill climbing.

The paper's LocalSearch baseline: "Continuously search for neighboring
states of the current state when users offload tasks, and accept better
neighboring states to gradually improve the quality of the solution.  The
search stops when the algorithm converges or reaches the maximum number of
iterations."

It reuses Algorithm 2's neighbourhood but, unlike TSAJS, never accepts a
worsening move — so it converges quickly to the nearest local optimum and
its runtime stays flat as the search space grows (Fig. 8), at the price of
a lower utility (Fig. 3).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.obs.clock import Stopwatch
from repro.core.allocation import kkt_allocation
from repro.core.decision import OffloadingDecision
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import ScheduleResult
from repro.errors import ConfigurationError
from repro.sim.rng import make_rng
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.sim.scenario import Scenario


class LocalSearchScheduler:
    """Hill climbing over Algorithm 2's neighbourhood.

    Parameters
    ----------
    max_iterations:
        Hard iteration budget.
    patience:
        Stop after this many consecutive non-improving proposals (the
        "converged" criterion).
    initial_offload_probability:
        Density of the random feasible initial solution.  Defaults to 0
        (start from all-local): a first-improvement climber cannot escape
        the deeply negative region a dense random start lands in on large
        sub-channel grids, whereas growing the offload set move by move
        matches the baseline's intended "gradually improve" behaviour.
    """

    name = "LocalSearch"

    def __init__(
        self,
        max_iterations: int = 5000,
        patience: int = 300,
        initial_offload_probability: float = 0.0,
        neighborhood: Optional[NeighborhoodSampler] = None,
        evaluator_factory: Callable[["Scenario"], ObjectiveEvaluator] = ObjectiveEvaluator,
    ) -> None:
        if max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        if not 0.0 <= initial_offload_probability <= 1.0:
            raise ConfigurationError(
                "initial_offload_probability must lie in [0, 1], got "
                f"{initial_offload_probability}"
            )
        self.max_iterations = max_iterations
        self.patience = patience
        self.initial_offload_probability = initial_offload_probability
        self.neighborhood = (
            neighborhood if neighborhood is not None else NeighborhoodSampler()
        )
        self.evaluator_factory = evaluator_factory

    def schedule(
        self, scenario: "Scenario", rng: Optional[np.random.Generator] = None
    ) -> ScheduleResult:
        """First-improvement hill climbing from a random feasible start."""
        rng = rng if rng is not None else make_rng()
        watch = Stopwatch()
        evaluator = self.evaluator_factory(scenario)

        if scenario.n_users == 0:
            empty = OffloadingDecision.all_local(
                0, scenario.n_servers, scenario.n_subbands
            )
            return ScheduleResult(
                decision=empty,
                allocation=kkt_allocation(scenario, empty),
                utility=evaluator.evaluate(empty),
                evaluations=evaluator.evaluations,
                wall_time_s=watch.elapsed(),
            )

        current = OffloadingDecision.random_feasible(
            scenario.n_users,
            scenario.n_servers,
            scenario.n_subbands,
            rng,
            offload_probability=self.initial_offload_probability,
        )
        current_value = evaluator.evaluate(current)
        stale = 0
        for _ in range(self.max_iterations):
            candidate = self.neighborhood.propose(current, rng)
            candidate_value = evaluator.evaluate(candidate)
            if candidate_value > current_value:
                current, current_value = candidate, candidate_value
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break

        # Prefer all-local over a negative-utility plan (Sec. III-A-4).
        if current_value < 0.0:
            current = OffloadingDecision.all_local(
                scenario.n_users, scenario.n_servers, scenario.n_subbands
            )
            current_value = evaluator.evaluate(current)

        allocation = kkt_allocation(scenario, current)
        return ScheduleResult(
            decision=current,
            allocation=allocation,
            utility=current_value,
            evaluations=evaluator.evaluations,
            wall_time_s=watch.elapsed(),
        )
