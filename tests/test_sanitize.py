"""Tests for the runtime determinism sanitizer (repro.sanitize)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeterminismViolation
from repro.experiments.persistence import SweepJournal
from repro.experiments.schemes import build_schemes
from repro.sanitize import (
    DeterminismSanitizer,
    SanitizedGenerator,
    assert_ledgers_match,
    sanitized,
    state_digest,
)
from repro.sim import rng as rng_module
from repro.sim.config import SimulationConfig
from repro.sim.rng import child_rng, make_rng
from repro.sim.runner import run_schemes
from repro.sim.scenario import Scenario


class TestSanitizedGenerator:
    def test_draws_are_counted(self):
        sanitizer = DeterminismSanitizer()
        proxy = sanitizer.wrap(np.random.default_rng(0), "t")
        proxy.random()
        proxy.integers(0, 10, size=5)
        proxy.normal()
        assert sanitizer.ledgers["t"].draws == 3

    def test_values_match_unwrapped_generator(self):
        sanitizer = DeterminismSanitizer()
        proxy = sanitizer.wrap(np.random.default_rng(42), "t")
        plain = np.random.default_rng(42)
        assert proxy.random() == plain.random()
        assert np.array_equal(proxy.integers(0, 99, size=8), plain.integers(0, 99, size=8))

    def test_spawn_children_are_ledgered(self):
        sanitizer = DeterminismSanitizer()
        proxy = sanitizer.wrap(np.random.default_rng(0), "root")
        children = proxy.spawn(3)
        assert all(isinstance(c, SanitizedGenerator) for c in children)
        children[1].random()
        assert sanitizer.ledgers["root/spawn1"].draws == 1
        assert sanitizer.ledgers["root/spawn0"].draws == 0
        # spawn itself is bookkeeping, not a draw
        assert sanitizer.ledgers["root"].draws == 0

    def test_bit_generator_passthrough_supports_rewind(self):
        sanitizer = DeterminismSanitizer()
        proxy = sanitizer.wrap(np.random.default_rng(7), "t")
        saved = proxy.bit_generator.state
        before = state_digest(proxy.bit_generator)
        proxy.random()
        assert state_digest(proxy.bit_generator) != before
        proxy.bit_generator.state = saved
        assert state_digest(proxy.bit_generator) == before
        # The rewind advanced no ledger, only the draw did.
        assert sanitizer.ledgers["t"].draws == 1

    def test_double_wrap_is_idempotent(self):
        sanitizer = DeterminismSanitizer()
        proxy = sanitizer.wrap(np.random.default_rng(0), "t")
        assert sanitizer.wrap(proxy, "t") is proxy

    def test_same_label_reuses_ledger(self):
        sanitizer = DeterminismSanitizer()
        first = sanitizer.wrap(np.random.default_rng(0), "t")
        first.random()
        second = sanitizer.wrap(np.random.default_rng(0), "t")
        second.random()
        assert sanitizer.ledgers["t"].draws == 2


class TestLedgerComparison:
    def _snapshot_after(self, draws):
        sanitizer = DeterminismSanitizer()
        proxy = sanitizer.wrap(np.random.default_rng(3), "s")
        for _ in range(draws):
            proxy.random()
        sanitizer.checkpoint()
        return sanitizer.snapshot()

    def test_identical_replays_match(self):
        assert_ledgers_match(
            self._snapshot_after(5), self._snapshot_after(5), compare_draws=True
        )

    def test_state_divergence_raises(self):
        with pytest.raises(DeterminismViolation, match="final state"):
            assert_ledgers_match(self._snapshot_after(5), self._snapshot_after(6))

    def test_missing_stream_raises(self):
        reference = self._snapshot_after(2)
        with pytest.raises(DeterminismViolation, match="missing"):
            assert_ledgers_match(reference, {})

    def test_extra_stream_raises(self):
        candidate = self._snapshot_after(2)
        with pytest.raises(DeterminismViolation, match="unexpected"):
            assert_ledgers_match({}, candidate)

    def test_draw_count_divergence_with_equal_states(self):
        # Draw-and-rewind: state identical, counts differ.
        def run(extra_rewound):
            sanitizer = DeterminismSanitizer()
            proxy = sanitizer.wrap(np.random.default_rng(9), "s")
            proxy.random()
            if extra_rewound:
                saved = proxy.bit_generator.state
                proxy.random()
                proxy.bit_generator.state = saved
            return sanitizer.snapshot()

        reference, candidate = run(False), run(True)
        assert_ledgers_match(reference, candidate)  # digest-only: fine
        with pytest.raises(DeterminismViolation, match="draw count"):
            assert_ledgers_match(reference, candidate, compare_draws=True)

    def test_checkpoint_sequence_divergence_raises(self):
        def run(checkpoint_midway):
            sanitizer = DeterminismSanitizer()
            proxy = sanitizer.wrap(np.random.default_rng(4), "s")
            proxy.random()
            if checkpoint_midway:
                sanitizer.checkpoint()
            proxy.random()
            saved = proxy.bit_generator.state
            proxy.bit_generator.state = saved
            return sanitizer.snapshot()

        with pytest.raises(DeterminismViolation, match="checkpoint"):
            assert_ledgers_match(run(True), run(False))


class TestObserverSeam:
    def test_context_manager_installs_and_restores(self):
        assert rng_module._STREAM_OBSERVER is None
        with sanitized() as sanitizer:
            assert rng_module._STREAM_OBSERVER is not None
            rng = make_rng(5)
            assert isinstance(rng, SanitizedGenerator)
            rng.random()
        assert rng_module._STREAM_OBSERVER is None
        assert sanitizer.ledgers["root:5"].draws == 1
        # Outside the block, factories hand back plain Generators again.
        assert isinstance(make_rng(5), np.random.Generator)

    def test_child_rng_labels(self):
        with sanitized() as sanitizer:
            child_rng(3, 100)
        assert "child:3:100" in sanitizer.ledgers

    def test_nested_sanitizers_are_independent(self):
        with sanitized() as outer:
            make_rng(1).random()
            with sanitized() as inner:
                make_rng(2).random()
            make_rng(1).random()
        assert set(outer.ledgers) == {"root:1"}
        assert outer.ledgers["root:1"].draws == 2
        assert set(inner.ledgers) == {"root:2"}


def _solve_snapshot(seed, use_delta, use_batch):
    config = SimulationConfig(n_users=8, n_servers=3)
    with sanitized() as sanitizer:
        scenario = Scenario.build(config, seed=seed)
        schedulers = build_schemes(
            ["TSAJS"],
            quick=True,
            use_delta=use_delta,
            use_batch=use_batch,
            batch_size=16,
        )
        utilities = {}
        for index, scheduler in enumerate(schedulers):
            rng = child_rng(seed, 100 + index)
            result = scheduler.schedule(scenario, rng)
            utilities[scheduler.name] = repr(result.utility)
    return sanitizer.snapshot(), utilities


class TestTriModeSolve:
    def test_scalar_delta_batch_ledgers_agree(self):
        scalar, scalar_util = _solve_snapshot(11, False, False)
        delta, delta_util = _solve_snapshot(11, True, False)
        batch, batch_util = _solve_snapshot(11, False, True)
        # Scalar vs delta: identical draw-for-draw.
        assert_ledgers_match(scalar, delta, compare_draws=True, context="delta")
        # Batch draws-and-rewinds: states must match, counts may not.
        assert_ledgers_match(scalar, batch, context="batch")
        assert scalar_util == delta_util == batch_util

    def test_different_seeds_diverge(self):
        scalar, _ = _solve_snapshot(11, False, False)
        other, _ = _solve_snapshot(12, False, False)
        with pytest.raises(DeterminismViolation):
            assert_ledgers_match(scalar, other)


class TestJournalResume:
    SEEDS = [1, 2, 3, 4]

    def _config(self):
        return SimulationConfig(n_users=6, n_servers=2)

    def _schedulers(self):
        return build_schemes(["Greedy"], quick=True)

    def test_resumed_sweep_matches_fresh(self, tmp_path):
        config = self._config()
        with sanitized() as fresh:
            fresh_result = run_schemes(
                config, self._schedulers(), self.SEEDS, n_jobs=1
            )

        # Interrupted run: the first two seeds land in the journal...
        path = tmp_path / "sweep.jsonl"
        first_half = SweepJournal(path)
        run_schemes(
            config,
            self._schedulers(),
            self.SEEDS[:2],
            n_jobs=1,
            journal=first_half,
        )
        # ...then the resumed process loads the journal and only
        # computes (and draws for) the remaining seeds.
        with sanitized() as resumed:
            resumed_result = run_schemes(
                config,
                self._schedulers(),
                self.SEEDS,
                n_jobs=1,
                journal=SweepJournal(path, resume=True),
            )

        fresh_snapshot = fresh.snapshot()
        resumed_snapshot = resumed.snapshot()
        # Only seeds 3 and 4 (scenario streams 0-1, scheduler stream
        # 100) may have been re-drawn on the resumed run.
        expected = {
            f"child:{seed}:{stream}"
            for seed in (3, 4)
            for stream in (0, 1, 100)
        }
        assert set(resumed_snapshot) == expected
        for label, account in resumed_snapshot.items():
            assert account["state"] == fresh_snapshot[label]["state"]
            assert account["draws"] == fresh_snapshot[label]["draws"]
        # And the journal-backed metrics are bitwise the fresh ones.
        assert (
            resumed_result.utilities("Greedy")
            == fresh_result.utilities("Greedy")
        )
