"""Bounds checks tying the sharding radii to path-loss validity."""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ConfigurationError
from repro.net.pathloss import UrbanMacroPathLoss
from repro.net.topology import Topology
from repro.sim.config import SimulationConfig
from repro.sim.validation import (
    validate_sharding_config,
    validate_sharding_geometry,
)

CONFIG = SimulationConfig()
PATHLOSS = UrbanMacroPathLoss()


def _geometry(cluster_km, interference_km, topology=None):
    return validate_sharding_geometry(
        cluster_km,
        interference_km,
        tx_power_watts=CONFIG.tx_power_watts,
        noise_watts=CONFIG.noise_watts,
        pathloss=PATHLOSS,
        topology=topology,
    )


def test_nonpositive_radii_rejected():
    with pytest.raises(ConfigurationError):
        _geometry(0.0, 1.0)
    with pytest.raises(ConfigurationError):
        _geometry(-1.0, 1.0)
    with pytest.raises(ConfigurationError):
        _geometry(1.0, 0.0)
    with pytest.raises(ConfigurationError):
        _geometry(1.0, -0.5)


def test_config_level_rejection():
    # The dataclass itself refuses to construct invalid radii.
    with pytest.raises(ConfigurationError):
        SimulationConfig(cluster_radius_km=0.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(interference_radius_km=-1.0)
    with pytest.raises(ConfigurationError):
        SimulationConfig(max_reconcile_rounds=-1)


def test_paper_defaults_are_clean():
    """U=30/S=9/1 km spacing: received power at the 1 km cutoff sits
    ~30 dB below the noise floor, so no hazard fires."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        messages = _geometry(2.0, 1.0)
    assert messages == []


def test_farfield_cutoff_warning_at_short_radius():
    """At 0.1 km the mean received power exceeds the noise floor, so
    the neglected interferers are *not* negligible."""
    with pytest.warns(UserWarning, match="far-field cutoff"):
        messages = _geometry(2.0, 0.1)
    assert any("far-field" in m for m in messages)


def test_cluster_smaller_than_cutoff_warning():
    with pytest.warns(UserWarning, match="cluster diameter"):
        messages = _geometry(0.5, 1.0)
    assert any("cluster_radius_km" in m for m in messages)


def test_deployment_fits_inside_radius_warning():
    topology = Topology.hexagonal(4, inter_site_distance_km=0.5)
    with pytest.warns(UserWarning, match="extent"):
        messages = _geometry(2.0, 5.0, topology=topology)
    assert any("degenerates" in m for m in messages)


def test_config_driver_resolves_none_to_inter_site_distance():
    """``interference_radius_km=None`` must validate against the
    inter-site distance, matching the scheduler's solve-time default."""
    config = SimulationConfig(cluster_radius_km=2.0, interference_radius_km=None)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert validate_sharding_config(config) == []
    tight = SimulationConfig(
        inter_site_distance_km=0.1,
        cluster_radius_km=2.0,
        interference_radius_km=None,
    )
    with pytest.warns(UserWarning, match="far-field cutoff"):
        validate_sharding_config(tight)


def test_config_driver_passes_topology_through():
    config = SimulationConfig(cluster_radius_km=2.0, interference_radius_km=5.0)
    topology = Topology.hexagonal(config.n_servers)
    with pytest.warns(UserWarning):
        messages = validate_sharding_config(config, topology)
    assert any("extent" in m for m in messages)
