"""Tests for scenario assembly and its derived arrays."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.scenario import Scenario
from tests.conftest import make_scenario


class TestBuild:
    def test_shapes(self):
        config = SimulationConfig(n_users=12, n_servers=4, n_subbands=3)
        scenario = Scenario.build(config, seed=0)
        assert scenario.n_users == 12
        assert scenario.n_servers == 4
        assert scenario.n_subbands == 3
        assert scenario.gains.shape == (12, 4, 3)
        assert scenario.user_positions.shape == (12, 2)

    def test_reproducible(self):
        config = SimulationConfig(n_users=6)
        a = Scenario.build(config, seed=3)
        b = Scenario.build(config, seed=3)
        np.testing.assert_array_equal(a.gains, b.gains)
        np.testing.assert_array_equal(a.user_positions, b.user_positions)

    def test_different_seeds_differ(self):
        config = SimulationConfig(n_users=6)
        a = Scenario.build(config, seed=3)
        b = Scenario.build(config, seed=4)
        assert not np.array_equal(a.gains, b.gains)

    def test_gains_positive(self):
        scenario = Scenario.build(SimulationConfig(n_users=20), seed=1)
        assert np.all(scenario.gains > 0.0)

    def test_zero_users(self):
        scenario = Scenario.build(SimulationConfig(n_users=0), seed=0)
        assert scenario.n_users == 0
        assert scenario.phi.shape == (0,)

    def test_population_matches_config(self):
        config = SimulationConfig(n_users=5, beta_time=0.7, operator_weight=0.5)
        scenario = Scenario.build(config, seed=0)
        np.testing.assert_allclose(scenario.beta_time, np.full(5, 0.7))
        np.testing.assert_allclose(scenario.beta_energy, np.full(5, 0.3))
        np.testing.assert_allclose(scenario.operator_weight, np.full(5, 0.5))
        np.testing.assert_allclose(scenario.server_cpu_hz, np.full(9, 20e9))


class TestDerivedArrays:
    def test_local_time_and_energy(self, tiny_scenario):
        # cycles=1e9, cpu=1e9 -> 1 s; kappa=5e-27 -> 5 J.
        np.testing.assert_allclose(tiny_scenario.local_time_s, np.ones(4))
        np.testing.assert_allclose(tiny_scenario.local_energy_j, np.full(4, 5.0))

    def test_phi_formula(self, tiny_scenario):
        # phi = lam * beta_t * d / (t_local * W); W = 20e6/2 = 1e7.
        expected = 1.0 * 0.5 * 1e6 / (1.0 * 1e7)
        np.testing.assert_allclose(tiny_scenario.phi, np.full(4, expected))

    def test_psi_formula(self, tiny_scenario):
        # psi = lam * beta_e * d / (E_local * W).
        expected = 1.0 * 0.5 * 1e6 / (5.0 * 1e7)
        np.testing.assert_allclose(tiny_scenario.psi, np.full(4, expected))

    def test_eta_formula(self, tiny_scenario):
        # eta = lam * beta_t * f_local = 0.5e9 (the paper's eta_u).
        np.testing.assert_allclose(tiny_scenario.eta, np.full(4, 0.5e9))
        np.testing.assert_allclose(
            tiny_scenario.sqrt_eta, np.sqrt(np.full(4, 0.5e9))
        )

    def test_max_offloaders(self, tiny_scenario):
        assert tiny_scenario.max_offloaders == 4  # 2 servers x 2 bands

    def test_subband_width(self, tiny_scenario):
        assert tiny_scenario.subband_width_hz == pytest.approx(1e7)


class TestFromParts:
    def test_rejects_gain_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            make_scenario(n_users=3, gains=np.full((2, 2, 2), 1e-9))

    def test_rejects_nonpositive_gains(self):
        gains = np.full((4, 2, 2), 1e-9)
        gains[0, 0, 0] = 0.0
        with pytest.raises(ConfigurationError):
            make_scenario(gains=gains)

    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ConfigurationError):
            make_scenario(noise_watts=0.0)

    def test_rejects_2d_gains(self):
        from repro.tasks.device import UserDevice
        from repro.tasks.server import MecServer
        from repro.tasks.task import Task

        users = [
            UserDevice(
                task=Task(input_bits=1e6, cycles=1e9),
                cpu_hz=1e9,
                tx_power_watts=0.01,
                kappa=5e-27,
            )
        ]
        with pytest.raises(ConfigurationError):
            Scenario.from_parts(
                users=users,
                servers=[MecServer(cpu_hz=20e9)],
                gains=np.ones((1, 1)),
                total_bandwidth_hz=20e6,
                noise_watts=1e-13,
            )

    def test_heterogeneous_arrays(self):
        from repro.tasks.device import UserDevice
        from repro.tasks.server import MecServer
        from repro.tasks.task import Task

        users = [
            UserDevice(
                task=Task(input_bits=1e6, cycles=1e9),
                cpu_hz=1e9,
                tx_power_watts=0.01,
                kappa=5e-27,
                beta_time=0.2,
                beta_energy=0.8,
            ),
            UserDevice(
                task=Task(input_bits=2e6, cycles=3e9),
                cpu_hz=2e9,
                tx_power_watts=0.02,
                kappa=5e-27,
                beta_time=0.9,
                beta_energy=0.1,
                operator_weight=0.4,
            ),
        ]
        servers = [MecServer(cpu_hz=10e9), MecServer(cpu_hz=30e9)]
        scenario = Scenario.from_parts(
            users=users,
            servers=servers,
            gains=np.full((2, 2, 1), 1e-9),
            total_bandwidth_hz=20e6,
            noise_watts=1e-13,
        )
        np.testing.assert_allclose(scenario.input_bits, [1e6, 2e6])
        np.testing.assert_allclose(scenario.cycles, [1e9, 3e9])
        np.testing.assert_allclose(scenario.user_cpu_hz, [1e9, 2e9])
        np.testing.assert_allclose(scenario.beta_time, [0.2, 0.9])
        np.testing.assert_allclose(scenario.operator_weight, [1.0, 0.4])
        np.testing.assert_allclose(scenario.server_cpu_hz, [10e9, 30e9])
        # eta for user 1: 0.4 * 0.9 * 2e9.
        assert scenario.eta[1] == pytest.approx(0.4 * 0.9 * 2e9)
