"""Tests for channel-gain generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.channel import ChannelModel
from repro.net.pathloss import LogNormalShadowing, UrbanMacroPathLoss
from repro.net.topology import Topology


@pytest.fixture
def topo():
    return Topology.hexagonal(4, 1.0)


@pytest.fixture
def positions(topo, rng):
    return topo.place_users(10, rng)


class TestChannelModel:
    def test_gain_tensor_shape(self, topo, positions, rng):
        model = ChannelModel()
        gains = model.gains(topo, positions, n_subbands=3, rng=rng)
        assert gains.shape == (10, 4, 3)

    def test_gains_positive(self, topo, positions, rng):
        gains = ChannelModel().gains(topo, positions, 3, rng)
        assert np.all(gains > 0.0)

    def test_frequency_flat_by_default(self, topo, positions, rng):
        gains = ChannelModel().gains(topo, positions, 4, rng)
        for j in range(1, 4):
            np.testing.assert_array_equal(gains[:, :, j], gains[:, :, 0])

    def test_per_band_jitter_breaks_flatness(self, topo, positions, rng):
        model = ChannelModel(per_band_sigma_db=3.0)
        gains = model.gains(topo, positions, 4, rng)
        assert not np.array_equal(gains[:, :, 0], gains[:, :, 1])

    def test_no_shadowing_matches_pathloss_exactly(self, topo, positions, rng):
        model = ChannelModel(shadowing=LogNormalShadowing(sigma_db=0.0))
        gains = model.gains(topo, positions, 1, rng)
        expected = UrbanMacroPathLoss().gain_linear(topo.distances_km(positions))
        np.testing.assert_allclose(gains[:, :, 0], expected)

    def test_link_gains_shape(self, topo, positions, rng):
        link = ChannelModel().link_gains(topo, positions, rng)
        assert link.shape == (10, 4)

    def test_nearer_station_stronger_without_shadowing(self, topo, rng):
        model = ChannelModel(shadowing=LogNormalShadowing(sigma_db=0.0))
        # A user basically on top of station 0.
        user = topo.bs_positions[0:1] + np.array([[0.01, 0.0]])
        gains = model.link_gains(topo, user, rng)
        assert gains[0, 0] == gains[0].max()

    def test_rejects_zero_subbands(self, topo, positions, rng):
        with pytest.raises(ConfigurationError):
            ChannelModel().gains(topo, positions, 0, rng)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ConfigurationError):
            ChannelModel(per_band_sigma_db=-1.0)

    def test_reproducible(self, topo, positions):
        model = ChannelModel()
        a = model.gains(topo, positions, 2, np.random.default_rng(5))
        b = model.gains(topo, positions, 2, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
