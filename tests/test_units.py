"""Unit-conversion tests for :mod:`repro.units`."""

import math

import pytest

from repro import units


class TestDbmWatts:
    def test_zero_dbm_is_one_milliwatt(self):
        assert units.dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_ten_dbm_is_ten_milliwatts(self):
        assert units.dbm_to_watts(10.0) == pytest.approx(0.01)

    def test_thirty_dbm_is_one_watt(self):
        assert units.dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_minus_100_dbm_is_paper_noise_floor(self):
        assert units.dbm_to_watts(-100.0) == pytest.approx(1e-13)

    def test_watts_to_dbm_roundtrip(self):
        for dbm in (-120.0, -30.0, 0.0, 10.0, 46.0):
            assert units.watts_to_dbm(units.dbm_to_watts(dbm)) == pytest.approx(dbm)

    def test_watts_to_dbm_rejects_zero(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(0.0)

    def test_watts_to_dbm_rejects_negative(self):
        with pytest.raises(ValueError):
            units.watts_to_dbm(-1.0)


class TestDbLinear:
    def test_zero_db_is_unity(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)

    def test_three_db_is_about_double(self):
        assert units.db_to_linear(3.0) == pytest.approx(2.0, rel=1e-2)

    def test_negative_db_attenuates(self):
        assert units.db_to_linear(-10.0) == pytest.approx(0.1)

    def test_linear_to_db_roundtrip(self):
        for db in (-80.0, -3.0, 0.0, 20.0):
            assert units.linear_to_db(units.db_to_linear(db)) == pytest.approx(db)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-5.0)


class TestDataAndCompute:
    def test_kb_to_bits_uses_1024(self):
        assert units.kb_to_bits(1.0) == 8192

    def test_paper_task_size(self):
        # The paper's d_u = 420 KB.
        assert units.kb_to_bits(420.0) == pytest.approx(3_440_640)

    def test_megacycles(self):
        assert units.megacycles_to_cycles(1000.0) == pytest.approx(1e9)

    def test_ghz(self):
        assert units.ghz_to_hz(20.0) == pytest.approx(2e10)

    def test_mhz(self):
        assert units.mhz_to_hz(20.0) == pytest.approx(2e7)

    def test_constants_consistency(self):
        assert units.BITS_PER_MB == 1024 * units.BITS_PER_KB
        assert math.isclose(units.HZ_PER_GHZ / units.HZ_PER_MHZ, 1000.0)
