"""Tests for end-to-end feasibility validation."""

import numpy as np
import pytest

from repro.core.allocation import kkt_allocation
from repro.core.decision import OffloadingDecision
from repro.core.scheduler import ScheduleResult
from repro.errors import InfeasibleAllocationError, InfeasibleDecisionError
from repro.sim.validation import (
    is_feasible_result,
    validate_allocation,
    validate_decision,
    validate_result,
)


def make_result(scenario, decision, allocation=None):
    if allocation is None:
        allocation = kkt_allocation(scenario, decision)
    return ScheduleResult(
        decision=decision,
        allocation=allocation,
        utility=0.0,
        evaluations=0,
        wall_time_s=0.0,
    )


class TestValidateDecision:
    def test_accepts_feasible(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        decision.assign(0, 0, 0)
        validate_decision(tiny_scenario, decision)

    def test_rejects_dimension_mismatch(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 3, 2)
        with pytest.raises(InfeasibleDecisionError):
            validate_decision(tiny_scenario, decision)

    def test_rejects_wrong_user_count(self, tiny_scenario):
        decision = OffloadingDecision.all_local(5, 2, 2)
        with pytest.raises(InfeasibleDecisionError):
            validate_decision(tiny_scenario, decision)


class TestValidateAllocation:
    def test_accepts_kkt(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        decision.assign(0, 0, 0)
        decision.assign(1, 0, 1)
        validate_allocation(
            tiny_scenario, decision, kkt_allocation(tiny_scenario, decision)
        )

    def test_rejects_wrong_shape(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        with pytest.raises(InfeasibleAllocationError):
            validate_allocation(tiny_scenario, decision, np.zeros((3, 2)))

    def test_rejects_negative_share(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        decision.assign(0, 0, 0)
        allocation = kkt_allocation(tiny_scenario, decision)
        allocation[1, 1] = -1.0
        with pytest.raises(InfeasibleAllocationError):
            validate_allocation(tiny_scenario, decision, allocation)

    def test_rejects_over_capacity(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        decision.assign(0, 0, 0)
        allocation = np.zeros((4, 2))
        allocation[0, 0] = 21e9
        with pytest.raises(InfeasibleAllocationError):
            validate_allocation(tiny_scenario, decision, allocation)

    def test_rejects_unserved_attached_user(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        decision.assign(0, 0, 0)
        with pytest.raises(InfeasibleAllocationError):
            validate_allocation(tiny_scenario, decision, np.zeros((4, 2)))

    def test_rejects_share_for_detached_user(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        allocation = np.zeros((4, 2))
        allocation[2, 1] = 1e9
        with pytest.raises(InfeasibleAllocationError):
            validate_allocation(tiny_scenario, decision, allocation)


class TestValidateResult:
    def test_accepts_consistent_result(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        decision.assign(2, 1, 0)
        validate_result(tiny_scenario, make_result(tiny_scenario, decision))

    def test_is_feasible_result_true(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        assert is_feasible_result(tiny_scenario, make_result(tiny_scenario, decision))

    def test_is_feasible_result_false(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        decision.assign(0, 0, 0)
        bad = np.zeros((4, 2))
        assert not is_feasible_result(
            tiny_scenario, make_result(tiny_scenario, decision, allocation=bad)
        )
