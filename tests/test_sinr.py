"""Hand-computed SINR / rate tests for Eq. (3)-(4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.sinr import LOCAL, compute_link_stats, compute_rates

NOISE = 1e-13
WIDTH = 1e7
POWER = 0.01


def stats_for(gains, server, channel, powers=None):
    gains = np.asarray(gains, dtype=float)
    n_users = gains.shape[0]
    if powers is None:
        powers = np.full(n_users, POWER)
    return compute_link_stats(
        gains,
        powers,
        NOISE,
        WIDTH,
        np.asarray(server, dtype=np.int64),
        np.asarray(channel, dtype=np.int64),
    )


class TestSingleUser:
    def test_interference_free_sinr(self):
        gains = np.full((1, 2, 2), 1e-9)
        stats = stats_for(gains, [0], [0])
        assert stats.sinr[0] == pytest.approx(POWER * 1e-9 / NOISE)

    def test_rate_follows_shannon(self):
        gains = np.full((1, 1, 1), 1e-9)
        stats = stats_for(gains, [0], [0])
        expected = WIDTH * np.log2(1.0 + POWER * 1e-9 / NOISE)
        assert stats.rate_bps[0] == pytest.approx(expected)

    def test_local_user_has_zero_stats(self):
        gains = np.full((1, 1, 1), 1e-9)
        stats = stats_for(gains, [LOCAL], [LOCAL])
        assert stats.sinr[0] == 0.0
        assert stats.rate_bps[0] == 0.0
        assert stats.spectral_efficiency[0] == 0.0


class TestInterference:
    def test_cross_cell_same_band_interferes(self):
        # u0 -> server 0, u1 -> server 1, both on band 0.
        gains = np.zeros((2, 2, 1))
        gains[0] = [[1e-9], [2e-10]]  # u0 at s0 strong, at s1 weaker
        gains[1] = [[3e-10], [1e-9]]  # u1 leaks 3e-10 onto s0
        stats = stats_for(gains, [0, 1], [0, 0])
        expected_u0 = (POWER * 1e-9) / (POWER * 3e-10 + NOISE)
        expected_u1 = (POWER * 1e-9) / (POWER * 2e-10 + NOISE)
        assert stats.sinr[0] == pytest.approx(expected_u0)
        assert stats.sinr[1] == pytest.approx(expected_u1)

    def test_different_bands_do_not_interfere(self):
        gains = np.full((2, 2, 2), 1e-9)
        stats = stats_for(gains, [0, 1], [0, 1])
        clean = POWER * 1e-9 / NOISE
        assert stats.sinr[0] == pytest.approx(clean)
        assert stats.sinr[1] == pytest.approx(clean)

    def test_same_cell_different_bands_orthogonal(self):
        gains = np.full((2, 1, 2), 1e-9)
        stats = stats_for(gains, [0, 0], [0, 1])
        clean = POWER * 1e-9 / NOISE
        np.testing.assert_allclose(stats.sinr, [clean, clean])

    def test_three_cell_aggregate_interference(self):
        gains = np.full((3, 3, 1), 1e-9)
        stats = stats_for(gains, [0, 1, 2], [0, 0, 0])
        # Each user sees the other two at gain 1e-9.
        expected = (POWER * 1e-9) / (2 * POWER * 1e-9 + NOISE)
        np.testing.assert_allclose(stats.sinr, np.full(3, expected))

    def test_interference_lowers_rate(self):
        gains = np.full((2, 2, 1), 1e-9)
        alone = stats_for(gains, [0, LOCAL], [0, LOCAL]).rate_bps[0]
        contested = stats_for(gains, [0, 1], [0, 0]).rate_bps[0]
        assert contested < alone

    def test_heterogeneous_power(self):
        gains = np.full((2, 2, 1), 1e-9)
        powers = np.array([0.01, 0.1])
        stats = stats_for(gains, [0, 1], [0, 0], powers=powers)
        expected_u0 = (0.01 * 1e-9) / (0.1 * 1e-9 + NOISE)
        assert stats.sinr[0] == pytest.approx(expected_u0)


class TestComputeRates:
    def test_wrapper_matches_stats(self):
        gains = np.full((2, 2, 2), 1e-9)
        server = np.array([0, 1], dtype=np.int64)
        channel = np.array([0, 1], dtype=np.int64)
        powers = np.full(2, POWER)
        rates = compute_rates(gains, powers, NOISE, WIDTH, server, channel)
        stats = compute_link_stats(gains, powers, NOISE, WIDTH, server, channel)
        np.testing.assert_array_equal(rates, stats.rate_bps)


class TestValidation:
    def test_rejects_2d_gains(self):
        with pytest.raises(ConfigurationError):
            compute_link_stats(
                np.ones((2, 2)),
                np.full(2, POWER),
                NOISE,
                WIDTH,
                np.array([0, 0]),
                np.array([0, 1]),
            )

    def test_rejects_power_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            compute_link_stats(
                np.ones((2, 2, 2)),
                np.full(3, POWER),
                NOISE,
                WIDTH,
                np.array([0, 1]),
                np.array([0, 0]),
            )

    def test_rejects_assignment_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            compute_link_stats(
                np.ones((2, 2, 2)),
                np.full(2, POWER),
                NOISE,
                WIDTH,
                np.array([0]),
                np.array([0]),
            )

    def test_rejects_server_out_of_range(self):
        with pytest.raises(ConfigurationError):
            stats_for(np.ones((1, 2, 2)), [2], [0])

    def test_rejects_channel_out_of_range(self):
        with pytest.raises(ConfigurationError):
            stats_for(np.ones((1, 2, 2)), [0], [5])

    def test_rejects_half_local_assignment(self):
        with pytest.raises(ConfigurationError):
            stats_for(np.ones((1, 2, 2)), [0], [LOCAL])

    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ConfigurationError):
            compute_link_stats(
                np.ones((1, 1, 1)),
                np.full(1, POWER),
                0.0,
                WIDTH,
                np.array([0]),
                np.array([0]),
            )

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ConfigurationError):
            compute_link_stats(
                np.ones((1, 1, 1)),
                np.full(1, POWER),
                NOISE,
                0.0,
                np.array([0]),
                np.array([0]),
            )
