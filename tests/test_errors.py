"""Tests for the exception hierarchy."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "subclass",
    [
        errors.ConfigurationError,
        errors.InfeasibleDecisionError,
        errors.InfeasibleAllocationError,
        errors.SolverError,
    ],
)
def test_all_errors_derive_from_repro_error(subclass):
    assert issubclass(subclass, errors.ReproError)


def test_repro_error_is_an_exception():
    assert issubclass(errors.ReproError, Exception)


def test_catching_base_catches_subclasses():
    with pytest.raises(errors.ReproError):
        raise errors.InfeasibleDecisionError("boom")


def test_errors_carry_messages():
    err = errors.SolverError("exceeded budget")
    assert "exceeded budget" in str(err)
