"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import (
    allocation_cost,
    kkt_allocation,
    optimal_allocation_cost,
)
from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.objective import ObjectiveEvaluator
from repro.net.sinr import compute_link_stats
from repro.sim.stats import summarize
from tests.conftest import make_scenario

# --- Strategies ------------------------------------------------------------

dims = st.tuples(
    st.integers(min_value=1, max_value=6),  # users
    st.integers(min_value=1, max_value=3),  # servers
    st.integers(min_value=1, max_value=3),  # channels
)


@st.composite
def decision_with_ops(draw):
    """A decision plus a random mutation script."""
    n_users, n_servers, n_channels = draw(dims)
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # op code
                st.integers(min_value=0, max_value=n_users - 1),
                st.integers(min_value=0, max_value=n_servers - 1),
                st.integers(min_value=0, max_value=n_channels - 1),
                st.integers(min_value=0, max_value=n_users - 1),
            ),
            max_size=30,
        )
    )
    return n_users, n_servers, n_channels, ops


@st.composite
def random_scenario_and_decision(draw):
    """A small scenario with random gains and a random feasible decision."""
    n_users, n_servers, n_channels = draw(dims)
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    gains = rng.uniform(1e-12, 1e-7, size=(n_users, n_servers, n_channels))
    beta_time = draw(
        st.floats(min_value=0.05, max_value=0.95, allow_nan=False)
    )
    scenario = make_scenario(
        n_users=n_users,
        n_servers=n_servers,
        n_subbands=n_channels,
        gains=gains,
        beta_time=beta_time,
    )
    decision = OffloadingDecision.random_feasible(
        n_users, n_servers, n_channels, rng
    )
    return scenario, decision


# --- Decision invariants -----------------------------------------------------


@given(decision_with_ops())
@settings(max_examples=200, deadline=None)
def test_mutations_always_preserve_feasibility(script):
    n_users, n_servers, n_channels, ops = script
    decision = OffloadingDecision.all_local(n_users, n_servers, n_channels)
    for op, user, server, channel, other in ops:
        if op == 0:
            decision.displace_and_assign(user, server, channel)
        elif op == 1:
            decision.set_local(user)
        elif op == 2:
            decision.swap(user, other)
        else:
            occupant = decision.occupant_of(server, channel)
            if occupant in (LOCAL, user):
                decision.assign(user, server, channel)
        assert decision.is_feasible()
        # Slot map and vectors agree after every mutation.
        for u in range(n_users):
            if decision.is_offloaded(u):
                assert decision.occupant_of(
                    int(decision.server[u]), int(decision.channel[u])
                ) == u


@given(decision_with_ops())
@settings(max_examples=100, deadline=None)
def test_dense_roundtrip_after_mutations(script):
    n_users, n_servers, n_channels, ops = script
    decision = OffloadingDecision.all_local(n_users, n_servers, n_channels)
    for op, user, server, channel, other in ops:
        if op % 2 == 0:
            decision.displace_and_assign(user, server, channel)
        else:
            decision.set_local(user)
    assert OffloadingDecision.from_dense(decision.to_dense()) == decision


# --- Objective identity -------------------------------------------------------


@given(random_scenario_and_decision())
@settings(max_examples=60, deadline=None)
def test_closed_form_equals_explicit_utility(pair):
    """Eq. (24) == Eq. (11) with the KKT allocation, for any decision."""
    scenario, decision = pair
    evaluator = ObjectiveEvaluator(scenario)
    fast = evaluator.evaluate(decision)
    explicit = evaluator.breakdown(decision).system_utility
    assert explicit == pytest.approx(fast, rel=1e-9, abs=1e-12)


@given(random_scenario_and_decision())
@settings(max_examples=60, deadline=None)
def test_kkt_allocation_feasible_and_optimal(pair):
    scenario, decision = pair
    allocation = kkt_allocation(scenario, decision)
    # Feasibility (12e)-(12f).
    assert np.all(allocation >= 0.0)
    for s in range(scenario.n_servers):
        users = decision.users_on_server(s)
        assert allocation[:, s].sum() <= scenario.server_cpu_hz[s] * (1 + 1e-9)
        if users.size:
            assert np.all(allocation[users, s] > 0.0)
    # Consistency of Eq. (23) with direct evaluation of Eq. (20a).
    if decision.n_offloaded():
        direct = allocation_cost(scenario, decision, allocation)
        assert optimal_allocation_cost(scenario, decision) == pytest.approx(direct)


@given(
    random_scenario_and_decision(),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_kkt_never_beaten_by_random_split(pair, perturb_seed):
    """No random feasible allocation can undercut the closed form."""
    scenario, decision = pair
    offloaded = decision.offloaded_users()
    if offloaded.size == 0:
        return
    optimal = optimal_allocation_cost(scenario, decision)
    rng = np.random.default_rng(perturb_seed)
    allocation = np.zeros((scenario.n_users, scenario.n_servers))
    for s in range(scenario.n_servers):
        users = decision.users_on_server(s)
        if users.size == 0:
            continue
        weights = rng.uniform(0.1, 1.0, size=users.size)
        allocation[users, s] = (
            scenario.server_cpu_hz[s] * weights / weights.sum()
        )
    assert allocation_cost(scenario, decision, allocation) >= optimal - 1e-9


# --- SINR monotonicity ---------------------------------------------------------


@given(random_scenario_and_decision())
@settings(max_examples=60, deadline=None)
def test_removing_a_user_never_hurts_others(pair):
    """Dropping any offloader weakly improves every other user's SINR."""
    scenario, decision = pair
    offloaded = decision.offloaded_users()
    if offloaded.size < 2:
        return
    base = compute_link_stats(
        scenario.gains,
        scenario.tx_power_watts,
        scenario.noise_watts,
        scenario.subband_width_hz,
        decision.server,
        decision.channel,
    )
    victim = int(offloaded[0])
    reduced = decision.copy()
    reduced.set_local(victim)
    after = compute_link_stats(
        scenario.gains,
        scenario.tx_power_watts,
        scenario.noise_watts,
        scenario.subband_width_hz,
        reduced.server,
        reduced.channel,
    )
    others = [int(u) for u in offloaded if u != victim]
    assert np.all(after.sinr[others] >= base.sinr[others] - 1e-18)


@given(random_scenario_and_decision())
@settings(max_examples=40, deadline=None)
def test_utility_bounded_by_weighted_user_count(pair):
    """J*(X) <= sum of operator weights of offloaded users (J_u <= 1)."""
    scenario, decision = pair
    evaluator = ObjectiveEvaluator(scenario)
    value = evaluator.evaluate(decision)
    cap = float(scenario.operator_weight[decision.offloaded_users()].sum())
    assert value <= cap + 1e-9


# --- Neighborhood ---------------------------------------------------------------


@given(
    dims,
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=60),
)
@settings(max_examples=100, deadline=None)
def test_proposal_chain_feasible(dimensions, seed, steps):
    n_users, n_servers, n_channels = dimensions
    rng = np.random.default_rng(seed)
    decision = OffloadingDecision.random_feasible(
        n_users, n_servers, n_channels, rng
    )
    sampler = NeighborhoodSampler()
    for _ in range(steps):
        decision = sampler.propose(decision, rng)
        assert decision.is_feasible()


# --- Statistics -------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=150, deadline=None)
def test_confidence_interval_brackets_mean(samples):
    stats = summarize(samples)
    assert stats.ci_halfwidth >= 0.0
    assert stats.ci_low <= stats.mean + 1e-9
    assert stats.mean <= stats.ci_high + 1e-9
    assert stats.n == len(samples)
