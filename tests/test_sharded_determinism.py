"""Backend determinism of the sharded scheduler.

The sharded solver must be a pure function of ``(scenario, seed)`` no
matter which :class:`~repro.sim.executors.base.SweepExecutor` backend
fans the cells out: serial in-process, process pool, or the file-based
work queue.  Locked down here:

* identical metrics for every (scheme, seed) cell across all three
  backends;
* journals written under each backend are byte-identical once the two
  wall-clock fields — explicitly outside the determinism contract —
  are normalised away;
* two serial replays under the determinism sanitizer produce matching
  per-stream RNG ledgers (draw-for-draw);
* the ``tsajs solve --shard --sanitize`` CLI path passes end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.core.annealing import AnnealingSchedule
from repro.core.sharding import ShardedScheduler
from repro.experiments.persistence import SweepJournal
from repro.sim.config import SimulationConfig
from repro.sim.executors import WorkQueueExecutor, make_executor
from repro.sim.runner import RetryPolicy, run_schemes
from tests.test_resilience import assert_identical_metrics

#: Small multi-cluster deployment: 9 stations at 1 km spacing under a
#: 1.2 km tile split into 5 clusters, so every run exercises the
#: cluster-seed protocol and the boundary reconciliation pass.
CONFIG = SimulationConfig(
    n_users=8,
    n_servers=9,
    use_sharding=True,
    cluster_radius_km=1.2,
)

SEEDS = [1, 2, 3]

#: Queue knobs tuned for test speed (matches tests/test_executors.py).
FAST_QUEUE = dict(poll_s=0.02, idle_timeout_s=15.0, lease_timeout_s=10.0)


def _scheduler() -> ShardedScheduler:
    return ShardedScheduler(
        cluster_radius_km=CONFIG.cluster_radius_km,
        max_reconcile_rounds=CONFIG.max_reconcile_rounds,
        schedule=AnnealingSchedule(chain_length=10, min_temperature=1e-1),
    )


def _run(executor=None, journal=None):
    kwargs = {}
    if executor is not None:
        kwargs["executor"] = executor
        kwargs["retry"] = RetryPolicy(backoff_s=0.0)
    if journal is not None:
        kwargs["journal"] = journal
    return run_schemes(CONFIG, [_scheduler()], SEEDS, **kwargs)


def _normalized_journal(path) -> str:
    """Journal contents in canonical cell order, wall-clock zeroed.

    Records are appended in completion order, which the pool/queue
    backends do not guarantee, so they are re-sorted by (scheme, seed);
    ``wall_time_s`` / ``reschedule_wall_time_s`` measure the host, not
    the algorithm.  Every other byte of every record must be identical
    across backends.
    """
    records = []
    for line in path.read_text().splitlines():
        payload = json.loads(line)
        payload["metrics"]["wall_time_s"] = 0.0
        payload["metrics"]["reschedule_wall_time_s"] = 0.0
        records.append(payload)
    records.sort(key=lambda r: (r["scheme"], r["seed"]))
    return "\n".join(
        json.dumps(r, sort_keys=True, separators=(",", ":")) for r in records
    )


def test_all_backends_compute_identical_metrics(tmp_path):
    serial = _run()
    pool = _run(executor=make_executor("pool", n_jobs=2))
    queue = _run(
        executor=WorkQueueExecutor(
            tmp_path / "q", n_local_workers=2, **FAST_QUEUE
        )
    )
    assert not pool.failures
    assert not queue.failures
    assert_identical_metrics(serial, pool)
    assert_identical_metrics(serial, queue)


def test_journals_byte_identical_across_backends(tmp_path):
    paths = {}
    for backend in ("serial", "pool", "queue"):
        path = tmp_path / f"{backend}.jsonl"
        paths[backend] = path
        journal = SweepJournal(path)
        if backend == "serial":
            _run(journal=journal)
        elif backend == "pool":
            _run(executor=make_executor("pool", n_jobs=2), journal=journal)
        else:
            _run(
                executor=WorkQueueExecutor(
                    tmp_path / "qj", n_local_workers=2, **FAST_QUEUE
                ),
                journal=journal,
            )
    reference = _normalized_journal(paths["serial"])
    assert reference  # the journal actually recorded the cells
    assert _normalized_journal(paths["pool"]) == reference
    assert _normalized_journal(paths["queue"]) == reference


def test_sanitizer_ledgers_match_across_serial_replays():
    from repro.sanitize import assert_ledgers_match, sanitized

    snapshots = []
    utilities = []
    for _ in range(2):
        with sanitized() as sanitizer:
            result = _run()
        snapshots.append(sanitizer.snapshot())
        utilities.append(
            [m.system_utility for m in result.metrics["TSAJS-Shard"]]
        )
    # Raises DeterminismViolation on any per-stream divergence.
    assert_ledgers_match(
        snapshots[0],
        snapshots[1],
        compare_draws=True,
        context="sharded serial replay",
    )
    assert utilities[0] == utilities[1]


def test_cli_sanitized_sharded_solve_passes(capsys):
    from repro.cli import main

    status = main(
        [
            "solve",
            "--users",
            "6",
            "--servers",
            "9",
            "--quick",
            "--shard",
            "--cluster-radius",
            "1.2",
            "--schemes",
            "TSAJS",
            "--sanitize",
        ]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "sharded replay" in out
    assert "ledgers identical" in out


def test_sharded_scheme_name_in_journal(tmp_path):
    path = tmp_path / "j.jsonl"
    _run(journal=SweepJournal(path))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert records
    assert {r["scheme"] for r in records} == {"TSAJS-Shard"}
    assert sorted(r["seed"] for r in records) == sorted(SEEDS)
