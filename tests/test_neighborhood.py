"""Tests for Algorithm 2's neighbourhood sampler."""

import numpy as np
import pytest

from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.neighborhood import NeighborhoodSampler
from repro.errors import ConfigurationError


def offloaded_decision(n_users=4, n_servers=3, n_channels=2):
    decision = OffloadingDecision.all_local(n_users, n_servers, n_channels)
    decision.assign(0, 0, 0)
    decision.assign(1, 1, 1)
    return decision


#: Samplers that deterministically select one branch of Algorithm 2.
ONLY_TOGGLE = NeighborhoodSampler(toggle_below=1.0, swap_below=1.0, server_move_below=1.0)
ONLY_SWAP = NeighborhoodSampler(toggle_below=0.0, swap_below=1.0, server_move_below=1.0)
ONLY_SERVER_MOVE = NeighborhoodSampler(
    toggle_below=0.0, swap_below=0.0, server_move_below=1.0
)
ONLY_CHANNEL_MOVE = NeighborhoodSampler(
    toggle_below=0.0, swap_below=0.0, server_move_below=0.0
)


class TestValidation:
    def test_paper_defaults(self):
        sampler = NeighborhoodSampler()
        assert sampler.toggle_below == 0.05
        assert sampler.swap_below == 0.20
        assert sampler.server_move_below == 0.75

    def test_rejects_unordered_thresholds(self):
        with pytest.raises(ConfigurationError):
            NeighborhoodSampler(toggle_below=0.5, swap_below=0.2)
        with pytest.raises(ConfigurationError):
            NeighborhoodSampler(swap_below=0.8, server_move_below=0.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            NeighborhoodSampler(toggle_below=-0.1)
        with pytest.raises(ConfigurationError):
            NeighborhoodSampler(server_move_below=1.5)


class TestBranches:
    def test_input_never_mutated(self, rng):
        decision = offloaded_decision()
        frozen = decision.copy()
        for _ in range(100):
            NeighborhoodSampler().propose(decision, rng)
        assert decision == frozen

    def test_toggle_flips_offload_state(self, rng):
        decision = offloaded_decision()
        for _ in range(50):
            new = ONLY_TOGGLE.propose(decision, rng)
            # Exactly one user changed offload state, except when the
            # toggled-in user displaced an occupant (two changes).
            changed = int(np.sum((new.server >= 0) != (decision.server >= 0)))
            assert changed in (1, 2)

    def test_toggle_on_local_user_offloads_it(self, rng):
        decision = OffloadingDecision.all_local(1, 2, 2)
        new = ONLY_TOGGLE.propose(decision, rng)
        assert new.n_offloaded() == 1

    def test_toggle_on_offloaded_user_localises_it(self, rng):
        decision = OffloadingDecision.all_local(1, 2, 2)
        decision.assign(0, 0, 0)
        new = ONLY_TOGGLE.propose(decision, rng)
        assert new.n_offloaded() == 0

    def test_server_move_changes_server(self, rng):
        decision = OffloadingDecision.all_local(1, 3, 2)
        decision.assign(0, 0, 0)
        for _ in range(50):
            new = ONLY_SERVER_MOVE.propose(decision, rng)
            assert new.is_offloaded(0)
            assert new.server[0] != 0

    def test_server_move_single_server_offloaded_is_noop(self, rng):
        decision = OffloadingDecision.all_local(1, 1, 2)
        decision.assign(0, 0, 0)
        new = ONLY_SERVER_MOVE.propose(decision, rng)
        assert new == decision

    def test_channel_move_keeps_server(self, rng):
        decision = OffloadingDecision.all_local(1, 2, 3)
        decision.assign(0, 1, 0)
        for _ in range(50):
            new = ONLY_CHANNEL_MOVE.propose(decision, rng)
            assert new.server[0] == 1
            assert new.channel[0] != 0

    def test_channel_move_single_band_is_noop(self, rng):
        decision = OffloadingDecision.all_local(2, 2, 1)
        decision.assign(0, 0, 0)
        new = ONLY_CHANNEL_MOVE.propose(decision, rng)
        assert new == decision

    def test_channel_move_on_local_user_assigns_slot(self, rng):
        decision = OffloadingDecision.all_local(1, 2, 3)
        new = ONLY_CHANNEL_MOVE.propose(decision, rng)
        assert new.n_offloaded() == 1

    def test_swap_exchanges_assignments(self, rng):
        decision = OffloadingDecision.all_local(2, 2, 2)
        decision.assign(0, 0, 0)
        decision.assign(1, 1, 1)
        new = ONLY_SWAP.propose(decision, rng)
        assert new.server[0] == 1 and new.channel[0] == 1
        assert new.server[1] == 0 and new.channel[1] == 0

    def test_swap_single_user_is_noop(self, rng):
        decision = OffloadingDecision.all_local(1, 2, 2)
        decision.assign(0, 0, 0)
        new = ONLY_SWAP.propose(decision, rng)
        assert new == decision

    def test_displacement_when_target_full(self, rng):
        # Both single-band servers occupied: any server move displaces
        # the other user to local (the target user is random).
        decision = OffloadingDecision.all_local(2, 2, 1)
        decision.assign(0, 0, 0)
        decision.assign(1, 1, 0)
        for _ in range(20):
            new = ONLY_SERVER_MOVE.propose(decision, rng)
            assert new.n_offloaded() == 1
            moved = int(new.offloaded_users()[0])
            # The mover landed on the other server; the occupant went local.
            assert new.server[moved] == 1 - decision.server[moved]
            assert not new.is_offloaded(1 - moved)


class TestFeasibilityInvariant:
    @pytest.mark.parametrize("sampler", [
        NeighborhoodSampler(),
        ONLY_TOGGLE,
        ONLY_SWAP,
        ONLY_SERVER_MOVE,
        ONLY_CHANNEL_MOVE,
    ])
    def test_chain_of_proposals_stays_feasible(self, sampler, rng):
        decision = OffloadingDecision.random_feasible(8, 3, 2, rng)
        for _ in range(300):
            decision = sampler.propose(decision, rng)
            assert decision.is_feasible()

    def test_all_branches_reachable_with_paper_mix(self, rng):
        """Over many proposals the default mix must exercise every move."""
        decision = OffloadingDecision.random_feasible(6, 3, 3, rng)
        sampler = NeighborhoodSampler()
        seen_offload_counts = set()
        for _ in range(600):
            new = sampler.propose(decision, rng)
            seen_offload_counts.add(new.n_offloaded() - decision.n_offloaded())
            decision = new
        # Toggle can both grow and shrink the offload set.
        assert {-1, 0, 1} & seen_offload_counts == {-1, 0, 1}
