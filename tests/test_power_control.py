"""Tests for the uplink power-control extension."""

import numpy as np
import pytest

from repro.core.annealing import AnnealingSchedule
from repro.core.decision import OffloadingDecision
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import ScheduleResult, Scheduler, TsajsScheduler
from repro.errors import ConfigurationError
from repro.extensions.power_control import (
    TsajsWithPowerControl,
    optimize_powers,
    scenario_with_powers,
    utility_with_powers,
)
from tests.conftest import make_scenario

QUICK = AnnealingSchedule(min_temperature=1e-2)


class TestUtilityWithPowers:
    def test_matches_evaluator_at_scenario_powers(self, small_random_scenario, rng):
        decision = OffloadingDecision.random_feasible(
            small_random_scenario.n_users,
            small_random_scenario.n_servers,
            small_random_scenario.n_subbands,
            rng,
        )
        via_evaluator = ObjectiveEvaluator(small_random_scenario).evaluate(decision)
        via_powers = utility_with_powers(
            small_random_scenario, decision, small_random_scenario.tx_power_watts
        )
        assert via_powers == pytest.approx(via_evaluator, rel=1e-12)

    def test_empty_decision_zero(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        assert utility_with_powers(
            tiny_scenario, decision, tiny_scenario.tx_power_watts
        ) == 0.0

    def test_rejects_wrong_shape(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        with pytest.raises(ConfigurationError):
            utility_with_powers(tiny_scenario, decision, np.ones(3))

    def test_interference_free_user_gains_from_power(self, tiny_scenario):
        # A single offloaded user: more power = faster upload = higher J
        # (the energy term psi*p grows, but at these parameters the rate
        # gain dominates).
        decision = OffloadingDecision.all_local(4, 2, 2)
        decision.assign(0, 0, 0)
        powers = tiny_scenario.tx_power_watts.copy()
        low = utility_with_powers(tiny_scenario, decision, powers)
        powers[0] *= 10.0
        high = utility_with_powers(tiny_scenario, decision, powers)
        assert high > low


class TestScenarioWithPowers:
    def test_updates_power_arrays(self, tiny_scenario):
        new_powers = np.full(4, 0.05)
        updated = scenario_with_powers(tiny_scenario, new_powers)
        np.testing.assert_allclose(updated.tx_power_watts, new_powers)
        # Radio environment and tasks untouched.
        np.testing.assert_array_equal(updated.gains, tiny_scenario.gains)
        np.testing.assert_array_equal(updated.cycles, tiny_scenario.cycles)

    def test_psi_recomputed_consistently(self, tiny_scenario):
        # psi does not depend on p, so it must be unchanged.
        updated = scenario_with_powers(tiny_scenario, np.full(4, 0.05))
        np.testing.assert_allclose(updated.psi, tiny_scenario.psi)

    def test_rejects_wrong_shape(self, tiny_scenario):
        with pytest.raises(ConfigurationError):
            scenario_with_powers(tiny_scenario, np.ones(2))

    def test_original_untouched(self, tiny_scenario):
        before = tiny_scenario.tx_power_watts.copy()
        scenario_with_powers(tiny_scenario, np.full(4, 0.05))
        np.testing.assert_array_equal(tiny_scenario.tx_power_watts, before)


class TestOptimizePowers:
    def decision_on(self, scenario, rng):
        return OffloadingDecision.random_feasible(
            scenario.n_users, scenario.n_servers, scenario.n_subbands, rng
        )

    def test_never_decreases_utility(self, small_random_scenario, rng):
        decision = self.decision_on(small_random_scenario, rng)
        control = optimize_powers(small_random_scenario, decision)
        assert control.utility_after >= control.utility_before - 1e-12
        assert control.utility_gain >= -1e-12

    def test_powers_within_bounds(self, small_random_scenario, rng):
        decision = self.decision_on(small_random_scenario, rng)
        control = optimize_powers(
            small_random_scenario, decision, p_min_watts=0.002, p_max_watts=0.05
        )
        for u in decision.offloaded_users():
            assert 0.002 - 1e-12 <= control.powers[u] <= 0.05 + 1e-12

    def test_local_users_keep_power(self, small_random_scenario, rng):
        decision = self.decision_on(small_random_scenario, rng)
        control = optimize_powers(small_random_scenario, decision)
        for u in range(small_random_scenario.n_users):
            if not decision.is_offloaded(u):
                assert control.powers[u] == small_random_scenario.tx_power_watts[u]

    def test_reported_utility_consistent(self, small_random_scenario, rng):
        decision = self.decision_on(small_random_scenario, rng)
        control = optimize_powers(small_random_scenario, decision)
        recomputed = utility_with_powers(
            small_random_scenario, decision, control.powers
        )
        assert control.utility_after == pytest.approx(recomputed)

    def test_empty_decision_noop(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        control = optimize_powers(tiny_scenario, decision)
        assert control.utility_before == 0.0
        assert control.utility_after == 0.0
        assert control.converged

    def test_validation(self, tiny_scenario):
        decision = OffloadingDecision.all_local(4, 2, 2)
        with pytest.raises(ConfigurationError):
            optimize_powers(tiny_scenario, decision, p_min_watts=0.1, p_max_watts=0.1)
        with pytest.raises(ConfigurationError):
            optimize_powers(tiny_scenario, decision, grid_points=2)
        with pytest.raises(ConfigurationError):
            optimize_powers(tiny_scenario, decision, max_sweeps=0)

    def test_deterministic(self, small_random_scenario, rng):
        decision = self.decision_on(small_random_scenario, rng)
        a = optimize_powers(small_random_scenario, decision)
        b = optimize_powers(small_random_scenario, decision)
        np.testing.assert_array_equal(a.powers, b.powers)


class TestTsajsWithPowerControl:
    def test_satisfies_protocol(self):
        assert isinstance(TsajsWithPowerControl(schedule=QUICK), Scheduler)

    def test_joint_beats_or_matches_plain_tsajs(self, small_random_scenario):
        plain = TsajsScheduler(schedule=QUICK).schedule(
            small_random_scenario, np.random.default_rng(4)
        )
        joint = TsajsWithPowerControl(schedule=QUICK, rounds=1).schedule_joint(
            small_random_scenario, np.random.default_rng(4)
        )
        assert joint.result.utility >= plain.utility - 1e-9

    def test_history_monotone_within_round(self, small_random_scenario):
        joint = TsajsWithPowerControl(schedule=QUICK, rounds=1).schedule_joint(
            small_random_scenario, np.random.default_rng(4)
        )
        # [tsajs, power] per round: power step never decreases utility.
        assert joint.utility_history[1] >= joint.utility_history[0] - 1e-12

    def test_schedule_returns_schedule_result(self, small_random_scenario):
        result = TsajsWithPowerControl(schedule=QUICK, rounds=1).schedule(
            small_random_scenario, np.random.default_rng(4)
        )
        assert isinstance(result, ScheduleResult)

    def test_rejects_bad_rounds(self):
        with pytest.raises(ConfigurationError):
            TsajsWithPowerControl(rounds=0)

    def test_scenario_in_result_has_tuned_powers(self, small_random_scenario):
        joint = TsajsWithPowerControl(schedule=QUICK, rounds=1).schedule_joint(
            small_random_scenario, np.random.default_rng(4)
        )
        np.testing.assert_allclose(
            joint.scenario.tx_power_watts, joint.powers
        )
