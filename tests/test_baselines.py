"""Tests for the baseline schedulers."""

import itertools

import numpy as np
import pytest

from repro.baselines import (
    AllLocalScheduler,
    ExhaustiveScheduler,
    GreedyScheduler,
    HJtoraScheduler,
    LocalSearchScheduler,
    RandomScheduler,
)
from repro.core.decision import LOCAL, OffloadingDecision
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError, SolverError
from repro.sim.validation import validate_result
from tests.conftest import make_scenario

ALL_BASELINES = [
    ExhaustiveScheduler,
    HJtoraScheduler,
    GreedyScheduler,
    LocalSearchScheduler,
    AllLocalScheduler,
    RandomScheduler,
]


class TestCommonContract:
    @pytest.mark.parametrize("scheduler_cls", ALL_BASELINES)
    def test_protocol_and_feasibility(self, scheduler_cls, small_random_scenario, rng):
        scheduler = scheduler_cls()
        assert isinstance(scheduler, Scheduler)
        result = scheduler.schedule(small_random_scenario, rng)
        validate_result(small_random_scenario, result)

    @pytest.mark.parametrize("scheduler_cls", ALL_BASELINES)
    def test_reported_utility_matches_decision(
        self, scheduler_cls, small_random_scenario, rng
    ):
        result = scheduler_cls().schedule(small_random_scenario, rng)
        evaluator = ObjectiveEvaluator(small_random_scenario)
        assert evaluator.evaluate(result.decision) == pytest.approx(result.utility)


class TestExhaustive:
    def test_matches_explicit_enumeration(self, rng):
        """Cross-check the DFS against itertools-based enumeration."""
        scenario = make_scenario(
            n_users=3,
            n_servers=2,
            n_subbands=1,
            gains=np.random.default_rng(0).uniform(1e-10, 1e-8, size=(3, 2, 1)),
        )
        evaluator = ObjectiveEvaluator(scenario)
        options = [LOCAL] + [(s, 0) for s in range(2)]
        best = -np.inf
        for combo in itertools.product(options, repeat=3):
            slots = [c for c in combo if c != LOCAL]
            if len(slots) != len(set(slots)):
                continue  # slot conflict
            server = np.array(
                [c[0] if c != LOCAL else LOCAL for c in combo], dtype=np.int64
            )
            channel = np.array(
                [c[1] if c != LOCAL else LOCAL for c in combo], dtype=np.int64
            )
            best = max(best, evaluator.evaluate_assignment(server, channel))

        result = ExhaustiveScheduler().schedule(scenario)
        assert result.utility == pytest.approx(best)

    def test_optimum_at_least_every_heuristic(self, rng):
        scenario = make_scenario(
            n_users=4,
            n_servers=2,
            n_subbands=2,
            gains=np.random.default_rng(1).uniform(1e-10, 1e-8, size=(4, 2, 2)),
        )
        optimum = ExhaustiveScheduler().schedule(scenario).utility
        for scheduler in (HJtoraScheduler(), GreedyScheduler(), LocalSearchScheduler()):
            assert scheduler.schedule(scenario, rng).utility <= optimum + 1e-9

    def test_max_leaves_guard(self, small_random_scenario):
        with pytest.raises(SolverError):
            ExhaustiveScheduler(max_leaves=10).schedule(small_random_scenario)

    def test_rejects_bad_max_leaves(self):
        with pytest.raises(ConfigurationError):
            ExhaustiveScheduler(max_leaves=0)

    def test_deterministic(self, tiny_scenario):
        a = ExhaustiveScheduler().schedule(tiny_scenario)
        b = ExhaustiveScheduler().schedule(tiny_scenario)
        assert a.utility == b.utility
        assert a.decision == b.decision


class TestHJtora:
    def test_improves_over_all_local(self, tiny_scenario):
        result = HJtoraScheduler().schedule(tiny_scenario)
        assert result.utility > 0.0

    def test_is_single_move_local_optimum(self, small_random_scenario):
        """No single-user reassignment may improve the returned plan."""
        result = HJtoraScheduler().schedule(small_random_scenario)
        evaluator = ObjectiveEvaluator(small_random_scenario)
        base = evaluator.evaluate(result.decision)
        scenario = small_random_scenario
        for u in range(scenario.n_users):
            probe = result.decision.copy()
            probe.set_local(u)
            assert evaluator.evaluate(probe) <= base + 1e-9
            for s in range(scenario.n_servers):
                for j in range(scenario.n_subbands):
                    if result.decision.occupant_of(s, j) != LOCAL:
                        continue
                    probe = result.decision.copy()
                    probe.assign(u, s, j)
                    assert evaluator.evaluate(probe) <= base + 1e-9

    def test_deterministic(self, small_random_scenario):
        a = HJtoraScheduler().schedule(small_random_scenario)
        b = HJtoraScheduler().schedule(small_random_scenario)
        assert a.decision == b.decision

    def test_rejects_bad_rounds(self):
        with pytest.raises(ConfigurationError):
            HJtoraScheduler(max_rounds=0)

    def test_round_limit_respected(self, tiny_scenario):
        limited = HJtoraScheduler(max_rounds=1).schedule(tiny_scenario)
        # One round applies at most one move.
        assert limited.decision.n_offloaded() <= 1


class TestGreedy:
    def test_never_negative_utility(self, small_random_scenario):
        result = GreedyScheduler().schedule(small_random_scenario)
        assert result.utility >= 0.0

    def test_offloads_when_beneficial(self, tiny_scenario):
        result = GreedyScheduler().schedule(tiny_scenario)
        assert result.decision.n_offloaded() >= 1

    def test_respects_slot_capacity(self):
        scenario = make_scenario(n_users=10, n_servers=1, n_subbands=2)
        result = GreedyScheduler().schedule(scenario)
        assert result.decision.n_offloaded() <= 2

    def test_strongest_user_served_first(self):
        gains = np.full((2, 1, 1), 1e-10)
        gains[1] = 1e-8  # user 1 much stronger
        scenario = make_scenario(n_users=2, n_servers=1, n_subbands=1, gains=gains)
        result = GreedyScheduler().schedule(scenario)
        # Only one slot: the stronger user must hold it.
        assert result.decision.is_offloaded(1)
        assert not result.decision.is_offloaded(0)

    def test_deterministic(self, small_random_scenario):
        a = GreedyScheduler().schedule(small_random_scenario)
        b = GreedyScheduler().schedule(small_random_scenario)
        assert a.decision == b.decision


class TestLocalSearch:
    def test_never_negative_utility(self, small_random_scenario, rng):
        result = LocalSearchScheduler().schedule(small_random_scenario, rng)
        assert result.utility >= 0.0

    def test_improves_over_time(self, tiny_scenario, rng):
        result = LocalSearchScheduler(max_iterations=2000).schedule(
            tiny_scenario, rng
        )
        assert result.utility > 0.0

    def test_budget_caps_evaluations(self, small_random_scenario, rng):
        result = LocalSearchScheduler(max_iterations=50, patience=100).schedule(
            small_random_scenario, rng
        )
        # initial evaluation + at most max_iterations proposals
        # (+1 if the negative-utility fallback re-evaluates).
        assert result.evaluations <= 52

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LocalSearchScheduler(max_iterations=0)
        with pytest.raises(ConfigurationError):
            LocalSearchScheduler(patience=0)
        with pytest.raises(ConfigurationError):
            LocalSearchScheduler(initial_offload_probability=2.0)

    def test_deterministic_given_seed(self, small_random_scenario):
        a = LocalSearchScheduler().schedule(
            small_random_scenario, np.random.default_rng(5)
        )
        b = LocalSearchScheduler().schedule(
            small_random_scenario, np.random.default_rng(5)
        )
        assert a.decision == b.decision


class TestTrivial:
    def test_all_local_utility_zero(self, small_random_scenario):
        result = AllLocalScheduler().schedule(small_random_scenario)
        assert result.utility == 0.0
        assert result.decision.n_offloaded() == 0
        assert result.allocation.sum() == 0.0

    def test_random_feasible(self, small_random_scenario, rng):
        result = RandomScheduler(samples=5).schedule(small_random_scenario, rng)
        validate_result(small_random_scenario, result)

    def test_random_more_samples_never_worse(self, small_random_scenario):
        one = RandomScheduler(samples=1).schedule(
            small_random_scenario, np.random.default_rng(3)
        )
        many = RandomScheduler(samples=30).schedule(
            small_random_scenario, np.random.default_rng(3)
        )
        assert many.utility >= one.utility - 1e-12

    def test_random_validation(self):
        with pytest.raises(ConfigurationError):
            RandomScheduler(samples=0)
        with pytest.raises(ConfigurationError):
            RandomScheduler(offload_probability=-0.5)
