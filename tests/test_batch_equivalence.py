"""Bitwise equivalence of the scalar, delta and batch evaluation paths.

The batch evaluator's contract is the strongest in the library: for any
RNG stream, ``use_batch=True`` must reproduce the scalar path's
trajectory *bit for bit* — every accepted move, every utility value,
every RNG draw.  These tests drive the ``tests/equivalence.py`` harness
at paper scale (U=40, S=5, N=20) across 20+ seeds, replay the frozen
golden trajectories from the seed PR, pin the NumPy row-batching
identities the vectorized kernels rely on, and property-test the
interference cache against from-scratch ``net.sinr`` recomputes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.annealing import AnnealingSchedule
from repro.core.batch import BatchEvaluator
from repro.core.decision import LOCAL
from repro.core.objective import ObjectiveEvaluator
from repro.core.scheduler import TsajsScheduler
from repro.net.sinr import compute_sinr_batch, total_received_power
from repro.sim.config import SimulationConfig
from repro.sim.rng import child_rng
from repro.sim.scenario import Scenario
from tests.equivalence import assert_trajectories_identical, run_trajectory
from tests.test_golden_trajectories import CONFIG as GOLDEN_CONFIG
from tests.test_golden_trajectories import GOLDEN
from tests.test_golden_trajectories import SEEDS as GOLDEN_SEEDS

#: Paper-scale configuration (Sec. V's U=40 sweep point).
PAPER_CONFIG = SimulationConfig(n_users=40, n_servers=5, n_subbands=20)
PAPER_SEEDS = tuple(range(3000, 3020))  # 20 seeds
QUICK = AnnealingSchedule(chain_length=15, min_temperature=1e-2)


class TestPaperScaleBitwiseIdentity:
    """Scalar vs delta vs batch at U=40/S=5/N=20 across 20 seeds."""

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", PAPER_SEEDS)
    def test_batch_matches_scalar(self, seed):
        scenario = Scenario.build(PAPER_CONFIG, seed=seed)
        scalar = run_trajectory(scenario, seed, "scalar", schedule=QUICK)
        batch = run_trajectory(scenario, seed, "batch", schedule=QUICK)
        assert_trajectories_identical(scalar, batch, compare_evaluations=False)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", PAPER_SEEDS[:5])
    def test_delta_matches_scalar(self, seed):
        scenario = Scenario.build(PAPER_CONFIG, seed=seed)
        scalar = run_trajectory(scenario, seed, "scalar", schedule=QUICK)
        delta = run_trajectory(scenario, seed, "delta", schedule=QUICK)
        assert_trajectories_identical(scalar, delta)

    @pytest.mark.slow
    @pytest.mark.parametrize("batch_size", [1, 7, 256])
    def test_batch_size_never_changes_the_trajectory(self, batch_size):
        """The batch is speculative: its size must be unobservable."""
        seed = PAPER_SEEDS[0]
        scenario = Scenario.build(PAPER_CONFIG, seed=seed)
        reference = run_trajectory(
            scenario, seed, "batch", schedule=QUICK, batch_size=64
        )
        other = run_trajectory(
            scenario, seed, "batch", schedule=QUICK, batch_size=batch_size
        )
        assert_trajectories_identical(reference, other, compare_evaluations=False)


class TestGoldenTrajectoryReplay:
    """The batch path walks the frozen trajectories of the seed PR."""

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_batch_tsajs_matches_golden(self, seed):
        scenario = Scenario.build(GOLDEN_CONFIG, seed=seed)
        scheduler = TsajsScheduler(
            schedule=AnnealingSchedule(chain_length=15, min_temperature=1e-2),
            use_batch=True,
        )
        result = scheduler.schedule(scenario, child_rng(seed, 100))
        utility, _, accepted = GOLDEN[("TSAJS", seed)]
        assert result.utility == pytest.approx(utility, rel=1e-9)
        # The evaluation count is the one golden field batch mode may
        # change (speculative candidates are scored then discarded); the
        # accepted-move chain must be untouched.
        assert result.accepted_moves == accepted


class TestEvaluatorBitwiseContract:
    """evaluate_batch returns the full evaluator's exact bits."""

    @pytest.mark.parametrize("seed", range(6))
    def test_batch_values_equal_full_reference(self, seed):
        config = SimulationConfig(n_users=14, n_servers=3, n_subbands=3)
        scenario = Scenario.build(config, seed=seed)
        rng = np.random.default_rng(seed)
        evaluator = BatchEvaluator(scenario)
        reference = ObjectiveEvaluator(scenario)
        from repro.core.decision import OffloadingDecision
        from repro.core.neighborhood import NeighborhoodSampler

        sampler = NeighborhoodSampler()
        current = OffloadingDecision.random_feasible(
            scenario.n_users, scenario.n_servers, scenario.n_subbands, rng
        )
        evaluator.evaluate(current)
        for _ in range(15):
            candidates = [sampler.propose_move(current, rng) for _ in range(9)]
            values = evaluator.evaluate_batch(candidates)
            expected = [
                reference.evaluate_assignment(d.server, d.channel)
                for d, _ in candidates
            ]
            assert [float(v) for v in values] == expected  # exact bits
            # Commit one accepted candidate to walk a realistic chain.
            pick = int(rng.integers(len(candidates)))
            decision, touched = candidates[pick]
            evaluator.commit(decision, touched)
            current = decision


class TestInterferenceCacheProperties:
    """Cached per-sub-band interference == from-scratch net.sinr bits."""

    def _assert_cache_matches(self, evaluator, scenario):
        server = np.asarray(evaluator._server_list)
        channel = np.asarray(evaluator._channel_list)
        expected = total_received_power(
            scenario.gains, scenario.tx_power_watts, server, channel
        )
        cached = np.asarray(evaluator._total_rx)
        assert np.array_equal(cached, expected), (
            "cached (band, server) received-power buckets diverged from "
            "the from-scratch net.sinr recompute"
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_assignment_sequences(self, seed):
        config = SimulationConfig(n_users=12, n_servers=4, n_subbands=3)
        scenario = Scenario.build(config, seed=seed)
        rng = np.random.default_rng(1000 + seed)
        evaluator = BatchEvaluator(scenario)
        U, S, N = scenario.n_users, scenario.n_servers, scenario.n_subbands
        for _ in range(40):
            # Random feasible-ish assignment: draw per-user, then clear
            # slot collisions back to local (the cache contract does not
            # require feasibility, but the schedulers maintain it).
            server = rng.integers(-1, S, size=U)
            channel = np.where(server >= 0, rng.integers(0, N, size=U), LOCAL)
            used = set()
            for u in range(U):
                if server[u] >= 0:
                    slot = (int(server[u]), int(channel[u]))
                    if slot in used:
                        server[u] = LOCAL
                        channel[u] = LOCAL
                    else:
                        used.add(slot)
            evaluator.evaluate_assignment(server, channel)
            self._assert_cache_matches(evaluator, scenario)

    def test_cache_exact_after_rebuild(self):
        config = SimulationConfig(n_users=10, n_servers=3, n_subbands=2)
        scenario = Scenario.build(config, seed=3)
        rng = np.random.default_rng(3)
        evaluator = BatchEvaluator(scenario)
        from repro.core.decision import OffloadingDecision

        decision = OffloadingDecision.random_feasible(
            scenario.n_users, scenario.n_servers, scenario.n_subbands, rng
        )
        before = evaluator.evaluate(decision)
        cached_before = [list(row) for row in evaluator._total_rx]
        evaluator.rebuild()
        after = evaluator.evaluate(decision)
        assert before == after  # exact bits across a cache reset
        assert cached_before == [list(row) for row in evaluator._total_rx]
        self._assert_cache_matches(evaluator, scenario)


class TestNumpyBatchingInvariants:
    """Pin the NumPy identities the vectorized kernels rely on."""

    def test_row_reduce_equals_per_row_reduce(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(17, 129)) * 10.0 ** rng.integers(
            -12, 12, size=(17, 129)
        )
        batched = np.add.reduce(matrix, axis=1)
        per_row = np.array([np.add.reduce(row) for row in matrix])
        assert np.array_equal(batched, per_row)

    def test_add_at_rows_equal_bincount(self):
        rng = np.random.default_rng(1)
        n_rows, n_users, n_servers = 11, 40, 5
        idx = rng.integers(0, n_servers, size=(n_rows, n_users))
        weights = rng.normal(size=(n_rows, n_users))
        scattered = np.zeros((n_rows, n_servers))
        np.add.at(
            scattered,
            (np.repeat(np.arange(n_rows), n_users), idx.ravel()),
            weights.ravel(),
        )
        for row in range(n_rows):
            expected = np.bincount(
                idx[row], weights=weights[row], minlength=n_servers
            )
            assert np.array_equal(scattered[row], expected), row

    def test_log2_is_value_deterministic(self):
        rng = np.random.default_rng(2)
        values = 1.0 + np.abs(rng.normal(size=257))
        whole = np.log2(values)
        one_by_one = np.array([np.log2(np.array([v]))[0] for v in values])
        assert np.array_equal(whole, one_by_one)

    def test_bit_generator_state_roundtrip(self):
        rng = np.random.default_rng(3)
        rng.random(7)
        state = rng.bit_generator.state
        expected = rng.random(5).tolist()
        rng.random(100)  # wander off
        rng.bit_generator.state = state
        assert rng.random(5).tolist() == expected

    def test_batch_sinr_entrypoint_matches_scalar(self):
        """compute_sinr_batch == compute_link_stats per assignment."""
        from repro.net.sinr import compute_link_stats

        rng = np.random.default_rng(4)
        U, S, N = 15, 4, 3
        gains = rng.lognormal(mean=-20, size=(U, S, N))
        power = np.full(U, 0.01)
        servers = rng.integers(-1, S, size=(9, U))
        channels = np.where(servers >= 0, rng.integers(0, N, size=(9, U)), -1)
        batch = compute_sinr_batch(gains, power, 1e-13, servers, channels)
        for b in range(9):
            stats = compute_link_stats(
                gains, power, 1e-13, 1e6, servers[b], channels[b]
            )
            assert np.array_equal(stats.sinr, batch[b]), b
