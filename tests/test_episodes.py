"""Tests for the episodic simulation layer."""

import numpy as np
import pytest

from repro.baselines import GreedyScheduler, LocalSearchScheduler
from repro.core.annealing import AnnealingSchedule
from repro.core.scheduler import TsajsScheduler
from repro.errors import ConfigurationError
from repro.sim.config import SimulationConfig
from repro.sim.episodes import (
    OUTAGE_CAPACITY_HZ,
    EpisodeConfig,
    EpisodeRunner,
    run_episode,
)

QUICK_TSAJS = TsajsScheduler(schedule=AnnealingSchedule(min_temperature=1e-1))


def small_episode(**overrides):
    params = dict(
        base=SimulationConfig(n_users=0, n_servers=3, n_subbands=2),
        pool_size=8,
        n_slots=5,
    )
    params.update(overrides)
    return EpisodeConfig(**params)


class TestEpisodeConfig:
    def test_defaults_valid(self):
        config = EpisodeConfig()
        assert config.pool_size == 30
        assert config.n_slots == 20

    def test_rejects_bad_pool(self):
        with pytest.raises(ConfigurationError):
            EpisodeConfig(pool_size=0)

    def test_rejects_bad_slots(self):
        with pytest.raises(ConfigurationError):
            EpisodeConfig(n_slots=0)

    @pytest.mark.parametrize(
        "name",
        [
            "activity_probability",
            "reposition_probability",
            "server_outage_probability",
        ],
    )
    def test_rejects_bad_probabilities(self, name):
        with pytest.raises(ConfigurationError):
            EpisodeConfig(**{name: 1.5})

    def test_rejects_inverted_ranges(self):
        with pytest.raises(ConfigurationError):
            EpisodeConfig(workload_range_megacycles=(3000.0, 500.0))
        with pytest.raises(ConfigurationError):
            EpisodeConfig(input_range_kb=(0.0, 100.0))


class TestEpisodeRunner:
    def test_runs_all_slots(self):
        result = run_episode(small_episode(), GreedyScheduler(), seed=1)
        assert len(result.slots) == 5
        assert result.scheduler_name == "Greedy"
        for record in result.slots:
            assert 0 <= len(record.active_users) <= 8

    def test_reproducible(self):
        a = run_episode(small_episode(), GreedyScheduler(), seed=2)
        b = run_episode(small_episode(), GreedyScheduler(), seed=2)
        assert a.utilities() == b.utilities()
        assert [r.active_users for r in a.slots] == [r.active_users for r in b.slots]

    def test_different_seeds_differ(self):
        a = run_episode(small_episode(), GreedyScheduler(), seed=1)
        b = run_episode(small_episode(), GreedyScheduler(), seed=9)
        assert a.utilities() != b.utilities()

    def test_activity_zero_gives_empty_slots(self):
        config = small_episode(activity_probability=0.0)
        result = run_episode(config, QUICK_TSAJS, seed=1)
        for record in result.slots:
            assert record.active_users == []
            assert record.metrics.system_utility == 0.0
        assert result.offload_ratios() == [0.0] * 5

    def test_activity_one_activates_everyone(self):
        config = small_episode(activity_probability=1.0)
        result = run_episode(config, GreedyScheduler(), seed=1)
        for record in result.slots:
            assert len(record.active_users) == 8

    def test_works_with_local_search(self):
        result = run_episode(small_episode(), LocalSearchScheduler(), seed=3)
        assert len(result.slots) == 5
        assert all(np.isfinite(result.utilities()))

    def test_summaries(self):
        result = run_episode(
            small_episode(activity_probability=1.0), GreedyScheduler(), seed=4
        )
        summary = result.utility_summary()
        assert summary.n == 5
        assert np.isfinite(summary.mean)
        ratio = result.offload_ratio_summary()
        assert 0.0 <= ratio.mean <= 1.0


class TestOutages:
    def test_no_outages_by_default(self):
        result = run_episode(small_episode(), GreedyScheduler(), seed=1)
        assert result.total_outage_slots() == 0

    def test_all_servers_fail_when_probability_one(self):
        config = small_episode(server_outage_probability=1.0)
        result = run_episode(config, GreedyScheduler(), seed=1)
        for record in result.slots:
            assert len(record.failed_servers) == 3

    def test_total_outage_utility_collapses(self):
        healthy = run_episode(
            small_episode(activity_probability=1.0), QUICK_TSAJS, seed=5
        )
        broken = run_episode(
            small_episode(activity_probability=1.0, server_outage_probability=1.0),
            QUICK_TSAJS,
            seed=5,
        )
        # With every server at ~0 capacity, offloading can't pay off.
        assert broken.utility_summary().mean < healthy.utility_summary().mean
        assert broken.utility_summary().mean <= 1e-6

    def test_scheduler_routes_around_single_outage(self):
        # Deterministic observation: utility under partial outages stays
        # positive because healthy servers remain available.
        config = small_episode(
            activity_probability=1.0, server_outage_probability=0.3
        )
        result = run_episode(config, QUICK_TSAJS, seed=6)
        partial = [
            record
            for record in result.slots
            if 0 < len(record.failed_servers) < 3
        ]
        assert partial, "expected at least one partial-outage slot"
        for record in partial:
            assert record.metrics.system_utility >= 0.0

    def test_outage_capacity_positive(self):
        assert OUTAGE_CAPACITY_HZ > 0.0


class TestMobility:
    def test_high_churn_changes_outcomes(self):
        calm = run_episode(
            small_episode(reposition_probability=0.0), GreedyScheduler(), seed=7
        )
        churn = run_episode(
            small_episode(reposition_probability=0.9), GreedyScheduler(), seed=7
        )
        # Same seed, different mobility: the slot utilities must diverge.
        assert calm.utilities() != churn.utilities()

    def test_runner_reusable(self):
        runner = EpisodeRunner(small_episode(), GreedyScheduler())
        first = runner.run(seed=1)
        second = runner.run(seed=1)
        assert first.utilities() == second.utilities()
