"""Tests for the hexagonal topology substrate."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.topology import (
    DEFAULT_MIN_BS_DISTANCE_KM,
    HexCell,
    Topology,
    hex_grid_positions,
)


class TestHexGridPositions:
    def test_single_cell_at_origin(self):
        positions = hex_grid_positions(1, 1.0)
        assert positions.shape == (1, 2)
        np.testing.assert_allclose(positions[0], [0.0, 0.0])

    def test_seven_cells_form_center_plus_ring(self):
        positions = hex_grid_positions(7, 1.0)
        assert positions.shape == (7, 2)
        distances = np.linalg.norm(positions[1:], axis=1)
        np.testing.assert_allclose(distances, np.ones(6), atol=1e-12)

    def test_nine_cells_paper_default(self):
        positions = hex_grid_positions(9, 1.0)
        assert positions.shape == (9, 2)
        # All positions distinct.
        assert len({tuple(np.round(p, 9)) for p in positions}) == 9

    def test_adjacent_stations_at_inter_site_distance(self):
        positions = hex_grid_positions(19, 1.0)
        # Minimum pairwise distance must equal the inter-site distance.
        deltas = positions[:, None, :] - positions[None, :, :]
        dists = np.linalg.norm(deltas, axis=2)
        dists[np.arange(19), np.arange(19)] = np.inf
        assert dists.min() == pytest.approx(1.0)

    def test_custom_spacing_scales_layout(self):
        base = hex_grid_positions(7, 1.0)
        scaled = hex_grid_positions(7, 2.5)
        np.testing.assert_allclose(scaled, base * 2.5)

    def test_rejects_zero_cells(self):
        with pytest.raises(ConfigurationError):
            hex_grid_positions(0, 1.0)

    def test_rejects_nonpositive_spacing(self):
        with pytest.raises(ConfigurationError):
            hex_grid_positions(3, 0.0)

    def test_large_ring_counts(self):
        # 1 + 6 + 12 + 18 = 37 cells over three rings.
        positions = hex_grid_positions(37, 1.0)
        ring_radii = np.linalg.norm(positions, axis=1)
        assert ring_radii.max() == pytest.approx(3.0, rel=1e-9)


class TestHexCell:
    def test_center_is_inside(self):
        cell = HexCell(center=np.zeros(2), circumradius=1.0)
        assert cell.contains([0.0, 0.0])

    def test_vertex_is_inside(self):
        cell = HexCell(center=np.zeros(2), circumradius=1.0)
        # Pointy-top: vertices at angles 30 + 60k degrees... the top vertex
        # is along +y at the circumradius.
        assert cell.contains([0.0, 1.0 - 1e-9])

    def test_point_beyond_inradius_on_x_axis_is_outside(self):
        cell = HexCell(center=np.zeros(2), circumradius=1.0)
        inradius = math.sqrt(3.0) / 2.0
        assert not cell.contains([inradius + 1e-6, 0.0])
        assert cell.contains([inradius - 1e-6, 0.0])

    def test_far_point_is_outside(self):
        cell = HexCell(center=np.zeros(2), circumradius=1.0)
        assert not cell.contains([2.0, 2.0])

    def test_offset_center(self):
        cell = HexCell(center=np.array([5.0, -3.0]), circumradius=1.0)
        assert cell.contains([5.0, -3.0])
        assert not cell.contains([0.0, 0.0])

    def test_area_formula(self):
        cell = HexCell(center=np.zeros(2), circumradius=2.0)
        assert cell.area == pytest.approx(3.0 * math.sqrt(3.0) / 2.0 * 4.0)

    def test_inradius_relation(self):
        cell = HexCell(center=np.zeros(2), circumradius=1.0)
        assert cell.inradius == pytest.approx(math.sqrt(3.0) / 2.0)

    def test_sample_points_are_inside(self):
        cell = HexCell(center=np.array([1.0, 1.0]), circumradius=0.7)
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert cell.contains(cell.sample(rng))

    def test_sample_covers_cell(self):
        # Samples should spread over the hexagon, not cluster at the centre.
        cell = HexCell(center=np.zeros(2), circumradius=1.0)
        rng = np.random.default_rng(1)
        points = np.array([cell.sample(rng) for _ in range(500)])
        assert np.linalg.norm(points, axis=1).max() > 0.8
        assert abs(points.mean(axis=0)).max() < 0.1

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ConfigurationError):
            HexCell(center=np.zeros(2), circumradius=0.0)


class TestTopology:
    def test_hexagonal_factory(self):
        topo = Topology.hexagonal(9, 1.0)
        assert topo.n_cells == 9
        assert len(topo.cells) == 9

    def test_cells_tile_without_overlap_at_circumradius(self):
        topo = Topology.hexagonal(7, 1.0)
        expected = 1.0 / math.sqrt(3.0)
        for cell in topo.cells:
            assert cell.circumradius == pytest.approx(expected)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            Topology(bs_positions=np.zeros((3, 3)), inter_site_distance_km=1.0)

    def test_rejects_bad_distance(self):
        with pytest.raises(ConfigurationError):
            Topology(bs_positions=np.zeros((3, 2)), inter_site_distance_km=-1.0)

    def test_place_users_count_and_shape(self, rng):
        topo = Topology.hexagonal(4, 1.0)
        users = topo.place_users(25, rng)
        assert users.shape == (25, 2)

    def test_place_users_zero(self, rng):
        topo = Topology.hexagonal(4, 1.0)
        assert topo.place_users(0, rng).shape == (0, 2)

    def test_place_users_respects_min_bs_distance(self, rng):
        topo = Topology.hexagonal(9, 1.0)
        users = topo.place_users(300, rng, min_bs_distance_km=0.05)
        dists = topo.distances_km(users)
        assert dists.min() >= 0.05

    def test_default_min_distance_guard(self, rng):
        topo = Topology.hexagonal(9, 1.0)
        users = topo.place_users(300, rng)
        assert topo.distances_km(users).min() >= DEFAULT_MIN_BS_DISTANCE_KM

    def test_place_users_inside_coverage(self, rng):
        topo = Topology.hexagonal(4, 1.0)
        users = topo.place_users(100, rng)
        for point in users:
            assert any(cell.contains(point) for cell in topo.cells)

    def test_place_users_rejects_negative(self, rng):
        topo = Topology.hexagonal(4, 1.0)
        with pytest.raises(ConfigurationError):
            topo.place_users(-1, rng)
        with pytest.raises(ConfigurationError):
            topo.place_users(5, rng, min_bs_distance_km=-0.1)

    def test_distances_km_values(self):
        topo = Topology(
            bs_positions=np.array([[0.0, 0.0], [3.0, 4.0]]),
            inter_site_distance_km=5.0,
        )
        users = np.array([[0.0, 0.0], [3.0, 0.0]])
        dists = topo.distances_km(users)
        np.testing.assert_allclose(dists, [[0.0, 5.0], [3.0, 4.0]])

    def test_distances_rejects_bad_shape(self):
        topo = Topology.hexagonal(3, 1.0)
        with pytest.raises(ConfigurationError):
            topo.distances_km(np.zeros((4, 3)))

    def test_placement_is_reproducible(self):
        topo = Topology.hexagonal(5, 1.0)
        a = topo.place_users(20, np.random.default_rng(7))
        b = topo.place_users(20, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
